//! Delta-debugging shrinker: reduce a violating schedule to a minimal
//! reproducer while preserving the violation.
//!
//! The shrinker only ever *removes* badness — drops fault events
//! (ddmin-style chunk deletion over each of the four event lists),
//! halves the trace (which also shortens the horizon, since horizons
//! derive from request counts), and zeroes the per-message link-fault
//! probabilities. A candidate is accepted iff re-executing it still
//! violates the *same-named* invariant, so the shrinker can never walk
//! from one bug to a different one. Every pass is deterministic and the
//! candidate budget is bounded, so shrinking the same violation always
//! lands on the same schedule.

use crate::invariant::InvariantSet;
use crate::schedule::ChaosSchedule;
use crate::search::check_schedule;

/// What the shrinker produced.
#[derive(Debug)]
pub struct ShrinkOutcome {
    /// The minimised schedule (still violating the target invariant).
    pub schedule: ChaosSchedule,
    /// Candidate executions spent.
    pub attempts: u32,
    /// True when the result is strictly smaller than the input.
    pub improved: bool,
}

struct Shrinker<'a> {
    target: &'a str,
    invariants: &'a InvariantSet,
    budget: u32,
    attempts: u32,
}

impl Shrinker<'_> {
    /// One candidate execution: does `s` still violate the target?
    /// Deducts from the budget; a spent budget rejects everything, which
    /// simply freezes the current best.
    fn still_violates(&mut self, s: &ChaosSchedule) -> bool {
        if self.attempts >= self.budget {
            return false;
        }
        self.attempts += 1;
        let double = self.target == "determinism";
        check_schedule(s, self.invariants, double)
            .iter()
            .any(|v| v.invariant == self.target)
    }

    /// ddmin-style deletion over one event list, selected by `get`/`set`.
    /// Tries coarse chunks first, refining toward single events.
    fn shrink_list<T: Clone>(
        &mut self,
        best: &mut ChaosSchedule,
        get: impl Fn(&ChaosSchedule) -> &Vec<T>,
        set: impl Fn(&mut ChaosSchedule, Vec<T>),
    ) -> bool {
        let mut improved = false;
        let mut granularity = 2usize;
        loop {
            let len = get(best).len();
            if len == 0 {
                return improved;
            }
            // First, the cheapest candidate: the whole list gone.
            if granularity == 2 {
                let mut candidate = best.clone();
                set(&mut candidate, Vec::new());
                if self.still_violates(&candidate) {
                    *best = candidate;
                    improved = true;
                    return improved;
                }
            }
            let n = granularity.min(len);
            let chunk = len.div_ceil(n);
            let mut any_removed = false;
            let mut start = 0;
            while start < get(best).len() {
                let end = (start + chunk).min(get(best).len());
                let mut kept: Vec<T> = Vec::with_capacity(get(best).len() - (end - start));
                kept.extend_from_slice(&get(best)[..start]);
                kept.extend_from_slice(&get(best)[end..]);
                let mut candidate = best.clone();
                set(&mut candidate, kept);
                if self.still_violates(&candidate) {
                    *best = candidate;
                    improved = true;
                    any_removed = true;
                    // Do not advance: the next chunk now starts here.
                } else {
                    start = end;
                }
                if self.attempts >= self.budget {
                    return improved;
                }
            }
            if any_removed {
                granularity = 2;
            } else if chunk <= 1 {
                return improved;
            } else {
                granularity *= 2;
            }
        }
    }
}

/// Shrinks `original` while preserving a violation of the invariant
/// named `target`. `budget` bounds total candidate executions.
pub fn shrink(
    original: &ChaosSchedule,
    target: &str,
    invariants: &InvariantSet,
    budget: u32,
) -> ShrinkOutcome {
    let mut sh = Shrinker {
        target,
        invariants,
        budget,
        attempts: 0,
    };
    let mut best = original.clone();
    loop {
        let before = best.size();
        // Pass 1: drop fault events, dimension by dimension.
        sh.shrink_list(&mut best, |s| &s.faults, |s, v| s.faults = v);
        sh.shrink_list(&mut best, |s| &s.net, |s, v| s.net = v);
        sh.shrink_list(&mut best, |s| &s.corruption, |s, v| s.corruption = v);
        sh.shrink_list(&mut best, |s| &s.crashes, |s, v| s.crashes = v);
        // Pass 2: halve the trace (shrinks the horizon with it).
        while best.requests > 8 {
            let mut candidate = best.clone();
            candidate.requests = (candidate.requests / 2).max(8);
            if sh.still_violates(&candidate) {
                best = candidate;
            } else {
                break;
            }
        }
        // Pass 3: quiet the link profile.
        if best.profile.drop_prob > 0.0
            || best.profile.reset_prob > 0.0
            || best.profile.delay_prob > 0.0
        {
            let mut candidate = best.clone();
            candidate.profile.drop_prob = 0.0;
            candidate.profile.reset_prob = 0.0;
            candidate.profile.delay_prob = 0.0;
            if sh.still_violates(&candidate) {
                best = candidate;
            }
        }
        if best.size() >= before || sh.attempts >= sh.budget {
            break;
        }
    }
    ShrinkOutcome {
        improved: best.size() < original.size(),
        schedule: best,
        attempts: sh.attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::InvariantSet;
    use crate::schedule::{generate_schedule, SeverityEnvelope};
    use crate::search::check_schedule;

    /// The canary trips on any fault event, so shrinking a canary
    /// violation must land on a single-event schedule.
    #[test]
    fn canary_violation_shrinks_to_one_event() {
        let env = SeverityEnvelope::default_search();
        let invariants = InvariantSet::with_canary();
        // Find a scenario with a decent number of events and a canary
        // violation to shrink.
        let (schedule, _) = (0..32)
            .map(|i| generate_schedule(&env, 2024, i))
            .filter(|s| s.event_count() >= 4)
            .find_map(|s| {
                let vs = check_schedule(&s, &invariants, false);
                vs.iter()
                    .any(|v| v.invariant == "canary-quiet-cluster")
                    .then_some((s.clone(), vs))
            })
            .expect("the default envelope produces canary violations");
        let out = shrink(&schedule, "canary-quiet-cluster", &invariants, 600);
        assert!(out.improved, "shrinker must make progress");
        assert!(
            out.schedule.event_count() < schedule.event_count(),
            "strictly fewer events: {} -> {}",
            schedule.event_count(),
            out.schedule.event_count()
        );
        // The canary trips on the first fired fault event; a minimal
        // witness carries very few scheduled events.
        assert!(
            out.schedule.event_count() <= 2,
            "expected a near-minimal schedule, got {} events",
            out.schedule.event_count()
        );
        // And the shrunk schedule still violates the same invariant.
        assert!(check_schedule(&out.schedule, &invariants, false)
            .iter()
            .any(|v| v.invariant == "canary-quiet-cluster"));
    }

    #[test]
    fn shrinking_is_deterministic() {
        let env = SeverityEnvelope::default_search();
        let invariants = InvariantSet::with_canary();
        let schedule = (0..32)
            .map(|i| generate_schedule(&env, 7, i))
            .find(|s| {
                s.event_count() >= 3
                    && check_schedule(s, &invariants, false)
                        .iter()
                        .any(|v| v.invariant == "canary-quiet-cluster")
            })
            .expect("violating scenario");
        let a = shrink(&schedule, "canary-quiet-cluster", &invariants, 400);
        let b = shrink(&schedule, "canary-quiet-cluster", &invariants, 400);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.attempts, b.attempts);
    }
}
