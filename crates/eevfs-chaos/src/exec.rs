//! Schedule execution: one [`ChaosSchedule`] in, one [`RunOutcome`] out.
//!
//! The executor rebuilds every driver input from the schedule's explicit
//! fields — synthetic trace, paper testbed cluster, validated plans, RPC
//! policy, optional power plane — and runs the composite
//! [`eevfs::driver::try_run_cluster_chaos`] entry point under
//! `catch_unwind`, so a simulator panic becomes data (an `engine-panic`
//! outcome) instead of poisoning the search. Nothing here draws fresh
//! randomness: the outcome is a pure function of the schedule.

use crate::schedule::{ChaosSchedule, BLOCKS_PER_DISK};
use eevfs::config::{ClusterSpec, EevfsConfig};
use eevfs::driver::{ChaosSetup, DurabilitySetup, ResilienceSetup};
use eevfs::scrub::ScrubPolicy;
use eevfs::RunMetrics;
use eevfs_power::{EvictionPolicy, PowerPolicy, TierConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use workload::synthetic::{generate, SyntheticSpec};

/// How one schedule execution ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// The run completed; metrics are ready for the invariant plane.
    Done(Box<RunMetrics>),
    /// The driver rejected the inputs with a typed error.
    Rejected(String),
    /// The simulator panicked mid-run (an internal invariant tripped).
    Panicked(String),
}

/// The power policy a schedule's `power_kind`/`spin_cap` expand to.
pub fn power_policy(s: &ChaosSchedule) -> Option<PowerPolicy> {
    let base = match s.power_kind {
        0 => return None,
        1 => PowerPolicy::paper_fixed(),
        2 => PowerPolicy::ewma(),
        _ => PowerPolicy::bandit().with_tier(TierConfig {
            dram_bytes: 64 << 20,
            ssd_bytes: 4 << 30,
            policy: EvictionPolicy::Lru,
        }),
    };
    let base = base.with_seed(s.seed);
    Some(match s.spin_cap {
        Some(cap) => base.with_spin_cap(cap),
        None => base,
    })
}

/// Executes a schedule once. Deterministic: same schedule, same outcome,
/// bit-for-bit — including the panic message when the engine panics.
pub fn execute(s: &ChaosSchedule) -> RunOutcome {
    let trace = generate(&SyntheticSpec {
        requests: s.requests,
        seed: s.seed,
        ..SyntheticSpec::paper_default()
    });
    let cluster = ClusterSpec::paper_testbed();
    let mut cfg = EevfsConfig::paper_pf_replicated(70, s.replication);
    cfg.overload = s.overload.map(eevfs::config::OverloadConfig::bounded);
    let plans = match s.plans() {
        Ok(p) => p,
        Err(e) => return RunOutcome::Rejected(format!("bad schedule: {e}")),
    };
    let policy = s.rpc_policy();
    let power = power_policy(s);
    let setup = ChaosSetup {
        resilience: Some(ResilienceSetup {
            net_plan: &plans.net,
            profile: &s.profile,
            policy: &policy,
        }),
        durability: Some(DurabilitySetup {
            corruption: &plans.corruption,
            crashes: &plans.crashes,
            scrub: if s.scrub {
                ScrubPolicy::piggyback_default()
            } else {
                ScrubPolicy::Off
            },
            blocks_per_disk: BLOCKS_PER_DISK,
        }),
        power: power.as_ref(),
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        eevfs::driver::try_run_cluster_chaos(&cluster, &cfg, &trace, &plans.faults, setup)
    }));
    match result {
        Ok(Ok(metrics)) => RunOutcome::Done(Box::new(metrics)),
        Ok(Err(e)) => RunOutcome::Rejected(e.to_string()),
        Err(payload) => RunOutcome::Panicked(panic_text(payload)),
    }
}

/// How one *observed* schedule execution ended — [`execute`] with the
/// structured trace captured for the audit plane.
#[derive(Debug)]
pub enum ObservedOutcome {
    /// The run completed with its trace captured.
    Done(Box<RunMetrics>, Box<eevfs::driver::ObsReport>),
    /// The driver rejected the inputs with a typed error.
    Rejected(String),
    /// The simulator panicked mid-run.
    Panicked(String),
}

/// Executes a schedule once with a [`Recorder`](eevfs_obs::Recorder)
/// attached, so the ledger-closure invariant can reconstruct spans and
/// residency from the trace. Observation is passive: the metrics are
/// bit-identical to what [`execute`] returns for the same schedule.
pub fn execute_observed(s: &ChaosSchedule) -> ObservedOutcome {
    let trace = generate(&SyntheticSpec {
        requests: s.requests,
        seed: s.seed,
        ..SyntheticSpec::paper_default()
    });
    let cluster = ClusterSpec::paper_testbed();
    let mut cfg = EevfsConfig::paper_pf_replicated(70, s.replication);
    cfg.overload = s.overload.map(eevfs::config::OverloadConfig::bounded);
    let plans = match s.plans() {
        Ok(p) => p,
        Err(e) => return ObservedOutcome::Rejected(format!("bad schedule: {e}")),
    };
    let policy = s.rpc_policy();
    let power = power_policy(s);
    let setup = ChaosSetup {
        resilience: Some(ResilienceSetup {
            net_plan: &plans.net,
            profile: &s.profile,
            policy: &policy,
        }),
        durability: Some(DurabilitySetup {
            corruption: &plans.corruption,
            crashes: &plans.crashes,
            scrub: if s.scrub {
                ScrubPolicy::piggyback_default()
            } else {
                ScrubPolicy::Off
            },
            blocks_per_disk: BLOCKS_PER_DISK,
        }),
        power: power.as_ref(),
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        eevfs::driver::try_run_cluster_chaos_observed(
            &cluster,
            &cfg,
            &trace,
            &plans.faults,
            setup,
            eevfs_obs::Recorder::default(),
        )
    }));
    match result {
        Ok(Ok((metrics, report))) => ObservedOutcome::Done(Box::new(metrics), Box::new(report)),
        Ok(Err(e)) => ObservedOutcome::Rejected(e.to_string()),
        Err(payload) => ObservedOutcome::Panicked(panic_text(payload)),
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{generate_schedule, SeverityEnvelope};

    #[test]
    fn quiet_schedule_completes() {
        let s = ChaosSchedule {
            seed: 11,
            requests: 30,
            replication: 2,
            scrub: true,
            power_kind: 0,
            spin_cap: None,
            policy_kind: 1,
            overload: None,
            faults: Vec::new(),
            net: Vec::new(),
            corruption: Vec::new(),
            crashes: Vec::new(),
            profile: fault_model::LinkFaultProfile::none(),
        };
        match execute(&s) {
            RunOutcome::Done(m) => {
                assert_eq!(m.failed_requests, 0);
                assert_eq!(m.durability.unrecoverable_blocks, 0);
            }
            other => panic!("quiet schedule should complete, got {other:?}"),
        }
    }

    #[test]
    fn execution_is_bit_identical() {
        let env = SeverityEnvelope::default_search();
        let s = generate_schedule(&env, 3, 5);
        let (a, b) = (execute(&s), execute(&s));
        match (a, b) {
            (RunOutcome::Done(ma), RunOutcome::Done(mb)) => {
                let ja = serde_json::to_string(&*ma).expect("serialize");
                let jb = serde_json::to_string(&*mb).expect("serialize");
                assert_eq!(ja, jb, "same schedule must replay bit-identically");
            }
            (RunOutcome::Rejected(a), RunOutcome::Rejected(b)) => assert_eq!(a, b),
            (RunOutcome::Panicked(a), RunOutcome::Panicked(b)) => assert_eq!(a, b),
            (a, b) => panic!("outcome kind diverged: {a:?} vs {b:?}"),
        }
    }
}
