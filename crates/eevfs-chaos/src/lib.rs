//! # eevfs-chaos — deterministic chaos-search engine
//!
//! FoundationDB-style simulation testing for the EEVFS reproduction:
//! search seeded random fault schedules for invariant violations, then
//! shrink each failure to a minimal replayable schedule (DESIGN.md §13).
//!
//! Three layers:
//!
//! * [`schedule`] — a seeded **generator** samples composite fault plans
//!   (disk/node failures, link partitions and per-message faults,
//!   corruption, crashes, spin-budget pressure) from a configurable
//!   [`SeverityEnvelope`], composing the `fault-model` plan types. Every
//!   scenario flattens to an explicit, serializable [`ChaosSchedule`].
//! * [`invariant`] — the **invariant plane**: an [`Invariant`] trait and
//!   registry checked against `RunMetrics` after every run (energy
//!   conservation, no-data-loss at R≥2 with scrubbing, replica cover,
//!   prediction/breaker/journal accounting, tier legality, bit-identical
//!   determinism) plus a deliberately broken canary.
//! * [`search`] / [`mod@shrink`] — the **search + shrink loop**: scenarios
//!   fan across a [`ParallelMap`] pool, the lowest-indexed violation is
//!   delta-debugged down to a minimal [`Reproducer`] JSON artifact that
//!   `harness chaos --replay <file>` re-executes bit-identically.
//!
//! The engine owns no randomness of its own beyond `sim-core`'s seeded
//! streams and never consults wall-clock time, so every campaign,
//! shrink, and replay is a pure function of `(envelope, base_seed)`.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod exec;
pub mod invariant;
pub mod schedule;
pub mod search;
pub mod shrink;

pub use exec::{execute, execute_observed, ObservedOutcome, RunOutcome};
pub use invariant::{CheckContext, Invariant, InvariantSet, Violation};
pub use schedule::{generate_schedule, ChaosSchedule, SeverityEnvelope};
pub use search::{
    check_schedule, replay, run_campaign, CampaignConfig, CampaignReport, ParallelMap,
    ReplayReport, Reproducer, ScenarioReport, SerialPool,
};
pub use shrink::{shrink, ShrinkOutcome};
