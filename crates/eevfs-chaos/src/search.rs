//! The search loop: fan seeded scenarios across workers, check the
//! invariant plane, and distil the first violation into a replayable
//! [`Reproducer`] artifact.
//!
//! Parallelism comes in through the [`ParallelMap`] trait rather than a
//! dependency on `eevfs-bench` (which depends on *this* crate for the
//! `harness chaos` subcommand): the harness implements the trait for its
//! PR-5 `Runner`, tests use [`SerialPool`]. Determinism does not depend
//! on the pool: scenario `i` is a pure function of `(base_seed, i)`, and
//! the campaign always reports the *lowest-indexed* violating scenario,
//! so any `--jobs` count converges on the same reproducer.

use crate::exec::{execute, RunOutcome};
use crate::invariant::{CheckContext, InvariantSet, Violation};
use crate::schedule::{generate_schedule, ChaosSchedule, SeverityEnvelope};
use crate::shrink::{shrink, ShrinkOutcome};
use serde::{Deserialize, Serialize};

/// Minimal parallel-map abstraction the campaign fans scenarios over.
pub trait ParallelMap {
    /// Runs `f(0), f(1), …, f(n-1)` — possibly concurrently — and returns
    /// the results in index order. `f` must be a pure function of the
    /// index; that is what makes campaign output independent of the pool.
    fn map_indexed(
        &self,
        n: usize,
        f: &(dyn Fn(usize) -> ScenarioReport + Sync),
    ) -> Vec<ScenarioReport>;
}

/// The trivial in-order pool; the reference behaviour every parallel
/// implementation must be byte-identical to.
pub struct SerialPool;

impl ParallelMap for SerialPool {
    fn map_indexed(
        &self,
        n: usize,
        f: &(dyn Fn(usize) -> ScenarioReport + Sync),
    ) -> Vec<ScenarioReport> {
        (0..n).map(f).collect()
    }
}

/// Synthetic invariant name for schedules the driver rejects.
pub const DRIVER_REJECTED: &str = "driver-accepts-schedule";
/// Synthetic invariant name for runs that panic inside the simulator.
pub const ENGINE_PANIC: &str = "engine-panic";

/// What one scenario produced, reduced to what the campaign needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario index within the campaign.
    pub index: u32,
    /// Scheduled fault events across all four dimensions.
    pub events: u32,
    /// Violations the run produced (empty for a clean scenario).
    pub violations: Vec<Violation>,
}

/// Campaign knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Scenarios to search.
    pub scenarios: u32,
    /// Base seed; scenario `i` derives from `(base_seed, i)`.
    pub base_seed: u64,
    /// The severity envelope scenarios are drawn from.
    pub envelope: SeverityEnvelope,
    /// Re-execute every `k`-th scenario and feed both runs to the
    /// determinism invariant (0 disables double-running).
    pub double_run_every: u32,
    /// Candidate-execution budget for the shrinker.
    pub shrink_budget: u32,
}

impl CampaignConfig {
    /// A sensible default: `scenarios` scenarios from the default
    /// envelope, every 8th double-run, shrink budget 600.
    pub fn new(scenarios: u32, base_seed: u64) -> CampaignConfig {
        CampaignConfig {
            scenarios,
            base_seed,
            envelope: SeverityEnvelope::default_search(),
            double_run_every: 8,
            shrink_budget: 600,
        }
    }
}

/// The campaign's result.
#[derive(Debug)]
pub struct CampaignReport {
    /// Scenarios searched.
    pub scenarios: u32,
    /// Reports of scenarios that violated at least one invariant, in
    /// index order.
    pub violating: Vec<ScenarioReport>,
    /// The minimised reproducer of the lowest-indexed violation, if any.
    pub reproducer: Option<Reproducer>,
    /// Candidate executions the shrinker spent.
    pub shrink_attempts: u32,
}

impl CampaignReport {
    /// True when every scenario satisfied every invariant.
    pub fn clean(&self) -> bool {
        self.violating.is_empty()
    }
}

/// Executes one schedule and checks the invariant plane against it.
/// `double_run` re-executes the schedule and hands both runs to the
/// determinism invariant. Rejections and panics surface as synthetic
/// violations so the search treats them like any other broken property.
pub fn check_schedule(
    s: &ChaosSchedule,
    invariants: &InvariantSet,
    double_run: bool,
) -> Vec<Violation> {
    match execute(s) {
        RunOutcome::Rejected(e) => vec![Violation {
            invariant: DRIVER_REJECTED.to_string(),
            detail: e,
        }],
        RunOutcome::Panicked(p) => vec![Violation {
            invariant: ENGINE_PANIC.to_string(),
            detail: p,
        }],
        RunOutcome::Done(metrics) => {
            let second = if double_run {
                match execute(s) {
                    RunOutcome::Done(m) => Some(m),
                    RunOutcome::Rejected(e) => {
                        return vec![Violation {
                            invariant: "determinism".to_string(),
                            detail: format!("re-run rejected: {e}"),
                        }]
                    }
                    RunOutcome::Panicked(p) => {
                        return vec![Violation {
                            invariant: "determinism".to_string(),
                            detail: format!("re-run panicked: {p}"),
                        }]
                    }
                }
            } else {
                None
            };
            invariants.check(&CheckContext {
                schedule: s,
                metrics: &metrics,
                second: second.as_deref(),
            })
        }
    }
}

/// Runs a search campaign: `scenarios` seeded schedules through the
/// pool, invariants checked on each, the lowest-indexed violation
/// shrunk (serially, so the result is pool-independent) into a
/// [`Reproducer`].
pub fn run_campaign<P: ParallelMap>(
    pool: &P,
    invariants: &InvariantSet,
    cfg: &CampaignConfig,
) -> CampaignReport {
    let reports = pool.map_indexed(cfg.scenarios as usize, &|i| {
        let schedule = generate_schedule(&cfg.envelope, cfg.base_seed, i as u32);
        let double = cfg.double_run_every > 0 && (i as u32).is_multiple_of(cfg.double_run_every);
        ScenarioReport {
            index: i as u32,
            events: schedule.event_count() as u32,
            violations: check_schedule(&schedule, invariants, double),
        }
    });
    let violating: Vec<ScenarioReport> = reports
        .into_iter()
        .filter(|r| !r.violations.is_empty())
        .collect();
    let (reproducer, shrink_attempts) = match violating.first() {
        None => (None, 0),
        Some(first) => {
            let schedule = generate_schedule(&cfg.envelope, cfg.base_seed, first.index);
            let violation = &first.violations[0];
            let ShrinkOutcome {
                schedule: shrunk,
                attempts,
                ..
            } = shrink(
                &schedule,
                &violation.invariant,
                invariants,
                cfg.shrink_budget,
            );
            let final_violation = check_schedule(&shrunk, invariants, true)
                .into_iter()
                .find(|v| v.invariant == violation.invariant)
                .unwrap_or_else(|| violation.clone());
            let digest = outcome_digest(&shrunk);
            (
                Some(Reproducer {
                    version: REPRODUCER_VERSION,
                    invariant: final_violation.invariant,
                    detail: final_violation.detail,
                    base_seed: cfg.base_seed,
                    scenario_index: first.index,
                    original_events: schedule.event_count() as u32,
                    shrunk_events: shrunk.event_count() as u32,
                    metrics_digest: digest,
                    schedule: shrunk,
                }),
                attempts,
            )
        }
    };
    CampaignReport {
        scenarios: cfg.scenarios,
        violating,
        reproducer,
        shrink_attempts,
    }
}

/// Artifact format version; bump on any incompatible schema change.
pub const REPRODUCER_VERSION: u32 = 1;

/// A minimal replayable witness of one invariant violation. Serialized
/// as pretty JSON; `harness chaos --replay <file>` re-executes it and
/// verifies both the violation and the metrics digest bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// Artifact schema version ([`REPRODUCER_VERSION`]).
    pub version: u32,
    /// Name of the violated invariant.
    pub invariant: String,
    /// The violation detail at the shrunk schedule.
    pub detail: String,
    /// Campaign base seed the scenario was drawn from.
    pub base_seed: u64,
    /// Campaign index of the original scenario.
    pub scenario_index: u32,
    /// Fault events in the original scenario.
    pub original_events: u32,
    /// Fault events after shrinking.
    pub shrunk_events: u32,
    /// FNV-1a digest of the shrunk run's serialized metrics (or of the
    /// rejection/panic text for non-completing runs).
    pub metrics_digest: String,
    /// The shrunk schedule itself — everything needed to re-run.
    pub schedule: ChaosSchedule,
}

/// The digest replay compares against: FNV-1a/64 over the serialized
/// run outcome, rendered as fixed-width hex.
pub fn outcome_digest(s: &ChaosSchedule) -> String {
    let text = match execute(s) {
        RunOutcome::Done(m) => {
            serde_json::to_string(&*m).unwrap_or_else(|e| format!("serialize-error: {e}"))
        }
        RunOutcome::Rejected(e) => format!("rejected: {e}"),
        RunOutcome::Panicked(p) => format!("panicked: {p}"),
    };
    format!("{:016x}", fnv1a(text.as_bytes()))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What replaying a reproducer established.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Violations the replayed run produced.
    pub violations: Vec<Violation>,
    /// Digest of the replayed run.
    pub digest: String,
    /// The replay reproduced the recorded violation (same invariant and
    /// detail).
    pub violation_reproduced: bool,
    /// The replay's metrics digest matches the artifact byte-for-byte.
    pub digest_matches: bool,
}

impl ReplayReport {
    /// True when the artifact reproduced exactly.
    pub fn exact(&self) -> bool {
        self.violation_reproduced && self.digest_matches
    }
}

/// Re-executes a reproducer and verifies it reproduces bit-for-bit.
/// Replays always double-run so the determinism invariant stays armed.
pub fn replay(rep: &Reproducer, invariants: &InvariantSet) -> ReplayReport {
    let violations = check_schedule(&rep.schedule, invariants, true);
    let digest = outcome_digest(&rep.schedule);
    let violation_reproduced = violations
        .iter()
        .any(|v| v.invariant == rep.invariant && v.detail == rep.detail);
    let digest_matches = digest == rep.metrics_digest;
    ReplayReport {
        violations,
        digest,
        violation_reproduced,
        digest_matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a/64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn clean_quiet_campaign() {
        // A zero-severity envelope yields no faults, so the standard
        // plane must be clean.
        let mut env = SeverityEnvelope::default_search();
        env.disk_fail_per_hour = crate::schedule::Range::fixed(0.0);
        env.node_crash_per_hour = crate::schedule::Range::fixed(0.0);
        env.spin_up_fail_per_hour = crate::schedule::Range::fixed(0.0);
        env.partition_per_hour = crate::schedule::Range::fixed(0.0);
        env.lse_per_disk_hour = crate::schedule::Range::fixed(0.0);
        env.flip_per_disk_hour = crate::schedule::Range::fixed(0.0);
        env.crash_per_node_hour = crate::schedule::Range::fixed(0.0);
        env.drop_prob = crate::schedule::Range::fixed(0.0);
        env.requests_lo = 20;
        env.requests_hi = 30;
        let cfg = CampaignConfig {
            envelope: env,
            ..CampaignConfig::new(4, 99)
        };
        let report = run_campaign(&SerialPool, &InvariantSet::standard(), &cfg);
        assert!(report.clean(), "violations: {:?}", report.violating);
    }

    #[test]
    fn gated_campaign_keeps_the_shed_ledger_closed() {
        // Every scenario runs behind a bounded admission gate; the
        // shed-ledger and bounded-queue invariants must hold across the
        // full adversarial envelope (faults, partitions, power planes).
        let mut env = SeverityEnvelope::default_search();
        env.overload_prob = 1.0;
        env.requests_lo = 20;
        env.requests_hi = 40;
        let cfg = CampaignConfig {
            envelope: env,
            ..CampaignConfig::new(6, 23)
        };
        let report = run_campaign(&SerialPool, &InvariantSet::standard(), &cfg);
        assert!(report.clean(), "violations: {:?}", report.violating);
        // The envelope really did arm the gate on every scenario.
        for i in 0..cfg.scenarios {
            let s = generate_schedule(&cfg.envelope, cfg.base_seed, i);
            assert!(s.overload.is_some(), "scenario {i} lost its gate");
        }
    }
}
