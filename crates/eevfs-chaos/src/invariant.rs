//! The invariant plane: properties every run must satisfy, checked
//! against [`eevfs::RunMetrics`] after each scenario.
//!
//! Invariants are *conditional on the schedule*: each one derives its
//! guard from the scenario that produced the metrics (e.g. no-data-loss
//! only applies at replication >= 2 with scrubbing and no fail-stop
//! outages, because a crash overlapping a detection can legitimately
//! leave a block unrecoverable). An invariant that does not apply
//! returns `Ok` — the search loop does not distinguish "held" from
//! "not applicable", only violations matter.

use crate::schedule::ChaosSchedule;
use eevfs::RunMetrics;
use fault_model::FaultKind;
use serde::{Deserialize, Serialize};

/// Everything an invariant may look at for one scenario.
pub struct CheckContext<'a> {
    /// The schedule that produced the run (guards derive from it).
    pub schedule: &'a ChaosSchedule,
    /// The run's metrics.
    pub metrics: &'a RunMetrics,
    /// Metrics of an immediate same-input re-run, when the campaign
    /// double-executed this scenario (the determinism invariant's food).
    pub second: Option<&'a RunMetrics>,
}

/// One broken invariant on one scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// `Invariant::name` of the property that failed.
    pub invariant: String,
    /// Human-readable account of the failure.
    pub detail: String,
}

/// A property of every run. Implementations must be pure functions of
/// the context so that re-checking a replayed run reproduces the same
/// verdict.
pub trait Invariant: Send + Sync {
    /// Stable identifier, used to match violations across shrink steps
    /// and replays.
    fn name(&self) -> &'static str;
    /// `Err(detail)` when the property is violated.
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String>;
}

/// An ordered set of invariants checked after every run.
pub struct InvariantSet {
    invariants: Vec<Box<dyn Invariant>>,
}

impl InvariantSet {
    /// The real invariant plane: every property the DES is supposed to
    /// guarantee under adversarial composition.
    pub fn standard() -> InvariantSet {
        InvariantSet {
            invariants: vec![
                Box::new(EnergyConservation),
                Box::new(EnergySane),
                Box::new(NoDataLoss),
                Box::new(DetectionAccounting),
                Box::new(ReplicaCover),
                Box::new(PredictionAccounting),
                Box::new(BreakerLegality),
                Box::new(JournalAccounting),
                Box::new(ResponseAccounting),
                Box::new(TierLegality),
                Box::new(Determinism),
                Box::new(LedgerClosure),
                Box::new(ShedLedger),
                Box::new(BoundedQueue),
            ],
        }
    }

    /// The standard plane plus the deliberately-broken canary invariant.
    /// The canary asserts the cluster never sees a fault, which any
    /// scheduled fault event refutes — proving end-to-end that the
    /// searcher finds violations and the shrinker minimises them.
    pub fn with_canary() -> InvariantSet {
        let mut set = InvariantSet::standard();
        set.invariants.push(Box::new(CanaryQuietCluster));
        set
    }

    /// Checks every invariant; returns all violations in registry order.
    pub fn check(&self, cx: &CheckContext<'_>) -> Vec<Violation> {
        self.invariants
            .iter()
            .filter_map(|inv| {
                inv.check(cx).err().map(|detail| Violation {
                    invariant: inv.name().to_string(),
                    detail,
                })
            })
            .collect()
    }

    /// Registered invariant names, in check order.
    pub fn names(&self) -> Vec<&'static str> {
        self.invariants.iter().map(|i| i.name()).collect()
    }
}

fn rel_close(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps * a.abs().max(b.abs()).max(1.0)
}

/// The fail-stop events (disk failures + node crashes) of a schedule,
/// merged from the fault and crash plans, time-ordered.
fn fail_stop_events(s: &ChaosSchedule) -> Vec<fault_model::FaultEvent> {
    let mut all: Vec<_> = s
        .faults
        .iter()
        .chain(s.crashes.iter())
        .filter(|e| {
            matches!(
                e.kind,
                FaultKind::DiskFail { .. }
                    | FaultKind::DiskRepair { .. }
                    | FaultKind::NodeCrash { .. }
                    | FaultKind::NodeRestart { .. }
            )
        })
        .copied()
        .collect();
    all.sort_by_key(|e| e.at);
    all
}

/// Peak number of concurrently-dead replica holders (down nodes + failed
/// disks on up nodes) over the schedule. Replicas of a file live on
/// distinct nodes, so a peak below the replication factor means some
/// healthy copy existed at every instant.
fn max_concurrent_outages(s: &ChaosSchedule) -> usize {
    use std::collections::BTreeSet;
    let mut down_nodes: BTreeSet<u32> = BTreeSet::new();
    let mut down_disks: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut peak = 0usize;
    for e in fail_stop_events(s) {
        match e.kind {
            FaultKind::DiskFail { node, disk } => {
                down_disks.insert((node, disk));
            }
            FaultKind::DiskRepair { node, disk } => {
                down_disks.remove(&(node, disk));
            }
            FaultKind::NodeCrash { node } => {
                down_nodes.insert(node);
            }
            FaultKind::NodeRestart { node } => {
                down_nodes.remove(&node);
            }
            FaultKind::SpinUpFail { .. } => {}
        }
        let dead_disks = down_disks
            .iter()
            .filter(|(n, _)| !down_nodes.contains(n))
            .count();
        peak = peak.max(down_nodes.len() + dead_disks);
    }
    peak
}

fn restarts(s: &ChaosSchedule) -> u64 {
    s.faults
        .iter()
        .chain(s.crashes.iter())
        .filter(|e| matches!(e.kind, FaultKind::NodeRestart { .. }))
        .count() as u64
}

fn net_quiet(s: &ChaosSchedule) -> bool {
    s.net.is_empty()
        && s.profile.drop_prob == 0.0
        && s.profile.reset_prob == 0.0
        && s.profile.delay_prob == 0.0
}

/// Energy ledgers must balance: the headline total splits exactly into
/// disk + base, and re-summing the per-node breakdown (plus the server
/// and the SSD tier, which the per-node rows exclude) recovers it.
struct EnergyConservation;
impl Invariant for EnergyConservation {
    fn name(&self) -> &'static str {
        "energy-conservation"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let m = cx.metrics;
        if !rel_close(m.total_energy_j, m.disk_energy_j + m.base_energy_j, 1e-9) {
            return Err(format!(
                "total {} != disk {} + base {}",
                m.total_energy_j, m.disk_energy_j, m.base_energy_j
            ));
        }
        let nodes: f64 = m.per_node.iter().map(|n| n.total_j()).sum();
        let recomposed = nodes + m.server_energy_j + m.tier.ssd_energy_j;
        if !rel_close(m.total_energy_j, recomposed, 1e-6) {
            return Err(format!(
                "per-node sum {} + server {} + ssd {} = {} != total {}",
                nodes, m.server_energy_j, m.tier.ssd_energy_j, recomposed, m.total_energy_j
            ));
        }
        Ok(())
    }
}

/// Every energy meter is finite and non-negative, and the integrity
/// meter stays at zero when no integrity work was scheduled.
struct EnergySane;
impl Invariant for EnergySane {
    fn name(&self) -> &'static str {
        "energy-sane"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let m = cx.metrics;
        let meters = [
            ("total", m.total_energy_j),
            ("disk", m.disk_energy_j),
            ("base", m.base_energy_j),
            ("server", m.server_energy_j),
            ("scrub", m.scrub_energy_j),
            ("ssd", m.tier.ssd_energy_j),
            ("warmup", m.prefetch.energy_j),
        ];
        for (name, v) in meters {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} energy meter is {v}"));
            }
        }
        let s = cx.schedule;
        if !s.scrub && s.corruption.is_empty() && restarts(s) == 0 && m.scrub_energy_j != 0.0 {
            return Err(format!(
                "scrub meter charged {} J with scrubbing off, no corruption, no restarts",
                m.scrub_energy_j
            ));
        }
        Ok(())
    }
}

/// At replication >= 2 with scrubbing on and no fail-stop outage in the
/// schedule, every detected corruption must be repairable from a replica:
/// no block may end the run unrecoverable.
struct NoDataLoss;
impl Invariant for NoDataLoss {
    fn name(&self) -> &'static str {
        "no-data-loss"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let s = cx.schedule;
        let applies = s.replication >= 2 && s.scrub && fail_stop_events(s).is_empty();
        if applies && cx.metrics.durability.unrecoverable_blocks > 0 {
            return Err(format!(
                "{} unrecoverable blocks at replication {} with scrubbing and no outages",
                cx.metrics.durability.unrecoverable_blocks, s.replication
            ));
        }
        Ok(())
    }
}

/// Corruption bookkeeping must balance: every detection is resolved as
/// exactly one repair or one unrecoverable block, detections plus
/// still-latent blocks never exceed landed corruptions, and the scrub
/// counters stay at zero when scrubbing is off.
struct DetectionAccounting;
impl Invariant for DetectionAccounting {
    fn name(&self) -> &'static str {
        "detection-accounting"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let d = &cx.metrics.durability;
        let detected = d.detected_on_read + d.detected_by_scrub;
        if detected != d.repaired_blocks + d.unrecoverable_blocks {
            return Err(format!(
                "detected {} != repaired {} + unrecoverable {}",
                detected, d.repaired_blocks, d.unrecoverable_blocks
            ));
        }
        if detected + d.latent_at_end > d.corruptions_landed {
            return Err(format!(
                "detected {} + latent {} exceed landed {}",
                detected, d.latent_at_end, d.corruptions_landed
            ));
        }
        if !cx.schedule.scrub && (d.detected_by_scrub != 0 || d.scrubbed_blocks != 0) {
            return Err(format!(
                "scrub counters ({}, {}) nonzero with scrubbing off",
                d.detected_by_scrub, d.scrubbed_blocks
            ));
        }
        Ok(())
    }
}

/// With a quiet network and never more concurrent fail-stop outages than
/// `replication - 1`, some healthy replica always existed — no request
/// may be abandoned.
struct ReplicaCover;
impl Invariant for ReplicaCover {
    fn name(&self) -> &'static str {
        "replica-cover"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let s = cx.schedule;
        let covered = net_quiet(s) && max_concurrent_outages(s) < s.replication as usize;
        if covered && cx.metrics.failed_requests > 0 {
            return Err(format!(
                "{} failed requests though replication {} covered a peak of {} outages",
                cx.metrics.failed_requests,
                s.replication,
                max_concurrent_outages(s)
            ));
        }
        Ok(())
    }
}

/// The sleep-prediction ledger is internally consistent across driver
/// variants: accuracy is a true fraction of sleeps taken.
struct PredictionAccounting;
impl Invariant for PredictionAccounting {
    fn name(&self) -> &'static str {
        "prediction-accounting"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let p = &cx.metrics.prediction;
        if p.paid_off > p.sleeps {
            return Err(format!("paid_off {} > sleeps {}", p.paid_off, p.sleeps));
        }
        let acc = p.accuracy();
        if !(0.0..=1.0).contains(&acc) {
            return Err(format!("accuracy {acc} outside [0, 1]"));
        }
        if !p.mean_realized_s.is_finite() || p.mean_realized_s < 0.0 {
            return Err(format!("mean realized idle {}", p.mean_realized_s));
        }
        Ok(())
    }
}

/// Circuit-breaker and hedging state machines only move along legal
/// edges: recoveries re-close previously tripped breakers, hedges only
/// exist under a hedging policy, and a quiet network trips nothing.
struct BreakerLegality;
impl Invariant for BreakerLegality {
    fn name(&self) -> &'static str {
        "breaker-legality"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let r = &cx.metrics.resilience;
        if r.breaker_recoveries > r.breaker_trips {
            return Err(format!(
                "recoveries {} > trips {}",
                r.breaker_recoveries, r.breaker_trips
            ));
        }
        if r.hedges_won > r.hedges {
            return Err(format!("hedges_won {} > hedges {}", r.hedges_won, r.hedges));
        }
        if cx.schedule.policy_kind != 2 && r.hedges != 0 {
            return Err(format!("{} hedges under a non-hedging policy", r.hedges));
        }
        if net_quiet(cx.schedule) {
            if r.rpc_drops != 0 || r.rpc_resets != 0 || r.rpc_delays != 0 {
                return Err(format!(
                    "quiet network but drops {} resets {} delays {}",
                    r.rpc_drops, r.rpc_resets, r.rpc_delays
                ));
            }
            if r.breaker_trips != 0 {
                return Err(format!(
                    "{} breaker trips on a quiet network",
                    r.breaker_trips
                ));
            }
        }
        Ok(())
    }
}

/// Journal-replay accounting: bytes imply replays, and replays never
/// exceed the restarts that could have triggered them.
struct JournalAccounting;
impl Invariant for JournalAccounting {
    fn name(&self) -> &'static str {
        "journal-accounting"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let d = &cx.metrics.durability;
        if d.journal_bytes_replayed > 0 && d.journal_replays == 0 {
            return Err(format!(
                "{} journal bytes replayed across zero replays",
                d.journal_bytes_replayed
            ));
        }
        let bound = restarts(cx.schedule);
        if d.journal_replays > bound {
            return Err(format!(
                "{} journal replays but only {} scheduled restarts",
                d.journal_replays, bound
            ));
        }
        Ok(())
    }
}

/// The run always terminates and accounts every request: the response
/// summary covers exactly the trace's requests with finite samples —
/// minus the ones the overload plane refused (gate rejections, priority
/// sheds, brownout node sheds), which terminate without a latency sample
/// but still show up in the shed ledger.
struct ResponseAccounting;
impl Invariant for ResponseAccounting {
    fn name(&self) -> &'static str {
        "response-accounting"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let m = cx.metrics;
        let o = &m.overload;
        let refused = o.rejected + o.shed + o.node_shed;
        let n = (cx.schedule.requests as u64)
            .checked_sub(refused)
            .ok_or_else(|| {
                format!(
                    "overload plane refused {refused} of {} requests",
                    cx.schedule.requests
                )
            })?;
        if m.response.count != n {
            return Err(format!(
                "response count {} != requests {} - {refused} refused",
                m.response.count, cx.schedule.requests
            ));
        }
        if m.response_samples_s.len() as u64 != n {
            return Err(format!(
                "{} response samples != requests {} - {refused} refused",
                m.response_samples_s.len(),
                cx.schedule.requests
            ));
        }
        if let Some(bad) = m
            .response_samples_s
            .iter()
            .find(|s| !s.is_finite() || **s < 0.0)
        {
            return Err(format!("response sample {bad}"));
        }
        Ok(())
    }
}

/// Tier and spin-budget counters only move when the corresponding plane
/// is engaged: no policy plane means no tier traffic, no cap means no
/// denied sleeps, and a cap bounds total spin cycles.
struct TierLegality;
impl Invariant for TierLegality {
    fn name(&self) -> &'static str {
        "tier-legality"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let s = cx.schedule;
        let t = &cx.metrics.tier;
        if s.power_kind == 0 {
            let quiet = t.dram_hits == 0
                && t.dram_misses == 0
                && t.ssd_hits == 0
                && t.ssd_misses == 0
                && t.sleeps_denied == 0
                && t.spin_cycles == 0
                && t.ssd_energy_j == 0.0;
            if !quiet {
                return Err(format!("tier counters moved without a policy plane: {t:?}"));
            }
            return Ok(());
        }
        if s.power_kind < 3 && (t.dram_hits != 0 || t.ssd_hits != 0 || t.ssd_energy_j != 0.0) {
            return Err(format!("tier hits without configured tiers: {t:?}"));
        }
        match s.spin_cap {
            None => {
                if t.sleeps_denied != 0 {
                    return Err(format!(
                        "{} sleeps denied without a spin cap",
                        t.sleeps_denied
                    ));
                }
            }
            Some(cap) => {
                let disks = (crate::schedule::NODES * crate::schedule::DISKS_PER_NODE) as u64;
                if t.spin_cycles > cap as u64 * disks {
                    return Err(format!(
                        "{} spin cycles exceed cap {cap} x {disks} disks",
                        t.spin_cycles
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The same schedule re-executed in-process must reproduce the metrics
/// bit-for-bit (checked only on scenarios the campaign double-runs).
struct Determinism;
impl Invariant for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let Some(second) = cx.second else {
            return Ok(());
        };
        let a = serde_json::to_string(cx.metrics).map_err(|e| format!("serialize: {e}"))?;
        let b = serde_json::to_string(second).map_err(|e| format!("serialize: {e}"))?;
        if a != b {
            return Err("same-input re-run produced different metrics".to_string());
        }
        Ok(())
    }
}

/// The audit plane's hard invariant, attested under full adversarial
/// composition: re-execute the schedule with the trace recorder
/// attached, reconstruct per-request spans and disk residency, build the
/// attribution ledger, and require that (1) observation is passive — the
/// observed run's metrics are bit-identical to the plain run's — (2) the
/// span reconstructor accounts for every request in the schedule, and
/// (3) the ledger closes bit-exactly against the `RunMetrics` totals
/// ([`eevfs_audit::EnergyLedger::verify_closure`]).
struct LedgerClosure;
impl Invariant for LedgerClosure {
    fn name(&self) -> &'static str {
        "ledger-closure"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        use crate::exec::{execute_observed, ObservedOutcome};
        let (metrics, report) = match execute_observed(cx.schedule) {
            ObservedOutcome::Done(m, r) => (m, r),
            ObservedOutcome::Rejected(e) => {
                return Err(format!("observed re-run rejected: {e}"));
            }
            ObservedOutcome::Panicked(p) => {
                return Err(format!("observed re-run panicked: {p}"));
            }
        };
        let plain = serde_json::to_string(cx.metrics).map_err(|e| format!("serialize: {e}"))?;
        let observed = serde_json::to_string(&*metrics).map_err(|e| format!("serialize: {e}"))?;
        if plain != observed {
            return Err("attaching the recorder changed the metrics".to_string());
        }
        let events: Vec<_> = report.recorder.events().cloned().collect();
        let spans = eevfs_audit::reconstruct_spans(&events);
        if spans.len() as u32 != cx.schedule.requests {
            return Err(format!(
                "span reconstructor lost requests: {} spans for {} requests",
                spans.len(),
                cx.schedule.requests
            ));
        }
        let warmup_us = metrics.prefetch.warmup_us;
        let end_us = warmup_us + (metrics.duration_s * 1e6).round() as u64;
        let residency = eevfs_audit::ResidencyTable::from_events(&events, warmup_us, end_us);
        let model = eevfs_audit::AttributionModel::from_cluster(
            &eevfs::config::ClusterSpec::paper_testbed(),
        );
        let ledger = eevfs_audit::build_ledger(&metrics, &spans, &residency, &model);
        ledger.verify_closure(&metrics)
    }
}

/// The overload plane's shed ledger closes exactly on every run:
/// `offered == admitted + rejected + shed` and every admitted request is
/// classified as exactly one of completed / node-shed / failed. Without
/// a gate in the schedule no overload counter may move at all.
struct ShedLedger;
impl Invariant for ShedLedger {
    fn name(&self) -> &'static str {
        "shed-ledger"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let o = &cx.metrics.overload;
        if !o.ledger_closes() {
            return Err(format!("shed ledger does not close: {o:?}"));
        }
        if cx.schedule.overload.is_none() && *o != Default::default() {
            return Err(format!("overload counters moved without a gate: {o:?}"));
        }
        Ok(())
    }
}

/// With a bounded admission gate the server queue never grows past the
/// configured inflight cap — the run sheds instead of queueing
/// unboundedly — and every refused request is visible in the ledger.
struct BoundedQueue;
impl Invariant for BoundedQueue {
    fn name(&self) -> &'static str {
        "bounded-queue"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        let Some(cap) = cx.schedule.overload else {
            return Ok(());
        };
        let o = &cx.metrics.overload;
        if o.queue_peak > cap as u64 {
            return Err(format!(
                "queue peak {} exceeds admission cap {cap}",
                o.queue_peak
            ));
        }
        if o.max_level >= 3 && o.rejected == 0 {
            return Err(format!(
                "ladder reached L3 but the gate rejected nothing: {o:?}"
            ));
        }
        Ok(())
    }
}

/// The deliberately broken canary: asserts the cluster never sees a
/// fault, which any fired fault event refutes. Exists so the test suite
/// and CI can prove the search finds violations and the shrinker
/// minimises them to a single-event schedule.
struct CanaryQuietCluster;
impl Invariant for CanaryQuietCluster {
    fn name(&self) -> &'static str {
        "canary-quiet-cluster"
    }
    fn check(&self, cx: &CheckContext<'_>) -> Result<(), String> {
        if cx.metrics.fault_events > 0 {
            return Err(format!(
                "{} fault events fired (the canary pretends none ever do)",
                cx.metrics.fault_events
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{generate_schedule, SeverityEnvelope};
    use fault_model::{FaultEvent, FaultKind};
    use sim_core::SimTime;

    #[test]
    fn outage_peak_tracks_overlap() {
        let env = SeverityEnvelope::default_search();
        let mut s = generate_schedule(&env, 1, 0);
        s.faults = vec![
            FaultEvent {
                at: SimTime::from_secs(1),
                kind: FaultKind::DiskFail { node: 0, disk: 0 },
            },
            FaultEvent {
                at: SimTime::from_secs(2),
                kind: FaultKind::DiskRepair { node: 0, disk: 0 },
            },
            FaultEvent {
                at: SimTime::from_secs(3),
                kind: FaultKind::DiskFail { node: 1, disk: 1 },
            },
        ];
        s.crashes.clear();
        assert_eq!(max_concurrent_outages(&s), 1);
        // Overlap the two failures: the peak rises to 2.
        s.faults[1].at = SimTime::from_secs(4);
        assert_eq!(max_concurrent_outages(&s), 2);
    }

    #[test]
    fn shed_ledger_and_bounded_queue_catch_doctored_runs() {
        let env = SeverityEnvelope::default_search();
        let mut s = generate_schedule(&env, 5, 0);
        s.overload = None;
        let crate::exec::RunOutcome::Done(mut m) = crate::exec::execute(&s) else {
            panic!("scenario must complete");
        };
        // Gateless runs must keep the overload ledger untouched.
        m.overload.offered = 1;
        let cx = CheckContext {
            schedule: &s,
            metrics: &m,
            second: None,
        };
        assert!(ShedLedger.check(&cx).is_err());
        // A queue peak past the admission cap breaks the bound.
        m.overload = Default::default();
        m.overload.queue_peak = 9;
        s.overload = Some(4);
        let cx = CheckContext {
            schedule: &s,
            metrics: &m,
            second: None,
        };
        assert!(BoundedQueue.check(&cx).is_err());
        assert!(ShedLedger.check(&cx).is_ok(), "empty ledger still closes");
    }

    #[test]
    fn standard_set_has_no_duplicate_names() {
        let names = InvariantSet::standard().names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert!(InvariantSet::with_canary().names().len() > names.len());
    }
}
