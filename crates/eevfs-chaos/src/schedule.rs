//! The chaos schedule: one fully-explicit, serializable scenario.
//!
//! A [`ChaosSchedule`] is the unit the whole engine revolves around. It
//! pins *everything* a run depends on — trace parameters, replication,
//! scrub/power knobs, and the four fault-event lists in explicit form —
//! so that (a) executing it is a pure function with no hidden state, (b)
//! the shrinker can delete individual events, and (c) a JSON round-trip
//! reproduces the run bit-for-bit.
//!
//! Schedules are *sampled* from a [`SeverityEnvelope`]: per-scenario
//! split-stream RNGs draw concrete Poisson rates inside the envelope,
//! the existing `fault-model` generators materialise plans from those
//! rates, and the plans' events are flattened into the schedule. The
//! envelope changes *what* is explored; the schedule records *exactly*
//! what was explored.

use fault_model::{
    CorruptionEvent, CorruptionPlan, CorruptionSpec, CrashPlan, CrashSpec, FaultEvent, FaultPlan,
    FaultSpec, LinkFaultProfile, NetFaultEvent, NetFaultPlan, NetFaultSpec, RpcPolicy,
};
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng};

/// Storage nodes in the chaos cluster (the paper's 8-node testbed).
pub const NODES: u32 = 8;
/// Data disks per node in the chaos cluster.
pub const DISKS_PER_NODE: u32 = 2;
/// Blocks per data disk in the scrub address space.
pub const BLOCKS_PER_DISK: u32 = 2048;
/// The paper's inter-arrival gap, used to size schedule horizons.
const INTER_ARRIVAL_S: f64 = 0.7;
/// Slack past the last trace arrival so repairs/heals can land.
const HORIZON_MARGIN_S: u64 = 120;

/// One fully-explicit chaos scenario: every input of a run, serialized.
///
/// Executing the same schedule twice — in any process, at any `--jobs`
/// count — produces byte-identical [`eevfs::RunMetrics`]; that is the
/// determinism contract reproducer artifacts rely on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// Seed for the synthetic trace and any seeded policy streams.
    pub seed: u64,
    /// Requests in the synthetic trace.
    pub requests: u32,
    /// Replica count (`EevfsConfig::paper_pf_replicated`).
    pub replication: u32,
    /// Piggyback scrubbing on (`ScrubPolicy::piggyback_default`) or off.
    pub scrub: bool,
    /// Power plane: 0 = none (static idle threshold), 1 = fixed-threshold
    /// predictor, 2 = EWMA predictor, 3 = bandit predictor + DRAM/SSD tiers.
    pub power_kind: u8,
    /// Per-disk spin-cycle budget; only meaningful when `power_kind > 0`.
    pub spin_cap: Option<u32>,
    /// RPC policy: 0 = no-retry, 1 = retrying, 2 = retrying + hedged.
    pub policy_kind: u8,
    /// Bounded-admission gate: `Some(max_inflight)` runs the scenario
    /// behind the overload control plane (`OverloadConfig::bounded`),
    /// `None` keeps the legacy unbounded server queue. Defaults to
    /// `None` so pre-overload reproducer artifacts still parse.
    #[serde(default)]
    pub overload: Option<u32>,
    /// Disk/node fail-stop events (replay-relative times).
    pub faults: Vec<FaultEvent>,
    /// Link partition/heal events.
    pub net: Vec<NetFaultEvent>,
    /// Latent-sector-error / bit-flip events.
    pub corruption: Vec<CorruptionEvent>,
    /// Crash/restart events driving journal replay (node-only kinds).
    pub crashes: Vec<FaultEvent>,
    /// Per-message drop/reset/delay probabilities.
    pub profile: LinkFaultProfile,
}

impl ChaosSchedule {
    /// Total scheduled fault events across all four dimensions — the size
    /// the shrinker minimises.
    pub fn event_count(&self) -> usize {
        self.faults.len() + self.net.len() + self.corruption.len() + self.crashes.len()
    }

    /// A strict-order measure for "candidate is smaller than original":
    /// fewer events, or equally many events driven by fewer requests or a
    /// quieter link profile.
    pub fn size(&self) -> (usize, u32, u64) {
        let prob_milli =
            ((self.profile.drop_prob + self.profile.reset_prob + self.profile.delay_prob) * 1000.0)
                as u64;
        (self.event_count(), self.requests, prob_milli)
    }

    /// Horizon the schedule's plans were generated against.
    pub fn horizon(&self) -> SimDuration {
        horizon_for(self.requests)
    }

    /// The RPC policy this schedule runs under, reconstructed from
    /// `policy_kind` and `seed`.
    pub fn rpc_policy(&self) -> RpcPolicy {
        let deadline = SimDuration::from_secs(60);
        let per_try = SimDuration::from_secs(3);
        match self.policy_kind {
            0 => RpcPolicy::no_retry(deadline),
            1 => {
                let mut p = RpcPolicy::retrying(deadline, per_try, 4);
                p.seed = self.seed;
                p
            }
            _ => {
                let mut p = RpcPolicy::hedged(deadline, per_try, 4, SimDuration::from_secs(4));
                p.seed = self.seed;
                p
            }
        }
    }

    /// Rebuilds the four validated plans from the explicit event lists.
    /// `Err` carries the reason when an event list violates a plan's shape
    /// rules (e.g. a disk event in the crash plan).
    pub fn plans(&self) -> Result<SchedulePlans, String> {
        Ok(SchedulePlans {
            faults: FaultPlan::from_trace(self.faults.iter().copied()),
            net: NetFaultPlan::from_trace(self.net.iter().copied()),
            corruption: CorruptionPlan::from_trace(self.corruption.iter().copied()),
            crashes: CrashPlan::from_trace(self.crashes.iter().copied())?,
        })
    }
}

/// The validated plan set a schedule expands to.
pub struct SchedulePlans {
    /// Disk/node fail-stop plan.
    pub faults: FaultPlan,
    /// Link partition plan.
    pub net: NetFaultPlan,
    /// Corruption plan.
    pub corruption: CorruptionPlan,
    /// Crash/restart plan.
    pub crashes: CrashPlan,
}

/// Per-hour rate range `[lo, hi]` sampled uniformly per scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Range {
    /// A degenerate range pinned to one value.
    pub fn fixed(v: f64) -> Range {
        Range { lo: v, hi: v }
    }

    fn sample(&self, rng: &mut SimRng) -> f64 {
        if self.hi <= self.lo {
            self.lo
        } else {
            self.lo + rng.uniform() * (self.hi - self.lo)
        }
    }
}

/// The severity envelope scenarios are drawn from: how many requests, how
/// hostile the fault processes, which optional planes engage. All rates
/// are per hour of simulated time, matching `fault-model` specs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeverityEnvelope {
    /// Trace length range `[lo, hi)` in requests.
    pub requests_lo: u32,
    /// Upper bound (exclusive) of the trace length range.
    pub requests_hi: u32,
    /// Replica count range `[lo, hi]` (clamped to the node count).
    pub replication_lo: u32,
    /// Upper bound (inclusive) of the replica count range.
    pub replication_hi: u32,
    /// Whole-disk failures per disk-hour.
    pub disk_fail_per_hour: Range,
    /// Node crashes per node-hour fed to the *fail-stop* plan.
    pub node_crash_per_hour: Range,
    /// Failed spin-ups per disk-hour.
    pub spin_up_fail_per_hour: Range,
    /// Link partitions per link-hour.
    pub partition_per_hour: Range,
    /// Latent sector errors per disk-hour.
    pub lse_per_disk_hour: Range,
    /// Silent bit flips per disk-hour.
    pub flip_per_disk_hour: Range,
    /// Crash/restart cycles per node-hour feeding journal replay.
    pub crash_per_node_hour: Range,
    /// Per-message drop probability.
    pub drop_prob: Range,
    /// Probability a scenario scrubs (`ScrubPolicy::piggyback_default`).
    pub scrub_prob: f64,
    /// Probability a scenario runs under an `eevfs-power` policy plane.
    pub power_prob: f64,
    /// Probability a powered scenario also gets a spin-cycle cap.
    pub spin_cap_prob: f64,
    /// Probability a scenario runs behind a bounded admission gate
    /// (the overload control plane). Defaults to 0 so envelopes
    /// serialized before the overload plane existed still parse.
    #[serde(default)]
    pub overload_prob: f64,
}

impl SeverityEnvelope {
    /// The default search envelope: moderately hostile on every axis,
    /// every optional plane flipped on with meaningful probability.
    pub fn default_search() -> SeverityEnvelope {
        SeverityEnvelope {
            requests_lo: 40,
            requests_hi: 120,
            replication_lo: 1,
            replication_hi: 3,
            disk_fail_per_hour: Range { lo: 0.0, hi: 6.0 },
            node_crash_per_hour: Range { lo: 0.0, hi: 2.0 },
            spin_up_fail_per_hour: Range { lo: 0.0, hi: 8.0 },
            partition_per_hour: Range { lo: 0.0, hi: 6.0 },
            lse_per_disk_hour: Range { lo: 0.0, hi: 12.0 },
            flip_per_disk_hour: Range { lo: 0.0, hi: 12.0 },
            crash_per_node_hour: Range { lo: 0.0, hi: 2.0 },
            drop_prob: Range { lo: 0.0, hi: 0.08 },
            scrub_prob: 0.7,
            power_prob: 0.5,
            spin_cap_prob: 0.5,
            overload_prob: 0.5,
        }
    }

    /// The acceptance campaign envelope: replication pinned at >= 2 with
    /// scrubbing always on — the configuration the paper's durability
    /// story promises no data loss for (absent fail-stop outages).
    pub fn r2_scrubbed() -> SeverityEnvelope {
        SeverityEnvelope {
            replication_lo: 2,
            replication_hi: 3,
            scrub_prob: 1.0,
            ..SeverityEnvelope::default_search()
        }
    }

    /// The overload campaign envelope: every scenario runs behind a
    /// bounded admission gate, so the shed-ledger and bounded-queue
    /// invariants fire on every run instead of roughly half of them.
    pub fn overloaded() -> SeverityEnvelope {
        SeverityEnvelope {
            overload_prob: 1.0,
            ..SeverityEnvelope::default_search()
        }
    }
}

fn horizon_for(requests: u32) -> SimDuration {
    SimDuration::from_secs((requests as f64 * INTER_ARRIVAL_S) as u64 + HORIZON_MARGIN_S)
}

/// Samples scenario `index` of the campaign seeded by `base_seed`.
///
/// Each scenario gets its own RNG derived from `(base_seed, index)`, and
/// each fault dimension inside it gets an independent split stream, so
/// scenario `i` is identical no matter how many scenarios surround it and
/// tightening one envelope axis never perturbs the others' schedules.
pub fn generate_schedule(env: &SeverityEnvelope, base_seed: u64, index: u32) -> ChaosSchedule {
    let mut rng = SimRng::seed_from_u64(
        base_seed
            ^ (index as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1),
    );
    let mut dim = [
        rng.split(), // 0: shape (requests, replication, flags)
        rng.split(), // 1: fail-stop faults
        rng.split(), // 2: net partitions
        rng.split(), // 3: corruption
        rng.split(), // 4: crashes
        rng.split(), // 5: link profile
        rng.split(), // 6: overload gate
    ];

    let shape = &mut dim[0];
    let requests = shape.uniform_range(env.requests_lo as u64, env.requests_hi as u64) as u32;
    let replication = shape
        .uniform_range(env.replication_lo as u64, env.replication_hi as u64 + 1)
        .min(NODES as u64) as u32;
    let scrub = shape.uniform() < env.scrub_prob;
    let powered = shape.uniform() < env.power_prob;
    let power_kind = if powered { 1 + shape.index(3) as u8 } else { 0 };
    let spin_cap =
        (powered && shape.uniform() < env.spin_cap_prob).then(|| shape.uniform_range(2, 12) as u32);
    let policy_kind = shape.index(3) as u8;
    let seed = shape.uniform_range(1, u64::MAX);
    let horizon = horizon_for(requests);

    let frng = &mut dim[1];
    let fault_spec = FaultSpec {
        seed: frng.uniform_range(1, u64::MAX),
        horizon,
        nodes: NODES,
        disks_per_node: DISKS_PER_NODE,
        disk_fail_per_hour: env.disk_fail_per_hour.sample(frng),
        mean_repair: SimDuration::from_secs(frng.uniform_range(20, 180)),
        node_crash_per_hour: env.node_crash_per_hour.sample(frng),
        mean_restart: SimDuration::from_secs(frng.uniform_range(15, 90)),
        spin_up_fail_per_hour: env.spin_up_fail_per_hour.sample(frng),
    };

    let nrng = &mut dim[2];
    let net_spec = NetFaultSpec {
        seed: nrng.uniform_range(1, u64::MAX),
        horizon,
        links: NODES,
        partition_per_hour: env.partition_per_hour.sample(nrng),
        mean_partition: SimDuration::from_secs(nrng.uniform_range(10, 120)),
    };

    let crng = &mut dim[3];
    let corruption_spec = CorruptionSpec {
        seed: crng.uniform_range(1, u64::MAX),
        horizon,
        nodes: NODES,
        disks_per_node: DISKS_PER_NODE,
        blocks_per_disk: BLOCKS_PER_DISK,
        lse_per_disk_hour: env.lse_per_disk_hour.sample(crng),
        flip_per_disk_hour: env.flip_per_disk_hour.sample(crng),
    };

    let xrng = &mut dim[4];
    let crash_spec = CrashSpec {
        seed: xrng.uniform_range(1, u64::MAX),
        horizon,
        nodes: NODES,
        crash_per_node_hour: env.crash_per_node_hour.sample(xrng),
        mean_restart: SimDuration::from_secs(xrng.uniform_range(15, 60)),
    };

    let orng = &mut dim[6];
    let overload = (orng.uniform() < env.overload_prob).then(|| orng.uniform_range(2, 24) as u32);

    let prng = &mut dim[5];
    let drop_prob = env.drop_prob.sample(prng);
    let profile = LinkFaultProfile {
        seed: prng.uniform_range(1, u64::MAX),
        drop_prob,
        reset_prob: drop_prob / 4.0,
        delay_prob: drop_prob / 2.0,
        mean_delay: SimDuration::from_secs(2),
    };

    ChaosSchedule {
        seed,
        requests,
        replication,
        scrub,
        power_kind,
        spin_cap,
        policy_kind,
        overload,
        faults: FaultPlan::generate(&fault_spec).events().to_vec(),
        net: NetFaultPlan::generate(&net_spec).events().to_vec(),
        corruption: CorruptionPlan::generate(&corruption_spec).events().to_vec(),
        crashes: CrashPlan::generate(&crash_spec).events().to_vec(),
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_index_independent() {
        let env = SeverityEnvelope::default_search();
        let a = generate_schedule(&env, 7, 3);
        let b = generate_schedule(&env, 7, 3);
        assert_eq!(a, b);
        // A different index is a genuinely different scenario.
        assert_ne!(a, generate_schedule(&env, 7, 4));
        // And a different base seed re-rolls the same index.
        assert_ne!(a, generate_schedule(&env, 8, 3));
    }

    #[test]
    fn schedules_round_trip_through_json() {
        let env = SeverityEnvelope::default_search();
        for i in 0..8 {
            let s = generate_schedule(&env, 42, i);
            let text = serde_json::to_string(&s).expect("serialize");
            let back: ChaosSchedule = serde_json::from_str(&text).expect("parse");
            assert_eq!(s, back, "scenario {i} JSON round-trip");
        }
    }

    #[test]
    fn plans_rebuild_in_range() {
        let env = SeverityEnvelope::default_search();
        for i in 0..16 {
            let s = generate_schedule(&env, 9, i);
            let plans = s.plans().expect("valid plans");
            assert!(plans.faults.out_of_range(NODES, DISKS_PER_NODE).is_empty());
            assert!(plans.net.out_of_range(NODES).is_empty());
            assert!(plans
                .corruption
                .out_of_range(NODES, DISKS_PER_NODE)
                .is_empty());
            assert!(plans.crashes.out_of_range(NODES).is_empty());
        }
    }
}
