//! # net-model
//!
//! Network substrate for the EEVFS cluster simulation.
//!
//! The paper's testbed wires one storage server and eight storage nodes
//! through a switching fabric: the server and Type 1 nodes on 1 Gb/s
//! Ethernet, the Type 2 nodes on 100 Mb/s (Table I). Response time in the
//! paper is disk service + network transfer + queueing; this crate models
//! the network part:
//!
//! * [`link`] — a point-to-point [`link::Link`]: bandwidth + latency, with
//!   store-and-forward composition across the switch.
//! * [`nic`] — a FIFO-serialised port ([`nic::Nic`]): one large file
//!   transfer occupies the node's NIC for `size/bandwidth`, which is what
//!   creates the server/node queueing the paper observes at 50 MB files.
//! * [`message`] — small fixed-cost control messages (request, metadata
//!   lookup, hint propagation).

#![warn(missing_docs)]

pub mod link;
pub mod message;
pub mod nic;

pub use link::Link;
pub use message::control_message_time;
pub use nic::Nic;
