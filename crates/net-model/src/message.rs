//! Control-message costs.
//!
//! EEVFS control traffic — a client's file request, the server's metadata
//! lookup + forward, hint propagation — is tiny compared to file payloads,
//! but it puts a floor under response time that matters at 1 MB file sizes
//! (the paper's Fig 5(a) measures ~120 ms total at 1 MB, far above raw
//! disk + wire time). We model a control message as a fixed payload over
//! the link plus a per-hop software overhead representing the prototype's
//! request parsing, thread hand-off, and TCP connection management on the
//! Linux 2.4 testbed.

use crate::link::Link;
use sim_core::SimDuration;

/// Payload size of a control message, bytes (request headers, metadata).
pub const CONTROL_MESSAGE_BYTES: u64 = 512;

/// Software overhead per control-message hop on the prototype. Calibrated
/// so that small-file response times land at the paper's measured floor.
pub fn default_software_overhead() -> SimDuration {
    SimDuration::from_millis(5)
}

/// Time for one control message over `link`, including software overhead.
pub fn control_message_time(link: &Link, software_overhead: SimDuration) -> SimDuration {
    link.transfer_time(CONTROL_MESSAGE_BYTES) + software_overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_message_is_milliseconds_not_seconds() {
        let t = control_message_time(&Link::fast_ethernet(), default_software_overhead());
        let s = t.as_secs_f64();
        assert!(s > 0.001 && s < 0.02, "got {s}");
    }

    #[test]
    fn overhead_dominates_wire_time() {
        let wire = Link::gigabit().transfer_time(CONTROL_MESSAGE_BYTES);
        assert!(default_software_overhead() > wire);
    }

    #[test]
    fn zero_overhead_is_pure_wire_time() {
        let l = Link::gigabit();
        assert_eq!(
            control_message_time(&l, SimDuration::ZERO),
            l.transfer_time(CONTROL_MESSAGE_BYTES)
        );
    }
}
