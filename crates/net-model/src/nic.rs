//! FIFO-serialised network port.
//!
//! A storage node streams one file to one client at a time over its NIC
//! (the paper's prototype opens a fresh TCP connection per response,
//! §IV-A step 6). Under heavy load the NIC becomes the queueing stage that
//! stretches runs — the effect behind the paper's 50 MB data point in
//! Fig 3(a) ("the queue for the storage client nodes becomes quite large
//! and the test runs longer than the original trace time").

use crate::link::Link;
use sim_core::{SimDuration, SimTime};

/// Outcome of scheduling a transfer on a [`Nic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferInfo {
    /// When the transfer began (after queueing behind earlier transfers).
    pub start: SimTime,
    /// When the last byte arrived at the far end.
    pub finish: SimTime,
    /// Queueing delay: `start - submit_time`.
    pub waited: SimDuration,
}

/// A serialised network port with FIFO service.
#[derive(Debug, Clone)]
pub struct Nic {
    link: Link,
    free_at: SimTime,
    bytes_sent: u64,
    transfers: u64,
    busy_us: u64,
}

impl Nic {
    /// A new idle port on the given link.
    pub fn new(link: Link) -> Self {
        Nic {
            link,
            free_at: SimTime::ZERO,
            bytes_sent: 0,
            transfers: 0,
            busy_us: 0,
        }
    }

    /// The underlying link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// When everything queued so far will have drained.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total time this port spent transferring, seconds.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_us as f64 / 1e6
    }

    /// Utilisation over a horizon (busy time / horizon).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            (self.busy_us as f64 / 1e6) / horizon.as_secs_f64()
        }
    }

    /// Schedules a transfer of `bytes` submitted at `now`. FIFO behind any
    /// queued transfers.
    pub fn send(&mut self, now: SimTime, bytes: u64) -> TransferInfo {
        let start = now.max(self.free_at);
        let dur = self.link.transfer_time(bytes);
        let finish = start + dur;
        self.free_at = finish;
        self.bytes_sent += bytes;
        self.transfers += 1;
        self.busy_us += dur.as_micros();
        TransferInfo {
            start,
            finish,
            waited: start - now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_transfers_queue() {
        let mut nic = Nic::new(Link::fast_ethernet()); // 7.5 MB/s payload
        let a = nic.send(SimTime::ZERO, 10_000_000);
        let b = nic.send(SimTime::ZERO, 10_000_000);
        assert!(a.waited.is_zero());
        assert_eq!(b.start, a.finish);
        assert!(b.waited > SimDuration::from_millis(1300));
        assert_eq!(nic.transfers(), 2);
        assert_eq!(nic.bytes_sent(), 20_000_000);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut nic = Nic::new(Link::fast_ethernet());
        let a = nic.send(SimTime::ZERO, 1_000_000);
        let b = nic.send(SimTime::from_secs(10), 1_000_000);
        assert!(b.start > a.finish);
        assert!(b.waited.is_zero());
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut nic = Nic::new(Link::fast_ethernet());
        nic.send(SimTime::ZERO, 10_000_000); // ~1.33 s busy
        let u = nic.utilization(SimTime::from_secs(10));
        assert!(u > 0.12 && u < 0.15, "got {u}");
        assert_eq!(Nic::new(Link::gigabit()).utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn busy_seconds_accumulates() {
        let mut nic = Nic::new(Link::fast_ethernet());
        nic.send(SimTime::ZERO, 10_000_000);
        nic.send(SimTime::from_secs(5), 10_000_000);
        assert!(
            (nic.busy_seconds() - 2.0 * 10.0 / 7.5).abs() < 0.01,
            "got {}",
            nic.busy_seconds()
        );
    }
}
