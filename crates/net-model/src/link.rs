//! Point-to-point link model.
//!
//! A [`Link`] is bandwidth plus propagation/stack latency. End-to-end paths
//! through the paper's switch compose as store-and-forward: latencies add,
//! the slowest hop's bandwidth gates the transfer.

use serde::{Deserialize, Serialize};
use sim_core::SimDuration;

/// Megabits per second → bytes per second.
pub const MBIT: u64 = 1_000_000 / 8;

/// A unidirectional network link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Achievable payload bandwidth, bytes/second.
    pub bandwidth_bps: u64,
    /// Fixed per-message latency (propagation + protocol stack).
    pub latency: SimDuration,
}

impl Link {
    /// Gigabit Ethernet as on the server and Type 1 nodes (Table I). The
    /// paper's cards are "1 Gbits/sec", but a 2003-class P4 running Linux
    /// 2.4 with a user-space file server moves ~400 Mb/s of payload
    /// (interrupt + copy bound), which is what we model.
    pub fn gigabit() -> Link {
        Link {
            bandwidth_bps: 400 * MBIT,
            latency: SimDuration::from_micros(150),
        }
    }

    /// Fast Ethernet as on the Type 2 nodes (Table I): ~60 Mb/s of payload
    /// through the same prototype stack.
    pub fn fast_ethernet() -> Link {
        Link {
            bandwidth_bps: 60 * MBIT,
            latency: SimDuration::from_micros(200),
        }
    }

    /// An effectively infinite link, for isolating disk effects in tests.
    pub fn infinite() -> Link {
        Link {
            bandwidth_bps: u64::MAX,
            latency: SimDuration::ZERO,
        }
    }

    /// Time to push `bytes` through this link alone.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.bandwidth_bps == u64::MAX {
            return self.latency;
        }
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps as f64)
    }

    /// Store-and-forward composition of two hops through a switch:
    /// latencies (plus the switch's own) add, bandwidth is the minimum.
    pub fn compose(&self, other: &Link, switch_latency: SimDuration) -> Link {
        Link {
            bandwidth_bps: self.bandwidth_bps.min(other.bandwidth_bps),
            latency: self.latency + other.latency + switch_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_moves_ten_megabytes_in_about_200ms() {
        let t = Link::gigabit().transfer_time(10_000_000);
        let s = t.as_secs_f64();
        assert!(s > 0.18 && s < 0.22, "got {s}");
    }

    #[test]
    fn fast_ethernet_is_several_times_slower_than_gigabit() {
        let g = Link::gigabit().transfer_time(100_000_000).as_secs_f64();
        let f = Link::fast_ethernet()
            .transfer_time(100_000_000)
            .as_secs_f64();
        let ratio = f / g;
        assert!((ratio - 400.0 / 60.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let l = Link::fast_ethernet();
        assert_eq!(l.transfer_time(0), l.latency);
    }

    #[test]
    fn compose_takes_min_bandwidth_and_sums_latency() {
        let sw = SimDuration::from_micros(50);
        let path = Link::gigabit().compose(&Link::fast_ethernet(), sw);
        assert_eq!(path.bandwidth_bps, Link::fast_ethernet().bandwidth_bps);
        assert_eq!(
            path.latency,
            Link::gigabit().latency + Link::fast_ethernet().latency + sw
        );
    }

    #[test]
    fn infinite_link_is_free_apart_from_latency() {
        let l = Link::infinite();
        assert_eq!(l.transfer_time(u64::MAX / 2), SimDuration::ZERO);
    }

    #[test]
    fn compose_is_commutative() {
        let sw = SimDuration::from_micros(10);
        let a = Link::gigabit().compose(&Link::fast_ethernet(), sw);
        let b = Link::fast_ethernet().compose(&Link::gigabit(), sw);
        assert_eq!(a, b);
    }

    #[test]
    fn transfer_monotone_in_bytes() {
        let l = Link::fast_ethernet();
        let mut prev = SimDuration::ZERO;
        for b in [0u64, 1_000, 1_000_000, 50_000_000] {
            let t = l.transfer_time(b);
            assert!(t >= prev);
            prev = t;
        }
    }
}
