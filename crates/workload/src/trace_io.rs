//! Trace serialisation.
//!
//! Two formats:
//!
//! * **Text** — one line per event, human-diffable, close to classic trace
//!   archives (and to the paper's append-only request log). Comments start
//!   with `#`.
//! * **JSON** — the full [`Trace`] via serde, used by the harness to stash
//!   generated workloads next to experiment results.
//!
//! Text grammar (v1):
//!
//! ```text
//! # anything
//! eevfs-trace v1
//! F <file-id> <size-bytes>          (one per file, ascending id)
//! R <time-us> <file-id>             (read)
//! W <time-us> <file-id>             (write)
//! ```

use crate::record::{FileId, Op, Trace, TraceRecord};
use sim_core::SimTime;
use std::fmt::Write as _;

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The `eevfs-trace v1` header line is missing or wrong.
    BadHeader,
    /// A line failed to parse; carries the 1-based line number and reason.
    BadLine(usize, String),
    /// The assembled trace failed [`Trace::validate`].
    Inconsistent(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing 'eevfs-trace v1' header"),
            ParseError::BadLine(n, why) => write!(f, "line {n}: {why}"),
            ParseError::Inconsistent(why) => write!(f, "inconsistent trace: {why}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Renders a trace in the v1 text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("eevfs-trace v1\n");
    for (i, &size) in trace.file_sizes.iter().enumerate() {
        writeln!(out, "F {i} {size}").expect("write to String");
    }
    for r in &trace.records {
        let tag = match r.op {
            Op::Read => 'R',
            Op::Write => 'W',
        };
        writeln!(out, "{tag} {} {}", r.at.as_micros(), r.file.0).expect("write to String");
    }
    out
}

/// Parses the v1 text format.
pub fn from_text(text: &str) -> Result<Trace, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    match lines.next() {
        Some((_, "eevfs-trace v1")) => {}
        _ => return Err(ParseError::BadHeader),
    }

    let mut file_sizes: Vec<u64> = Vec::new();
    let mut records: Vec<TraceRecord> = Vec::new();
    for (n, line) in lines {
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().expect("non-empty line has a first token");
        let bad = |why: &str| ParseError::BadLine(n, why.to_string());
        match tag {
            "F" => {
                let id: usize = parts
                    .next()
                    .ok_or_else(|| bad("missing file id"))?
                    .parse()
                    .map_err(|_| bad("file id not a number"))?;
                let size: u64 = parts
                    .next()
                    .ok_or_else(|| bad("missing size"))?
                    .parse()
                    .map_err(|_| bad("size not a number"))?;
                if id != file_sizes.len() {
                    return Err(bad(&format!(
                        "file ids must be dense ascending; expected {}, got {id}",
                        file_sizes.len()
                    )));
                }
                file_sizes.push(size);
            }
            "R" | "W" => {
                let t: u64 = parts
                    .next()
                    .ok_or_else(|| bad("missing timestamp"))?
                    .parse()
                    .map_err(|_| bad("timestamp not a number"))?;
                let id: u32 = parts
                    .next()
                    .ok_or_else(|| bad("missing file id"))?
                    .parse()
                    .map_err(|_| bad("file id not a number"))?;
                let size = *file_sizes
                    .get(id as usize)
                    .ok_or_else(|| bad(&format!("request for undeclared file {id}")))?;
                records.push(TraceRecord {
                    at: SimTime::from_micros(t),
                    file: FileId(id),
                    op: if tag == "R" { Op::Read } else { Op::Write },
                    size,
                });
            }
            other => return Err(bad(&format!("unknown tag {other:?}"))),
        }
        if parts.next().is_some() {
            return Err(ParseError::BadLine(n, "trailing tokens".into()));
        }
    }

    let trace = Trace {
        file_sizes: std::sync::Arc::new(file_sizes),
        records,
    };
    trace.validate().map_err(ParseError::Inconsistent)?;
    Ok(trace)
}

/// Serialises a trace as JSON.
pub fn to_json(trace: &Trace) -> String {
    serde_json::to_string(trace).expect("Trace is always serialisable")
}

/// Parses a JSON trace and validates it.
pub fn from_json(json: &str) -> Result<Trace, String> {
    let trace: Trace = serde_json::from_str(json).map_err(|e| e.to_string())?;
    trace.validate()?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticSpec};

    fn sample() -> Trace {
        let spec = SyntheticSpec {
            files: 20,
            requests: 50,
            mu: 5.0,
            write_fraction: 0.2,
            ..SyntheticSpec::paper_default()
        };
        generate(&spec)
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let text = to_text(&t);
        let back = from_text(&text).expect("roundtrip parse");
        assert_eq!(t, back);
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let back = from_json(&to_json(&t)).expect("roundtrip parse");
        assert_eq!(t, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\n\neevfs-trace v1\n# files\nF 0 100\n\nR 0 0\n";
        let t = from_text(text).expect("parse with comments");
        assert_eq!(t.len(), 1);
        assert_eq!(t.file_count(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(from_text("F 0 100\n"), Err(ParseError::BadHeader));
        assert_eq!(from_text(""), Err(ParseError::BadHeader));
    }

    #[test]
    fn bad_lines_carry_line_numbers() {
        let text = "eevfs-trace v1\nF 0 100\nR zero 0\n";
        match from_text(text) {
            Err(ParseError::BadLine(3, why)) => assert!(why.contains("timestamp")),
            other => panic!("expected BadLine(3, ..), got {other:?}"),
        }
    }

    #[test]
    fn undeclared_file_rejected() {
        let text = "eevfs-trace v1\nF 0 100\nR 0 7\n";
        assert!(matches!(from_text(text), Err(ParseError::BadLine(3, _))));
    }

    #[test]
    fn non_dense_file_ids_rejected() {
        let text = "eevfs-trace v1\nF 1 100\n";
        assert!(matches!(from_text(text), Err(ParseError::BadLine(2, _))));
    }

    #[test]
    fn out_of_order_records_rejected_via_validate() {
        let text = "eevfs-trace v1\nF 0 100\nR 50 0\nR 10 0\n";
        assert!(matches!(from_text(text), Err(ParseError::Inconsistent(_))));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let text = "eevfs-trace v1\nF 0 100 junk\n";
        assert!(matches!(from_text(text), Err(ParseError::BadLine(2, _))));
    }

    #[test]
    fn write_ops_roundtrip() {
        let text = "eevfs-trace v1\nF 0 64\nW 0 0\nR 5 0\n";
        let t = from_text(text).expect("parse");
        assert_eq!(t.records[0].op, Op::Write);
        assert_eq!(t.records[1].op, Op::Read);
        assert_eq!(from_text(&to_text(&t)).expect("re-parse"), t);
    }
}
