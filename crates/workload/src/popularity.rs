//! File-popularity analysis.
//!
//! EEVFS derives popularity "based on the number of accesses over a given
//! period of time" from its append-only request log (§IV-B) and uses the
//! ranking twice: the storage server places files across storage nodes in
//! popularity round-robin order (§III-B), and the prefetcher copies the
//! top-K files into buffer disks. [`PopularityTable`] is that ranking.

use crate::record::{FileId, Trace};
use serde::{Deserialize, Serialize};

/// Access counts and the derived popularity ranking for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopularityTable {
    counts: Vec<u64>,
    /// File ids sorted by descending access count; ties break by ascending
    /// id so the ranking is total and deterministic.
    ranked: Vec<FileId>,
}

impl PopularityTable {
    /// Builds the table from a trace (every file in the population gets a
    /// rank, including never-accessed files, which sort last).
    pub fn from_trace(trace: &Trace) -> Self {
        let mut counts = vec![0u64; trace.file_count()];
        for r in &trace.records {
            counts[r.file.index()] += 1;
        }
        Self::from_counts(counts)
    }

    /// Builds the table from raw per-file access counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let mut ranked: Vec<FileId> = (0..counts.len() as u32).map(FileId).collect();
        ranked.sort_by(|a, b| {
            counts[b.index()]
                .cmp(&counts[a.index()])
                .then(a.0.cmp(&b.0))
        });
        PopularityTable { counts, ranked }
    }

    /// Number of files covered.
    pub fn file_count(&self) -> usize {
        self.counts.len()
    }

    /// Access count of a file.
    pub fn count(&self, file: FileId) -> u64 {
        self.counts[file.index()]
    }

    /// Files by descending popularity.
    pub fn ranked(&self) -> &[FileId] {
        &self.ranked
    }

    /// The `k` most popular files (fewer when the population is smaller).
    pub fn top_k(&self, k: usize) -> &[FileId] {
        &self.ranked[..k.min(self.ranked.len())]
    }

    /// Popularity rank of a file (0 = most popular).
    pub fn rank_of(&self, file: FileId) -> usize {
        // O(n); used in tests and reporting, not hot paths.
        self.ranked
            .iter()
            .position(|&f| f == file)
            .expect("file outside population")
    }

    /// Number of files with at least one access.
    pub fn accessed_files(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Fraction of all accesses that land on the `k` most popular files —
    /// the quantity that decides how much a K-file prefetch can absorb.
    pub fn coverage_of_top_k(&self, k: usize) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let covered: u64 = self.top_k(k).iter().map(|f| self.counts[f.index()]).sum();
        covered as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Op, TraceRecord};
    use sim_core::SimTime;

    fn trace_with_counts(counts: &[u64]) -> Trace {
        let file_sizes = vec![100u64; counts.len()];
        let mut records = Vec::new();
        let mut t = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                records.push(TraceRecord {
                    at: SimTime::from_millis(t),
                    file: FileId(i as u32),
                    op: Op::Read,
                    size: 100,
                });
                t += 1;
            }
        }
        Trace {
            file_sizes: std::sync::Arc::new(file_sizes),
            records,
        }
    }

    #[test]
    fn ranking_descends_by_count() {
        let t = trace_with_counts(&[3, 9, 1, 9, 0]);
        let p = PopularityTable::from_trace(&t);
        // Counts: f1=9, f3=9, f0=3, f2=1, f4=0; ties break by id.
        assert_eq!(
            p.ranked(),
            &[FileId(1), FileId(3), FileId(0), FileId(2), FileId(4)]
        );
        assert_eq!(p.count(FileId(1)), 9);
        assert_eq!(p.rank_of(FileId(4)), 4);
        assert_eq!(p.accessed_files(), 4);
    }

    #[test]
    fn top_k_clamps() {
        let p = PopularityTable::from_trace(&trace_with_counts(&[1, 2]));
        assert_eq!(p.top_k(10).len(), 2);
        assert_eq!(p.top_k(1), &[FileId(1)]);
        assert_eq!(p.top_k(0).len(), 0);
    }

    #[test]
    fn coverage_math() {
        let p = PopularityTable::from_trace(&trace_with_counts(&[6, 3, 1]));
        assert!((p.coverage_of_top_k(1) - 0.6).abs() < 1e-12);
        assert!((p.coverage_of_top_k(2) - 0.9).abs() < 1e-12);
        assert!((p.coverage_of_top_k(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_coverage_is_zero() {
        let t = Trace {
            file_sizes: std::sync::Arc::new(vec![10; 3]),
            records: vec![],
        };
        let p = PopularityTable::from_trace(&t);
        assert_eq!(p.coverage_of_top_k(2), 0.0);
        assert_eq!(p.accessed_files(), 0);
        // Ranking still total: all files present, ordered by id.
        assert_eq!(p.ranked().len(), 3);
        assert_eq!(p.ranked()[0], FileId(0));
    }

    #[test]
    fn from_counts_matches_from_trace() {
        let t = trace_with_counts(&[2, 5, 0, 1]);
        let a = PopularityTable::from_trace(&t);
        let b = PopularityTable::from_counts(vec![2, 5, 0, 1]);
        assert_eq!(a, b);
    }
}
