//! Synthetic stand-in for the Berkeley web trace (Fig 6).
//!
//! The paper replays "a section of the web trace collection" from the
//! Berkeley file-system workload study [UCB/CSD-98-1029], with data size
//! and inter-arrival delay overridden (10 MB, fixed delay) to avoid
//! queueing on the server. The original trace is not redistributable, and
//! the paper itself could not recover the file population ("we were unable
//! to find out how many files were contained in their file system") — what
//! it relies on is one property: "the web trace appeared to be skewed
//! towards a smaller subset of data", tightly enough that *all* data disks
//! slept for the entire run once the top 70 files were prefetched.
//!
//! [`berkeley_web_trace`] reproduces exactly that regime: requests over a
//! small working set with Zipf-distributed popularity (the canonical model
//! for web-server file access since Breslau et al. 1999), embedded in the
//! same 1000-file population as the synthetic experiments.

use crate::record::{FileId, Op, Trace, TraceRecord};
use serde::{Deserialize, Serialize};
use sim_core::rng::Zipf;
use sim_core::{SimDuration, SimRng, SimTime};
use std::sync::Arc;

/// Parameters of the Berkeley-web-trace substitute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BerkeleySpec {
    /// File population of the cluster (the paper's 1000 test files).
    pub files: u32,
    /// Size of the hot working set the web trace concentrates on.
    pub working_set: u32,
    /// Zipf exponent of popularity within the working set.
    pub zipf_alpha: f64,
    /// Number of requests to generate.
    pub requests: u32,
    /// Per-file data size (the paper overrides the trace's sizes; 10 MB).
    pub size_bytes: u64,
    /// Fixed inter-arrival delay (the paper overrides this too).
    pub inter_arrival: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl BerkeleySpec {
    /// The configuration the paper ran Fig 6 with: 10 MB data size, 70
    /// prefetch files upstream, delay tuned to avoid server queueing.
    pub fn paper_default() -> BerkeleySpec {
        BerkeleySpec {
            files: 1000,
            working_set: 60,
            zipf_alpha: 1.0,
            requests: 1000,
            size_bytes: 10_000_000,
            inter_arrival: SimDuration::from_millis(700),
            seed: 0xBE27_EE1E,
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.files == 0 {
            return Err("file population must be positive".into());
        }
        if self.working_set == 0 || self.working_set > self.files {
            return Err(format!(
                "working set {} outside [1, {}]",
                self.working_set, self.files
            ));
        }
        if self.size_bytes == 0 {
            return Err("size must be positive".into());
        }
        if !(self.zipf_alpha >= 0.0 && self.zipf_alpha.is_finite()) {
            return Err(format!("bad zipf alpha {}", self.zipf_alpha));
        }
        Ok(())
    }
}

/// Generates the web-trace substitute. Deterministic in `(spec, seed)`.
///
/// The working set is a seeded random subset of the population (web-hot
/// files are not the first N file ids), with Zipf-ranked popularity.
///
/// # Panics
/// Panics when the spec fails [`BerkeleySpec::validate`].
pub fn berkeley_web_trace(spec: &BerkeleySpec) -> Trace {
    spec.validate()
        .unwrap_or_else(|e| panic!("bad berkeley spec: {e}"));
    let mut rng = SimRng::seed_from_u64(spec.seed);
    let mut set_rng = rng.split();
    let mut req_rng = rng.split();

    // Choose the working set: a random permutation prefix.
    let mut ids: Vec<u32> = (0..spec.files).collect();
    set_rng.shuffle(&mut ids);
    let hot: Vec<u32> = ids[..spec.working_set as usize].to_vec();

    let zipf = Zipf::new(spec.working_set as usize, spec.zipf_alpha);
    let file_sizes = vec![spec.size_bytes; spec.files as usize];
    let mut records = Vec::with_capacity(spec.requests as usize);
    let mut at = SimTime::ZERO;
    for i in 0..spec.requests {
        if i > 0 {
            at += spec.inter_arrival;
        }
        let rank = zipf.sample(&mut req_rng);
        records.push(TraceRecord {
            at,
            file: FileId(hot[rank]),
            op: Op::Read,
            size: spec.size_bytes,
        });
    }
    Trace {
        file_sizes: Arc::new(file_sizes),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_within_working_set() {
        let spec = BerkeleySpec::paper_default();
        let t = berkeley_web_trace(&spec);
        assert!(t.validate().is_ok());
        assert!(t.distinct_files() <= spec.working_set as usize);
        // With 1000 requests over 60 Zipf-weighted files, most get touched.
        assert!(
            t.distinct_files() >= 40,
            "only {} distinct",
            t.distinct_files()
        );
    }

    #[test]
    fn skewed_toward_the_head() {
        let t = berkeley_web_trace(&BerkeleySpec::paper_default());
        let mut counts = std::collections::HashMap::new();
        for r in &t.records {
            *counts.entry(r.file).or_insert(0u32) += 1;
        }
        let mut sorted: Vec<u32> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = sorted.iter().take(10).sum();
        // Zipf(1.0) over 60 ranks: top 10 ranks carry ~63% of the mass.
        assert!(
            top10 as f64 / t.len() as f64 > 0.5,
            "top-10 files carry only {top10} of {} requests",
            t.len()
        );
    }

    #[test]
    fn deterministic() {
        let spec = BerkeleySpec::paper_default();
        assert_eq!(berkeley_web_trace(&spec), berkeley_web_trace(&spec));
    }

    #[test]
    fn working_set_is_not_the_identity_prefix() {
        let t = berkeley_web_trace(&BerkeleySpec::paper_default());
        // If the hot set were files 0..60 the shuffle did nothing.
        assert!(
            t.records.iter().any(|r| r.file.0 >= 60),
            "working set suspiciously equals the first 60 ids"
        );
    }

    #[test]
    fn overridden_sizes_and_delays_apply() {
        let spec = BerkeleySpec::paper_default();
        let t = berkeley_web_trace(&spec);
        assert!(t.records.iter().all(|r| r.size == 10_000_000));
        assert_eq!(
            t.duration(),
            SimDuration::from_millis(700 * (spec.requests as u64 - 1))
        );
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut s = BerkeleySpec::paper_default();
        s.working_set = 0;
        assert!(s.validate().is_err());
        let mut s = BerkeleySpec::paper_default();
        s.working_set = s.files + 1;
        assert!(s.validate().is_err());
        let mut s = BerkeleySpec::paper_default();
        s.zipf_alpha = f64::NAN;
        assert!(s.validate().is_err());
    }
}
