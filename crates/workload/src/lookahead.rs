//! Idle-window extraction from predicted access patterns.
//!
//! The storage node "uses the file access pattern to predict periods when
//! each of its data disks will be idle for long periods of time" (§III-C).
//! Given the times at which a disk is predicted to be touched, the windows
//! between touches that exceed the disk idle threshold are standby
//! candidates. This module is the pure look-ahead arithmetic; the policy
//! that decides which windows to act on lives in the `eevfs` crate.

use sim_core::{SimDuration, SimTime};

/// A half-open idle window `[start, end)` in predicted time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleWindow {
    /// Window start (the predicted completion of the previous touch).
    pub start: SimTime,
    /// Window end (the predicted arrival of the next touch, or the
    /// horizon for the trailing window).
    pub end: SimTime,
}

impl IdleWindow {
    /// Window length.
    pub fn len(&self) -> SimDuration {
        self.end - self.start
    }

    /// True for degenerate (empty) windows.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Extracts all idle windows of at least `min_len` from a disk's predicted
/// touch times.
///
/// `touches` must be sorted ascending (the caller derives them from a
/// time-ordered trace). The window before the first touch (starting at
/// `from`) and the window after the last touch (ending at `horizon`) are
/// included — the leading window is how EEVFS "sleeps the disks at the
/// beginning of the trace execution" when prefetching absorbs everything.
pub fn idle_windows(
    touches: &[SimTime],
    from: SimTime,
    horizon: SimTime,
    min_len: SimDuration,
) -> Vec<IdleWindow> {
    debug_assert!(
        touches.windows(2).all(|w| w[0] <= w[1]),
        "touch times must be sorted"
    );
    let mut out = Vec::new();
    let mut cursor = from;
    for &t in touches {
        if t > cursor {
            let w = IdleWindow {
                start: cursor,
                end: t,
            };
            if w.len() >= min_len {
                out.push(w);
            }
        }
        cursor = cursor.max(t);
    }
    if horizon > cursor {
        let w = IdleWindow {
            start: cursor,
            end: horizon,
        };
        if w.len() >= min_len {
            out.push(w);
        }
    }
    out
}

/// Total idle time across a set of windows.
pub fn total_idle(windows: &[IdleWindow]) -> SimDuration {
    windows
        .iter()
        .fold(SimDuration::ZERO, |acc, w| acc + w.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn finds_interior_windows() {
        let touches = [secs(10), secs(12), secs(30)];
        let ws = idle_windows(&touches, SimTime::ZERO, secs(40), SimDuration::from_secs(5));
        assert_eq!(
            ws,
            vec![
                IdleWindow {
                    start: SimTime::ZERO,
                    end: secs(10)
                },
                IdleWindow {
                    start: secs(12),
                    end: secs(30)
                },
                IdleWindow {
                    start: secs(30),
                    end: secs(40)
                },
            ]
        );
        assert_eq!(total_idle(&ws), SimDuration::from_secs(38));
    }

    #[test]
    fn threshold_filters_short_gaps() {
        let touches = [secs(10), secs(12), secs(30)];
        let ws = idle_windows(
            &touches,
            SimTime::ZERO,
            secs(40),
            SimDuration::from_secs(11),
        );
        // Only the 18 s interior gap survives.
        assert_eq!(
            ws,
            vec![IdleWindow {
                start: secs(12),
                end: secs(30)
            }]
        );
    }

    #[test]
    fn no_touches_is_one_big_window() {
        let ws = idle_windows(&[], SimTime::ZERO, secs(100), SimDuration::from_secs(5));
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].len(), SimDuration::from_secs(100));
    }

    #[test]
    fn touches_at_bounds_produce_no_empty_windows() {
        let touches = [SimTime::ZERO, secs(100)];
        let ws = idle_windows(&touches, SimTime::ZERO, secs(100), SimDuration::ZERO);
        assert_eq!(
            ws,
            vec![IdleWindow {
                start: SimTime::ZERO,
                end: secs(100)
            }]
        );
        assert!(ws.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn duplicate_touches_are_tolerated() {
        let touches = [secs(5), secs(5), secs(5), secs(20)];
        let ws = idle_windows(&touches, SimTime::ZERO, secs(20), SimDuration::from_secs(1));
        assert_eq!(
            ws,
            vec![
                IdleWindow {
                    start: SimTime::ZERO,
                    end: secs(5)
                },
                IdleWindow {
                    start: secs(5),
                    end: secs(20)
                },
            ]
        );
    }

    #[test]
    fn from_after_first_touches_skips_them() {
        let touches = [secs(1), secs(2), secs(50)];
        let ws = idle_windows(&touches, secs(10), secs(60), SimDuration::from_secs(5));
        // Touches before `from` leave cursor at max(from, touch).
        assert_eq!(
            ws,
            vec![
                IdleWindow {
                    start: secs(10),
                    end: secs(50)
                },
                IdleWindow {
                    start: secs(50),
                    end: secs(60)
                },
            ]
        );
    }

    #[test]
    fn zero_horizon_empty() {
        let ws = idle_windows(&[], SimTime::ZERO, SimTime::ZERO, SimDuration::ZERO);
        assert!(ws.is_empty());
    }
}
