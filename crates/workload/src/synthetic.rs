//! Synthetic trace generator (the paper's §V-B parameters).
//!
//! * **File popularity — the MU value.** Each request's file index is a
//!   Poisson(MU) draw taken modulo the population size, exactly the
//!   paper's description: "MU value for the Poisson distribution of file
//!   requests ... 1 skewing the file access patterns to a small number of
//!   files and 1000 spreading out the distribution of files accessed".
//!   MU = 1 touches a handful of files; MU = 100 touches ~60; MU = 1000
//!   touches a couple hundred — which is what makes the paper's
//!   70-file-prefetch cover everything at MU ≤ 100 (Fig 3(b)).
//! * **Data size.** Per *file*, drawn once from [`SizeDist`] and inherited
//!   by every request for that file (the prototype does whole-file I/O).
//! * **Inter-arrival delay.** A fixed delay inserted between consecutive
//!   requests ("we have added 0 to 1000 ms of inter-arrival delay between
//!   requests"), with optional jitter for ablations.

use crate::record::{FileId, Op, Trace, TraceRecord};
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng, SimTime};
use std::sync::Arc;

/// Per-file size distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every file has exactly the mean size (the paper's "data size is
    /// X MB" experiments).
    Fixed,
    /// Exponentially distributed around the mean.
    Exponential,
    /// Log-normal with the given sigma, mean preserved.
    LogNormal {
        /// Sigma of the underlying normal.
        sigma: f64,
    },
    /// Uniform over `[mean*(1-spread), mean*(1+spread)]`.
    Uniform {
        /// Half-width as a fraction of the mean, in `[0, 1]`.
        spread: f64,
    },
}

/// Arrival-process jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Jitter {
    /// Deterministic arrivals every `inter_arrival` (the paper's replay).
    None,
    /// Poisson arrivals with the same mean rate.
    Exponential,
}

/// Full description of a synthetic workload (Table II parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// File population ("total number of files in our test file system is
    /// 1000").
    pub files: u32,
    /// Number of requests to generate.
    pub requests: u32,
    /// The MU value: mean of the Poisson file-index distribution.
    pub mu: f64,
    /// Mean file size in bytes.
    pub mean_size_bytes: u64,
    /// Per-file size distribution.
    pub size_dist: SizeDist,
    /// Delay inserted between consecutive requests.
    pub inter_arrival: SimDuration,
    /// Arrival jitter.
    pub jitter: Jitter,
    /// Fraction of requests that are writes, in `[0, 1]` (0 reproduces the
    /// paper's read traces; >0 exercises the write-buffer area).
    pub write_fraction: f64,
    /// RNG seed; same spec + same seed = identical trace.
    pub seed: u64,
}

impl SyntheticSpec {
    /// The paper's default operating point: 1000 files, MU 1000, 10 MB
    /// files, 700 ms inter-arrival, read-only.
    pub fn paper_default() -> SyntheticSpec {
        SyntheticSpec {
            files: 1000,
            requests: 1000,
            mu: 1000.0,
            mean_size_bytes: 10_000_000,
            size_dist: SizeDist::Fixed,
            inter_arrival: SimDuration::from_millis(700),
            jitter: Jitter::None,
            write_fraction: 0.0,
            seed: 0x5EED_EEF5,
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.files == 0 {
            return Err("file population must be positive".into());
        }
        if self.mu < 0.0 || !self.mu.is_finite() {
            return Err(format!("MU must be non-negative, got {}", self.mu));
        }
        if self.mean_size_bytes == 0 {
            return Err("mean size must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err(format!(
                "write fraction {} outside [0,1]",
                self.write_fraction
            ));
        }
        if let SizeDist::Uniform { spread } = self.size_dist {
            if !(0.0..=1.0).contains(&spread) {
                return Err(format!("uniform spread {spread} outside [0,1]"));
            }
        }
        if let SizeDist::LogNormal { sigma } = self.size_dist {
            if !(sigma >= 0.0 && sigma.is_finite()) {
                return Err(format!("log-normal sigma {sigma} invalid"));
            }
        }
        Ok(())
    }
}

/// Draws one file size.
fn draw_size(dist: SizeDist, mean: u64, rng: &mut SimRng) -> u64 {
    let v = match dist {
        SizeDist::Fixed => mean as f64,
        SizeDist::Exponential => rng.exponential(mean as f64),
        SizeDist::LogNormal { sigma } => rng.log_normal_with_mean(mean as f64, sigma),
        SizeDist::Uniform { spread } => {
            let lo = mean as f64 * (1.0 - spread);
            let hi = mean as f64 * (1.0 + spread);
            lo + (hi - lo) * rng.uniform()
        }
    };
    // Floor at 1 byte so every file is materialisable.
    v.round().max(1.0) as u64
}

/// Generates a synthetic trace. Deterministic in `(spec, spec.seed)`.
///
/// # Panics
/// Panics when the spec fails [`SyntheticSpec::validate`].
pub fn generate(spec: &SyntheticSpec) -> Trace {
    spec.validate()
        .unwrap_or_else(|e| panic!("bad synthetic spec: {e}"));
    let mut rng = SimRng::seed_from_u64(spec.seed);
    // Independent sub-streams so changing the request count does not
    // perturb file sizes and vice versa.
    let mut size_rng = rng.split();
    let mut file_rng = rng.split();
    let mut op_rng = rng.split();
    let mut jitter_rng = rng.split();

    let file_sizes: Vec<u64> = (0..spec.files)
        .map(|_| draw_size(spec.size_dist, spec.mean_size_bytes, &mut size_rng))
        .collect();

    let mut records = Vec::with_capacity(spec.requests as usize);
    let mut at = SimTime::ZERO;
    for i in 0..spec.requests {
        if i > 0 {
            let gap = match spec.jitter {
                Jitter::None => spec.inter_arrival,
                Jitter::Exponential => SimDuration::from_secs_f64(
                    jitter_rng.exponential(spec.inter_arrival.as_secs_f64().max(1e-9)),
                ),
            };
            at += gap;
        }
        let idx = (file_rng.poisson(spec.mu) % spec.files as u64) as u32;
        let op = if spec.write_fraction > 0.0 && op_rng.uniform() < spec.write_fraction {
            Op::Write
        } else {
            Op::Read
        };
        records.push(TraceRecord {
            at,
            file: FileId(idx),
            op,
            size: file_sizes[idx as usize],
        });
    }
    Trace {
        file_sizes: Arc::new(file_sizes),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let spec = SyntheticSpec::paper_default();
        assert_eq!(generate(&spec), generate(&spec));
        let other = SyntheticSpec { seed: 999, ..spec };
        assert_ne!(generate(&other), generate(&spec));
    }

    #[test]
    fn trace_validates_and_has_right_shape() {
        let spec = SyntheticSpec::paper_default();
        let t = generate(&spec);
        assert!(t.validate().is_ok());
        assert_eq!(t.len(), 1000);
        assert_eq!(t.file_count(), 1000);
        // 999 gaps of 700 ms.
        assert_eq!(t.duration(), SimDuration::from_millis(700 * 999));
    }

    #[test]
    fn small_mu_touches_few_files() {
        let spec = SyntheticSpec {
            mu: 1.0,
            ..SyntheticSpec::paper_default()
        };
        let t = generate(&spec);
        assert!(
            t.distinct_files() <= 10,
            "MU=1 touched {} files",
            t.distinct_files()
        );
    }

    #[test]
    fn mu_100_fits_under_seventy_files() {
        // The paper's Fig 3(b) finding hinges on this: with 70 files
        // prefetched, MU <= 100 is fully covered.
        let spec = SyntheticSpec {
            mu: 100.0,
            ..SyntheticSpec::paper_default()
        };
        let t = generate(&spec);
        let d = t.distinct_files();
        assert!(d <= 70, "MU=100 touched {d} files; paper needs <= 70");
        assert!(d >= 30, "MU=100 touched only {d} files; too narrow");
    }

    #[test]
    fn large_mu_spreads_accesses() {
        let spec = SyntheticSpec::paper_default(); // MU = 1000
        let t = generate(&spec);
        let d = t.distinct_files();
        assert!(
            d > 100 && d < 500,
            "MU=1000 touched {d} files; expected a spread-out but skewed set"
        );
    }

    #[test]
    fn distinct_files_monotone_in_mu() {
        let base = SyntheticSpec::paper_default();
        let counts: Vec<usize> = [1.0, 10.0, 100.0, 1000.0]
            .iter()
            .map(|&mu| generate(&SyntheticSpec { mu, ..base.clone() }).distinct_files())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] < w[1]),
            "distinct files not increasing in MU: {counts:?}"
        );
    }

    #[test]
    fn fixed_sizes_are_exact() {
        let t = generate(&SyntheticSpec::paper_default());
        assert!(t.file_sizes.iter().all(|&s| s == 10_000_000));
    }

    #[test]
    fn exponential_sizes_hit_mean() {
        let spec = SyntheticSpec {
            files: 20_000,
            size_dist: SizeDist::Exponential,
            ..SyntheticSpec::paper_default()
        };
        let t = generate(&spec);
        let mean = t.file_sizes.iter().map(|&s| s as f64).sum::<f64>() / t.file_sizes.len() as f64;
        assert!(
            (mean / 10_000_000.0 - 1.0).abs() < 0.05,
            "sample mean {mean}"
        );
    }

    #[test]
    fn uniform_sizes_stay_in_band() {
        let spec = SyntheticSpec {
            size_dist: SizeDist::Uniform { spread: 0.5 },
            ..SyntheticSpec::paper_default()
        };
        let t = generate(&spec);
        assert!(t
            .file_sizes
            .iter()
            .all(|&s| (5_000_000..=15_000_000).contains(&s)));
    }

    #[test]
    fn write_fraction_generates_writes() {
        let spec = SyntheticSpec {
            write_fraction: 0.3,
            ..SyntheticSpec::paper_default()
        };
        let t = generate(&spec);
        let writes = t.records.iter().filter(|r| r.op == Op::Write).count();
        let frac = writes as f64 / t.len() as f64;
        assert!((frac - 0.3).abs() < 0.06, "write fraction {frac}");
    }

    #[test]
    fn read_only_by_default() {
        let t = generate(&SyntheticSpec::paper_default());
        assert!(t.records.iter().all(|r| r.op == Op::Read));
    }

    #[test]
    fn zero_inter_arrival_is_a_burst() {
        let spec = SyntheticSpec {
            inter_arrival: SimDuration::ZERO,
            ..SyntheticSpec::paper_default()
        };
        let t = generate(&spec);
        assert_eq!(t.duration(), SimDuration::ZERO);
    }

    #[test]
    fn exponential_jitter_preserves_mean_rate() {
        let spec = SyntheticSpec {
            requests: 20_000,
            jitter: Jitter::Exponential,
            ..SyntheticSpec::paper_default()
        };
        let t = generate(&spec);
        let mean_gap = t.duration().as_secs_f64() / (t.len() - 1) as f64;
        assert!((mean_gap - 0.7).abs() < 0.02, "mean gap {mean_gap}");
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        let mut s = SyntheticSpec::paper_default();
        s.files = 0;
        assert!(s.validate().is_err());
        let mut s = SyntheticSpec::paper_default();
        s.mu = -1.0;
        assert!(s.validate().is_err());
        let mut s = SyntheticSpec::paper_default();
        s.write_fraction = 1.5;
        assert!(s.validate().is_err());
        let mut s = SyntheticSpec::paper_default();
        s.size_dist = SizeDist::Uniform { spread: 2.0 };
        assert!(s.validate().is_err());
    }

    #[test]
    fn changing_request_count_keeps_file_sizes() {
        // Sub-stream isolation: more requests must not reshuffle sizes.
        let a = generate(&SyntheticSpec {
            size_dist: SizeDist::Exponential,
            requests: 10,
            ..SyntheticSpec::paper_default()
        });
        let b = generate(&SyntheticSpec {
            size_dist: SizeDist::Exponential,
            requests: 2000,
            ..SyntheticSpec::paper_default()
        });
        assert_eq!(a.file_sizes, b.file_sizes);
    }
}
