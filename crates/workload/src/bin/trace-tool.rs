//! Trace utility: generate, inspect, and convert EEVFS traces.
//!
//! ```text
//! trace-tool gen      [--files N] [--requests N] [--mu F] [--size-mb N]
//!                     [--delay-ms N] [--write-frac F] [--seed N] [--out PATH]
//! trace-tool berkeley [--requests N] [--working-set N] [--seed N] [--out PATH]
//! trace-tool stats    PATH          # counts, skew, idle-window summary
//! trace-tool convert  IN OUT        # text <-> json by extension
//! ```

use sim_core::SimDuration;
use std::process::ExitCode;
use workload::berkeley::{berkeley_web_trace, BerkeleySpec};
use workload::lookahead::idle_windows;
use workload::popularity::PopularityTable;
use workload::record::Trace;
use workload::synthetic::{generate, SyntheticSpec};
use workload::trace_io;

fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut map = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a}"));
        };
        let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), val.clone());
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    flags: &std::collections::HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("bad --{key} value {v}")),
        None => Ok(default),
    }
}

fn load(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    if path.ends_with(".json") {
        trace_io::from_json(&text)
    } else {
        trace_io::from_text(&text).map_err(|e| e.to_string())
    }
}

fn save(trace: &Trace, path: &str) -> Result<(), String> {
    let out = if path.ends_with(".json") {
        trace_io::to_json(trace)
    } else {
        trace_io::to_text(trace)
    };
    std::fs::write(path, out).map_err(|e| format!("write {path}: {e}"))
}

fn cmd_gen(flags: &std::collections::HashMap<String, String>) -> Result<(), String> {
    let spec = SyntheticSpec {
        files: get(flags, "files", 1000u32)?,
        requests: get(flags, "requests", 1000u32)?,
        mu: get(flags, "mu", 1000.0f64)?,
        mean_size_bytes: get(flags, "size-mb", 10u64)? * 1_000_000,
        inter_arrival: SimDuration::from_millis(get(flags, "delay-ms", 700u64)?),
        write_fraction: get(flags, "write-frac", 0.0f64)?,
        seed: get(flags, "seed", 0x5EED_EEF5u64)?,
        ..SyntheticSpec::paper_default()
    };
    spec.validate()?;
    let trace = generate(&spec);
    match flags.get("out") {
        Some(path) => {
            save(&trace, path)?;
            eprintln!("wrote {} records to {path}", trace.len());
        }
        None => print!("{}", trace_io::to_text(&trace)),
    }
    Ok(())
}

fn cmd_berkeley(flags: &std::collections::HashMap<String, String>) -> Result<(), String> {
    let spec = BerkeleySpec {
        requests: get(flags, "requests", 1000u32)?,
        working_set: get(flags, "working-set", 60u32)?,
        seed: get(flags, "seed", 0xBE27_EE1Eu64)?,
        ..BerkeleySpec::paper_default()
    };
    spec.validate()?;
    let trace = berkeley_web_trace(&spec);
    match flags.get("out") {
        Some(path) => {
            save(&trace, path)?;
            eprintln!("wrote {} records to {path}", trace.len());
        }
        None => print!("{}", trace_io::to_text(&trace)),
    }
    Ok(())
}

fn cmd_stats(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    let pop = PopularityTable::from_trace(&trace);
    println!("requests:        {}", trace.len());
    println!("file population: {}", trace.file_count());
    println!("distinct files:  {}", trace.distinct_files());
    println!("trace span:      {:.1} s", trace.duration().as_secs_f64());
    println!(
        "total bytes:     {:.1} MB",
        trace.total_bytes() as f64 / 1e6
    );
    for k in [10usize, 40, 70, 100] {
        println!(
            "top-{k:<3} coverage: {:5.1}%  (fraction of accesses a {k}-file prefetch absorbs)",
            pop.coverage_of_top_k(k) * 100.0
        );
    }
    // Idle-window preview for the paper's defaults: per-"disk" windows if
    // placed round-robin over 16 disks with a 5 s threshold.
    let disks = 16usize;
    let threshold = SimDuration::from_secs(5);
    let mut total_windows = 0usize;
    let mut total_idle = 0.0f64;
    for d in 0..disks {
        let touches: Vec<_> = trace
            .records
            .iter()
            .filter(|r| (r.file.0 as usize) % disks == d)
            .map(|r| r.at)
            .collect();
        let ws = idle_windows(
            &touches,
            sim_core::SimTime::ZERO,
            trace.end_time(),
            threshold,
        );
        total_windows += ws.len();
        total_idle += ws.iter().map(|w| w.len().as_secs_f64()).sum::<f64>();
    }
    println!(
        "idle windows >= 5 s over {disks} round-robin disks (no prefetch): {total_windows} \
         windows, {total_idle:.0} disk-seconds"
    );
    Ok(())
}

fn cmd_convert(input: &str, output: &str) -> Result<(), String> {
    let trace = load(input)?;
    save(&trace, output)?;
    eprintln!("converted {input} -> {output} ({} records)", trace.len());
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("gen") => cmd_gen(&parse_flags(&args[1..])?),
        Some("berkeley") => cmd_berkeley(&parse_flags(&args[1..])?),
        Some("stats") => match args.get(1) {
            Some(path) => cmd_stats(path),
            None => Err("stats needs a path".into()),
        },
        Some("convert") => match (args.get(1), args.get(2)) {
            (Some(i), Some(o)) => cmd_convert(i, o),
            _ => Err("convert needs IN and OUT paths".into()),
        },
        _ => Err("usage: trace-tool gen|berkeley|stats|convert ...".into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
