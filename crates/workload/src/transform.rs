//! Trace transformations.
//!
//! The paper replays "a **section** of the web trace collection" and
//! overrides its data sizes and inter-arrival delays ("we modified the
//! data size and the inter-arrival delay for requests to prevent a large
//! amount of queuing"). These are generic trace operations; this module
//! provides them for any trace:
//!
//! * [`slice()`] — take a request range (a "section").
//! * [`override_sizes`] — set every file to a fixed size, as the paper
//!   did for the Berkeley trace.
//! * [`override_inter_arrival`] — re-time requests on a fixed delay.
//! * [`scale_time`] — stretch/compress the arrival timeline.
//! * [`merge`] — interleave two traces by arrival time (multi-tenant
//!   workloads).

use crate::record::{Trace, TraceRecord};
use sim_core::{SimDuration, SimTime};

/// Takes a contiguous section of a trace: records `[from, to)`, re-based
/// so the first kept record arrives at `t = 0`. The file population is
/// preserved (ids stay valid).
pub fn slice(trace: &Trace, from: usize, to: usize) -> Trace {
    assert!(from <= to && to <= trace.len(), "bad slice [{from}, {to})");
    let base = trace
        .records
        .get(from)
        .map(|r| r.at)
        .unwrap_or(SimTime::ZERO);
    Trace {
        file_sizes: trace.file_sizes.clone(),
        records: trace.records[from..to]
            .iter()
            .map(|r| TraceRecord {
                at: SimTime::from_micros(r.at.as_micros() - base.as_micros()),
                ..*r
            })
            .collect(),
    }
}

/// Sets every file (and every request) to a fixed size — the paper's
/// Berkeley-trace override.
pub fn override_sizes(trace: &Trace, size: u64) -> Trace {
    assert!(size > 0, "size must be positive");
    Trace {
        file_sizes: std::sync::Arc::new(vec![size; trace.file_count()]),
        records: trace
            .records
            .iter()
            .map(|r| TraceRecord { size, ..*r })
            .collect(),
    }
}

/// Re-times the trace onto a fixed inter-arrival delay, preserving order —
/// the paper's other Berkeley-trace override.
pub fn override_inter_arrival(trace: &Trace, delay: SimDuration) -> Trace {
    Trace {
        file_sizes: trace.file_sizes.clone(),
        records: trace
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| TraceRecord {
                at: SimTime::from_micros(delay.as_micros() * i as u64),
                ..*r
            })
            .collect(),
    }
}

/// Scales every arrival time by `factor` (> 0): 2.0 halves the load,
/// 0.5 doubles it.
pub fn scale_time(trace: &Trace, factor: f64) -> Trace {
    assert!(
        factor > 0.0 && factor.is_finite(),
        "bad scale factor {factor}"
    );
    Trace {
        file_sizes: trace.file_sizes.clone(),
        records: trace
            .records
            .iter()
            .map(|r| TraceRecord {
                at: SimTime::from_micros((r.at.as_micros() as f64 * factor).round() as u64),
                ..*r
            })
            .collect(),
    }
}

/// Interleaves two traces over the same file population by arrival time
/// (stable: `a` wins ties).
///
/// # Panics
/// Panics when the populations differ — merging traces over different
/// file sets has no single sensible semantics.
pub fn merge(a: &Trace, b: &Trace) -> Trace {
    assert_eq!(
        a.file_sizes, b.file_sizes,
        "can only merge traces over the same file population"
    );
    let mut records = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.records.len() || j < b.records.len() {
        let take_a = match (a.records.get(i), b.records.get(j)) {
            (Some(ra), Some(rb)) => ra.at <= rb.at,
            (Some(_), None) => true,
            _ => false,
        };
        if take_a {
            records.push(a.records[i]);
            i += 1;
        } else {
            records.push(b.records[j]);
            j += 1;
        }
    }
    Trace {
        file_sizes: a.file_sizes.clone(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticSpec};

    fn sample() -> Trace {
        generate(&SyntheticSpec {
            files: 30,
            requests: 50,
            mu: 10.0,
            ..SyntheticSpec::paper_default()
        })
    }

    #[test]
    fn slice_rebases_to_zero() {
        let t = sample();
        let s = slice(&t, 10, 30);
        assert_eq!(s.len(), 20);
        assert_eq!(s.records[0].at, SimTime::ZERO);
        assert!(s.validate().is_ok());
        // Gaps preserved.
        assert_eq!(
            s.records[1].at - s.records[0].at,
            t.records[11].at - t.records[10].at
        );
    }

    #[test]
    fn slice_edges() {
        let t = sample();
        assert_eq!(slice(&t, 0, t.len()).records, t.records);
        assert!(slice(&t, 5, 5).is_empty());
        assert!(slice(&t, t.len(), t.len()).is_empty());
    }

    #[test]
    #[should_panic(expected = "bad slice")]
    fn slice_rejects_inverted_range() {
        let t = sample();
        let _ = slice(&t, 10, 5);
    }

    #[test]
    fn override_sizes_applies_everywhere() {
        let t = override_sizes(&sample(), 12345);
        assert!(t.file_sizes.iter().all(|&s| s == 12345));
        assert!(t.records.iter().all(|r| r.size == 12345));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn override_inter_arrival_retimes() {
        let t = override_inter_arrival(&sample(), SimDuration::from_millis(100));
        assert_eq!(t.records[0].at, SimTime::ZERO);
        assert_eq!(t.records[7].at, SimTime::from_millis(700));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn scale_time_halves_and_doubles() {
        let t = sample();
        let slow = scale_time(&t, 2.0);
        let fast = scale_time(&t, 0.5);
        assert_eq!(slow.duration().as_micros(), t.duration().as_micros() * 2);
        assert_eq!(fast.duration().as_micros(), t.duration().as_micros() / 2);
        assert!(slow.validate().is_ok());
        assert!(fast.validate().is_ok());
    }

    #[test]
    fn merge_interleaves_by_time() {
        let t = sample();
        let a = slice(&t, 0, 25);
        // Shift b by half a gap so it interleaves between a's records.
        let b = scale_time(&slice(&t, 25, 50), 1.0);
        let m = merge(&a, &b);
        assert_eq!(m.len(), 50);
        assert!(m.validate().is_ok(), "{:?}", m.validate());
        // Total bytes preserved.
        assert_eq!(m.total_bytes(), a.total_bytes() + b.total_bytes());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let t = sample();
        let empty = slice(&t, 0, 0);
        let m = merge(&t, &empty);
        assert_eq!(m.records, t.records);
    }

    #[test]
    #[should_panic(expected = "same file population")]
    fn merge_rejects_different_populations() {
        let a = sample();
        let b = override_sizes(&a, 999);
        let _ = merge(&a, &b);
    }

    #[test]
    fn paper_berkeley_overrides_compose() {
        // The paper's exact recipe: take a section, force 10 MB sizes,
        // force a fixed delay.
        let t = sample();
        let section = slice(&t, 5, 45);
        let resized = override_sizes(&section, 10_000_000);
        let retimed = override_inter_arrival(&resized, SimDuration::from_millis(700));
        assert_eq!(retimed.len(), 40);
        assert!(retimed.records.iter().all(|r| r.size == 10_000_000));
        assert_eq!(retimed.duration(), SimDuration::from_millis(700 * 39));
        assert!(retimed.validate().is_ok());
    }
}
