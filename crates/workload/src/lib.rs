//! # workload
//!
//! Trace records and workload generators for the EEVFS reproduction.
//!
//! The paper evaluates EEVFS against two workload families (§V-B):
//!
//! 1. **Synthetic traces** over 1000 files, where file indices are drawn
//!    from a Poisson distribution whose mean is "the MU value" (1–1000;
//!    small MU skews accesses to a few files), file sizes have a mean of
//!    1–50 MB, and a fixed inter-arrival delay of 0–1000 ms is inserted
//!    between requests — [`synthetic`].
//! 2. A section of the **Berkeley web trace** [UCB/CSD-98-1029], with data
//!    size and inter-arrival overridden by the authors (10 MB, fixed
//!    delay). We do not have the original trace, so [`berkeley`] generates
//!    a synthetic equivalent with the property the paper relies on: access
//!    skew toward a small working set — [`berkeley`].
//!
//! Supporting modules: [`record`] (trace data model), [`popularity`]
//! (access counting and ranking, the input to EEVFS placement and
//! prefetching), [`lookahead`] (idle-window extraction used by the power
//! manager), [`trace_io`] (text/JSON trace serialisation), and
//! [`transform`] (slice/override/merge — the paper's own trace surgery).

#![warn(missing_docs)]

pub mod berkeley;
pub mod lookahead;
pub mod popularity;
pub mod record;
pub mod synthetic;
pub mod trace_io;
pub mod transform;

pub use berkeley::{berkeley_web_trace, BerkeleySpec};
pub use lookahead::idle_windows;
pub use popularity::PopularityTable;
pub use record::{FileId, Op, Trace, TraceRecord};
pub use synthetic::{generate, SizeDist, SyntheticSpec};
