//! Trace data model.
//!
//! A [`Trace`] is what the EEVFS storage server consumes twice: once ahead
//! of time to derive popularity and placement (the paper's append-only log
//! of file access patterns, §IV), and once at run time when the client
//! replays it against the cluster.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};
use std::sync::Arc;

/// Identifier of a file in the traced file set (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FileId(pub u32);

impl FileId {
    /// The dense index of this file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Request type. The paper's evaluation traces are read-dominated (web
/// workload); writes exercise the buffer disk's write-buffer area (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Whole-file read.
    Read,
    /// Whole-file write (absorbed by the buffer disk when possible).
    Write,
}

/// One request in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Arrival time of the request at the client.
    pub at: SimTime,
    /// Target file.
    pub file: FileId,
    /// Read or write.
    pub op: Op,
    /// Bytes moved (whole-file access in the paper's prototype).
    pub size: u64,
}

/// A complete workload: the file population plus the request sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Size of each file, indexed by [`FileId`]. The population may be
    /// larger than the set of files actually requested (the paper's file
    /// system holds 1000 files; a trace may touch only a few). Shared
    /// (`Arc`) because every simulation run over the trace — and every
    /// parallel worker in a sweep — reads the same immutable table;
    /// cloning a trace or handing the table to the server's metadata is a
    /// reference bump, not a deep copy.
    pub file_sizes: Arc<Vec<u64>>,
    /// Requests in non-decreasing arrival order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of files in the population.
    pub fn file_count(&self) -> usize {
        self.file_sizes.len()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Arrival span of the trace (zero when empty).
    pub fn duration(&self) -> SimDuration {
        match (self.records.first(), self.records.last()) {
            (Some(f), Some(l)) => l.at - f.at,
            _ => SimDuration::ZERO,
        }
    }

    /// Arrival time of the last request (zero when empty).
    pub fn end_time(&self) -> SimTime {
        self.records.last().map(|r| r.at).unwrap_or(SimTime::ZERO)
    }

    /// Total bytes requested.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size).sum()
    }

    /// Number of distinct files requested.
    pub fn distinct_files(&self) -> usize {
        let mut seen = vec![false; self.file_count()];
        let mut n = 0;
        for r in &self.records {
            let i = r.file.index();
            if !seen[i] {
                seen[i] = true;
                n += 1;
            }
        }
        n
    }

    /// Structural validation: ordering, file-id bounds, size consistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev = SimTime::ZERO;
        for (i, r) in self.records.iter().enumerate() {
            if r.at < prev {
                return Err(format!("record {i} out of order: {} after {prev}", r.at));
            }
            prev = r.at;
            if r.file.index() >= self.file_count() {
                return Err(format!(
                    "record {i} references file {} outside population of {}",
                    r.file.0,
                    self.file_count()
                ));
            }
            if r.size != self.file_sizes[r.file.index()] {
                return Err(format!(
                    "record {i} size {} disagrees with file {} size {}",
                    r.size,
                    r.file.0,
                    self.file_sizes[r.file.index()]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Trace {
        Trace {
            file_sizes: Arc::new(vec![100, 200, 300]),
            records: vec![
                TraceRecord {
                    at: SimTime::from_millis(0),
                    file: FileId(0),
                    op: Op::Read,
                    size: 100,
                },
                TraceRecord {
                    at: SimTime::from_millis(700),
                    file: FileId(2),
                    op: Op::Read,
                    size: 300,
                },
                TraceRecord {
                    at: SimTime::from_millis(1400),
                    file: FileId(0),
                    op: Op::Write,
                    size: 100,
                },
            ],
        }
    }

    #[test]
    fn accessors() {
        let t = tiny();
        assert_eq!(t.file_count(), 3);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.duration(), SimDuration::from_millis(1400));
        assert_eq!(t.end_time(), SimTime::from_millis(1400));
        assert_eq!(t.total_bytes(), 500);
        assert_eq!(t.distinct_files(), 2);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn empty_trace() {
        let t = Trace {
            file_sizes: Arc::new(vec![10; 5]),
            records: vec![],
        };
        assert!(t.is_empty());
        assert_eq!(t.duration(), SimDuration::ZERO);
        assert_eq!(t.distinct_files(), 0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_order() {
        let mut t = tiny();
        t.records.swap(0, 1);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_file_id() {
        let mut t = tiny();
        t.records[0].file = FileId(99);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_size_mismatch() {
        let mut t = tiny();
        t.records[1].size = 42;
        assert!(t.validate().is_err());
    }
}
