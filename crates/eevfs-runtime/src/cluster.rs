//! Whole-cluster orchestration and the client API.
//!
//! [`ClusterHandle::start`] brings up the storage nodes and the server in
//! background threads, runs the setup flow against a trace, and exposes
//! the client view: [`ClusterHandle::get`] fetches one file through the
//! full server→node→client push path; [`ClusterHandle::replay`] replays a
//! trace sequentially with scaled inter-arrival delays (the prototype's
//! single-threaded trace replayer) and reports response times plus the
//! cluster's virtual-energy statistics.

use crate::clock::VirtualClock;
use crate::node::{NodeConfig, NodeDaemon};
use crate::proto::{read_message, write_message, Message};
use crate::server::{ClusterStats, ServerDaemon};
use crate::store::verify_pattern;
use disk_model::DiskSpec;
use sim_core::SimDuration;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use workload::record::Trace;

/// Prototype cluster configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of storage nodes.
    pub nodes: usize,
    /// Data disks per node.
    pub data_disks_per_node: usize,
    /// Files to prefetch (0 = NPF).
    pub prefetch_k: u32,
    /// Copies per file (clamped to the node count; 1 = the paper's
    /// unreplicated layout). Reads fail over across copies when nodes or
    /// disks are down.
    pub replication: usize,
    /// Disk idle threshold, virtual seconds.
    pub idle_threshold: SimDuration,
    /// Virtual seconds per wall second (use large values in tests).
    pub time_scale: f64,
    /// Root directory for node stores.
    pub root_dir: PathBuf,
    /// Drive model used for power accounting.
    pub disk_spec: DiskSpec,
}

impl RuntimeConfig {
    /// A small fast-forwarded cluster for tests and examples: files live
    /// under a unique temp directory, the clock runs 10 000× wall speed.
    pub fn small(tag: &str) -> RuntimeConfig {
        RuntimeConfig {
            nodes: 2,
            data_disks_per_node: 2,
            prefetch_k: 8,
            replication: 1,
            idle_threshold: SimDuration::from_secs(5),
            time_scale: 10_000.0,
            root_dir: std::env::temp_dir()
                .join(format!("eevfs-runtime-{}-{tag}", std::process::id())),
            disk_spec: DiskSpec::ata133_type1(),
        }
    }
}

/// Result of one `get`.
#[derive(Debug, Clone)]
pub struct GetResult {
    /// File contents.
    pub data: Vec<u8>,
    /// Wall-clock response time.
    pub response: Duration,
}

/// Result of a trace replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Wall-clock response time per request, in trace order.
    pub responses: Vec<Duration>,
    /// Aggregated node statistics after the replay.
    pub stats: ClusterStats,
}

impl ReplayReport {
    /// Mean response time, seconds.
    pub fn mean_response_s(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        self.responses.iter().map(|d| d.as_secs_f64()).sum::<f64>() / self.responses.len() as f64
    }

    /// Buffer hit rate over the replay.
    pub fn hit_rate(&self) -> f64 {
        let total = self.stats.hits + self.stats.misses;
        if total == 0 {
            0.0
        } else {
            self.stats.hits as f64 / total as f64
        }
    }
}

/// A running prototype cluster.
pub struct ClusterHandle {
    cfg: RuntimeConfig,
    clock: VirtualClock,
    server: Option<ServerDaemon>,
    nodes: Vec<NodeDaemon>,
    server_conn: TcpStream,
    /// Bumped per revival so each replacement daemon gets a fresh store
    /// directory.
    revival_gen: u32,
}

impl ClusterHandle {
    /// Boots nodes and server and runs the setup flow for `trace`.
    pub fn start(cfg: RuntimeConfig, trace: &Trace) -> io::Result<ClusterHandle> {
        trace
            .validate()
            .map_err(|e| io::Error::other(format!("bad trace: {e}")))?;
        let clock = VirtualClock::start(cfg.time_scale);
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            nodes.push(NodeDaemon::spawn(NodeConfig {
                root: cfg.root_dir.join(format!("node{i}")),
                data_disks: cfg.data_disks_per_node,
                disk_spec: cfg.disk_spec.clone(),
                idle_threshold: cfg.idle_threshold,
                clock: clock.clone(),
            })?);
        }
        let node_addrs: Vec<_> = nodes.iter().map(|n| n.addr).collect();
        let server = ServerDaemon::spawn(
            &node_addrs,
            vec![cfg.data_disks_per_node; cfg.nodes],
            trace,
            cfg.prefetch_k,
            cfg.replication,
        )?;
        let server_conn = TcpStream::connect(server.addr)?;
        Ok(ClusterHandle {
            cfg,
            clock,
            server: Some(server),
            nodes,
            server_conn,
            revival_gen: 0,
        })
    }

    /// The virtual clock (to convert durations in assertions).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Waits for either a node callback connection on `listener` or an
    /// early server reply (a routing failure): returns `Some(stream)` for
    /// a callback, `None` when the server has already replied. This is
    /// what keeps a request to a dead node from hanging the client.
    fn accept_or_server_reply(&mut self, listener: &TcpListener) -> io::Result<Option<TcpStream>> {
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match listener.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    return Ok(Some(s));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(e),
            }
            // An early byte on the control connection means the server
            // replied before any node contacted us: a failure.
            self.server_conn
                .set_read_timeout(Some(std::time::Duration::from_millis(1)))?;
            let mut probe = [0u8; 1];
            let ready = match self.server_conn.peek(&mut probe) {
                Ok(n) => n > 0,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    false
                }
                Err(e) => {
                    self.server_conn.set_read_timeout(None)?;
                    return Err(e);
                }
            };
            self.server_conn.set_read_timeout(None)?;
            if ready {
                return Ok(None);
            }
            if Instant::now() > deadline {
                return Err(io::Error::other("timed out waiting for the node callback"));
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    /// Reads and interprets the server's routing acknowledgement.
    fn read_ack(&mut self) -> io::Result<()> {
        match read_message(&mut self.server_conn).map_err(|e| io::Error::other(e.to_string()))? {
            Message::Ok => Ok(()),
            Message::Err { code } => Err(io::Error::other(format!("server error {code}"))),
            other => Err(io::Error::other(format!("unexpected ack {other:?}"))),
        }
    }

    /// Fetches one file end-to-end; verifies nothing (callers can check
    /// [`verify_pattern`]).
    pub fn get(&mut self, file: u32) -> io::Result<GetResult> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let port = listener.local_addr()?.port();
        let start = Instant::now();
        write_message(
            &mut self.server_conn,
            &Message::Get {
                file,
                client_port: port,
            },
        )
        .map_err(|e| io::Error::other(e.to_string()))?;
        // The node pushes the data directly to our listener (step 6) —
        // unless the server reports a routing failure first.
        let (mut push, ack_pending) = match self.accept_or_server_reply(&listener)? {
            Some(push) => (push, true),
            None => {
                // The server replied before the node connected. An error
                // means the route failed (dead node / unknown file); Ok
                // means the push already sits in the listener backlog.
                self.read_ack()?;
                listener.set_nonblocking(false)?;
                let (push, _) = listener.accept()?;
                (push, false)
            }
        };
        let data = match read_message(&mut push).map_err(|e| io::Error::other(e.to_string()))? {
            Message::FileData { file: got, data } if got == file => data.to_vec(),
            other => return Err(io::Error::other(format!("unexpected push {other:?}"))),
        };
        let response = start.elapsed();
        if ack_pending {
            self.read_ack()?;
        }
        Ok(GetResult { data, response })
    }

    /// Writes a file through the cluster (the node pulls the payload from
    /// us over the callback connection). Returns the wall response time.
    /// The payload length must equal the file's creation size.
    pub fn put(&mut self, file: u32, data: &[u8]) -> io::Result<Duration> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let port = listener.local_addr()?.port();
        let start = Instant::now();
        write_message(
            &mut self.server_conn,
            &Message::Put {
                file,
                client_port: port,
            },
        )
        .map_err(|e| io::Error::other(e.to_string()))?;
        let (mut pull, ack_pending) = match self.accept_or_server_reply(&listener)? {
            Some(pull) => (pull, true),
            None => {
                // Early server reply: an error fails the put; Ok cannot
                // happen before we supplied the payload, but handle it by
                // accepting the pending pull anyway.
                self.read_ack()?;
                listener.set_nonblocking(false)?;
                let (pull, _) = listener.accept()?;
                (pull, false)
            }
        };
        write_message(
            &mut pull,
            &Message::FileData {
                file,
                data: bytes::Bytes::copy_from_slice(data),
            },
        )
        .map_err(|e| io::Error::other(e.to_string()))?;
        if ack_pending {
            self.read_ack()?;
        }
        Ok(start.elapsed())
    }

    /// Fetches and verifies a file's contents against the deterministic
    /// creation pattern.
    pub fn get_verified(&mut self, file: u32) -> io::Result<GetResult> {
        let r = self.get(file)?;
        if !verify_pattern(file, &r.data) {
            return Err(io::Error::other(format!("file {file} failed verification")));
        }
        Ok(r)
    }

    /// Replays a trace sequentially (the prototype's replayer): issues
    /// each read, waits for the response, then sleeps the scaled
    /// inter-arrival gap to the next record. Statistics cover the replay
    /// window only (setup/prefetch energy is excluded, as in the paper's
    /// measurements).
    pub fn replay(&mut self, trace: &Trace) -> io::Result<ReplayReport> {
        let before = self.stats()?;
        let mut responses = Vec::with_capacity(trace.len());
        let mut prev_at = None;
        for r in &trace.records {
            if let Some(prev) = prev_at {
                let gap = r.at - prev;
                if !gap.is_zero() {
                    self.clock.sleep_virtual(gap);
                }
            }
            prev_at = Some(r.at);
            let got = self.get(r.file.0)?;
            responses.push(got.response);
        }
        let stats = self.stats()? - before;
        Ok(ReplayReport { responses, stats })
    }

    /// Sends one admin message to the server and expects `Ok`.
    fn admin(&mut self, msg: &Message, what: &str) -> io::Result<()> {
        write_message(&mut self.server_conn, msg).map_err(|e| io::Error::other(e.to_string()))?;
        match read_message(&mut self.server_conn).map_err(|e| io::Error::other(e.to_string()))? {
            Message::Ok => Ok(()),
            other => Err(io::Error::other(format!("{what}: unexpected {other:?}"))),
        }
    }

    /// Failure injection: shuts down one storage node, leaving the rest
    /// of the cluster (and the server) running. With replication, reads
    /// of its files fail over to surviving copies; without, they fail
    /// with a server error.
    pub fn kill_node(&mut self, node: usize) -> io::Result<()> {
        self.admin(&Message::KillNode { node: node as u32 }, "kill_node")
    }

    /// Failure injection: marks one data disk failed. Reads that need it
    /// fail over to a replica (or to the node's buffer copy).
    pub fn fail_disk(&mut self, node: usize, disk: usize) -> io::Result<()> {
        self.admin(
            &Message::FailDisk {
                node: node as u32,
                disk: disk as u32,
            },
            "fail_disk",
        )
    }

    /// Undoes a [`ClusterHandle::fail_disk`].
    pub fn repair_disk(&mut self, node: usize, disk: usize) -> io::Result<()> {
        self.admin(
            &Message::RepairDisk {
                node: node as u32,
                disk: disk as u32,
            },
            "repair_disk",
        )
    }

    /// Repair flow: boots a replacement daemon for a killed node (fresh
    /// store directory, same shared clock) and asks the server to
    /// re-register it — the server replays the node's creates, prefetch
    /// and hints, then resumes routing to it.
    pub fn revive_node(&mut self, node: usize) -> io::Result<()> {
        if node >= self.nodes.len() {
            return Err(io::Error::other(format!("revive_node: no node {node}")));
        }
        self.revival_gen += 1;
        let replacement = NodeDaemon::spawn(NodeConfig {
            root: self
                .cfg
                .root_dir
                .join(format!("node{node}-r{}", self.revival_gen)),
            data_disks: self.cfg.data_disks_per_node,
            disk_spec: self.cfg.disk_spec.clone(),
            idle_threshold: self.cfg.idle_threshold,
            clock: self.clock.clone(),
        })?;
        let port = replacement.addr.port();
        // Swap in place so node index -> daemon stays the invariant and
        // shutdown joins exactly the live set.
        let old = std::mem::replace(&mut self.nodes[node], replacement);
        let res = self.admin(
            &Message::ReviveNode {
                node: node as u32,
                port,
            },
            "revive_node",
        );
        // Retire the daemon previously at this index. After kill_node it
        // has already exited; on a revive of a live node (double revive)
        // the server just dropped its connection, so it is back in accept
        // and needs an explicit Shutdown — otherwise joining it hangs.
        if !old.is_finished() {
            if let Ok(mut conn) = TcpStream::connect(old.addr) {
                let _ = write_message(&mut conn, &Message::Shutdown);
                let _ = read_message(&mut conn);
            }
        }
        old.join();
        res
    }

    /// Collects cluster-wide statistics.
    pub fn stats(&mut self) -> io::Result<ClusterStats> {
        write_message(&mut self.server_conn, &Message::StatsRequest)
            .map_err(|e| io::Error::other(e.to_string()))?;
        match read_message(&mut self.server_conn).map_err(|e| io::Error::other(e.to_string()))? {
            Message::Stats {
                disk_joules,
                spin_ups,
                spin_downs,
                hits,
                misses,
                failovers,
            } => Ok(ClusterStats {
                disk_joules,
                spin_ups,
                spin_downs,
                hits,
                misses,
                failovers,
            }),
            other => Err(io::Error::other(format!(
                "unexpected stats reply {other:?}"
            ))),
        }
    }

    /// Shuts the cluster down and removes its on-disk state.
    pub fn shutdown(mut self) {
        let _ = write_message(&mut self.server_conn, &Message::Shutdown);
        let _ = read_message(&mut self.server_conn);
        if let Some(server) = self.server.take() {
            server.join();
        }
        for node in self.nodes.drain(..) {
            node.join();
        }
        let _ = std::fs::remove_dir_all(&self.cfg.root_dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::synthetic::{generate, SizeDist, SyntheticSpec};

    fn small_trace(files: u32, requests: u32, mu: f64) -> Trace {
        generate(&SyntheticSpec {
            files,
            requests,
            mu,
            mean_size_bytes: 16 * 1024,
            size_dist: SizeDist::Fixed,
            inter_arrival: SimDuration::from_millis(700),
            ..SyntheticSpec::paper_default()
        })
    }

    #[test]
    fn boots_serves_and_shuts_down() {
        let trace = small_trace(20, 10, 5.0);
        let mut cluster =
            ClusterHandle::start(RuntimeConfig::small("boot"), &trace).expect("start");
        let r = cluster.get_verified(0).expect("get file 0");
        assert_eq!(r.data.len(), 16 * 1024);
        cluster.shutdown();
    }

    #[test]
    fn replay_reports_hits_and_energy() {
        let trace = small_trace(20, 30, 3.0);
        let mut cluster =
            ClusterHandle::start(RuntimeConfig::small("replay"), &trace).expect("start");
        let report = cluster.replay(&trace).expect("replay");
        assert_eq!(report.responses.len(), 30);
        // MU=3 concentrates on a handful of files, all within top-8
        // prefetch: replay should be dominated by buffer hits.
        assert!(
            report.hit_rate() > 0.9,
            "hit rate {} stats {:?}",
            report.hit_rate(),
            report.stats
        );
        assert!(report.stats.disk_joules > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn put_then_get_roundtrips_through_the_buffer() {
        let trace = small_trace(12, 8, 3.0);
        let mut cluster = ClusterHandle::start(RuntimeConfig::small("put"), &trace).expect("start");
        let payload = vec![0x5Au8; 16 * 1024];
        cluster.put(7, &payload).expect("put");
        let got = cluster.get(7).expect("get after put");
        assert_eq!(got.data, payload, "read must observe the write");
        // The write was absorbed by the buffer area, so the read hits.
        let stats = cluster.stats().expect("stats");
        assert!(stats.hits >= 1, "stats {stats:?}");
        cluster.shutdown();
    }

    #[test]
    fn put_with_wrong_size_is_rejected() {
        let trace = small_trace(12, 8, 3.0);
        let mut cluster =
            ClusterHandle::start(RuntimeConfig::small("putbad"), &trace).expect("start");
        let err = cluster.put(7, &[1, 2, 3]).expect_err("size mismatch");
        assert!(err.to_string().contains("3"), "{err}");
        cluster.shutdown();
    }

    #[test]
    fn npf_configuration_never_sleeps() {
        let trace = small_trace(20, 15, 5.0);
        let mut cfg = RuntimeConfig::small("npf");
        cfg.prefetch_k = 0;
        let mut cluster = ClusterHandle::start(cfg, &trace).expect("start");
        let report = cluster.replay(&trace).expect("replay");
        assert_eq!(report.stats.hits, 0);
        assert_eq!(report.stats.spin_ups + report.stats.spin_downs, 0);
        cluster.shutdown();
    }
}
