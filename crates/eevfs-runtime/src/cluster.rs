//! Whole-cluster orchestration and the client API.
//!
//! [`ClusterHandle::start`] brings up the storage nodes and the server in
//! background threads, runs the setup flow against a trace, and exposes
//! the client view: [`ClusterHandle::get`] fetches one file through the
//! full server→node→client push path; [`ClusterHandle::replay`] replays a
//! trace sequentially with scaled inter-arrival delays (the prototype's
//! single-threaded trace replayer) and reports response times plus the
//! cluster's virtual-energy statistics.
//!
//! ## Client event channel
//!
//! A request has two possible first signals: the owning node connecting
//! to the callback listener (success path), or the server acking early
//! (routing failure). Both are delivered through one mpsc channel — a
//! persistent reader thread owns all reads of the server connection and a
//! per-request acceptor thread forwards the callback connection — so the
//! client blocks on `recv_timeout` under [`RuntimeConfig::client_deadline`]
//! instead of spinning on short read timeouts.

use crate::clock::VirtualClock;
use crate::node::{NodeConfig, NodeDaemon};
use crate::proto::{read_message, write_message, Message};
use crate::server::{ClusterStats, ResilienceOptions, ServerDaemon};
use crate::store::verify_pattern;
use disk_model::DiskSpec;
use sim_core::SimDuration;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use workload::record::Trace;

/// Prototype cluster configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of storage nodes.
    pub nodes: usize,
    /// Data disks per node.
    pub data_disks_per_node: usize,
    /// Files to prefetch (0 = NPF).
    pub prefetch_k: u32,
    /// Copies per file (clamped to the node count; 1 = the paper's
    /// unreplicated layout). Reads fail over across copies when nodes or
    /// disks are down.
    pub replication: usize,
    /// Disk idle threshold, virtual seconds.
    pub idle_threshold: SimDuration,
    /// Virtual seconds per wall second (use large values in tests).
    pub time_scale: f64,
    /// Root directory for node stores.
    pub root_dir: PathBuf,
    /// Drive model used for power accounting.
    pub disk_spec: DiskSpec,
    /// How long a client operation waits for its callback or server ack
    /// (wall clock) before giving up. Must exceed the server's worst-case
    /// routing time (deadline + backoff) when a retrying policy is set.
    pub client_deadline: Duration,
    /// Server-side resilience: RPC retry/hedge/breaker policy and the
    /// link fault profile.
    pub resilience: ResilienceOptions,
}

impl RuntimeConfig {
    /// A small fast-forwarded cluster for tests and examples: files live
    /// under a unique temp directory, the clock runs 10 000× wall speed.
    pub fn small(tag: &str) -> RuntimeConfig {
        RuntimeConfig {
            nodes: 2,
            data_disks_per_node: 2,
            prefetch_k: 8,
            replication: 1,
            idle_threshold: SimDuration::from_secs(5),
            time_scale: 10_000.0,
            root_dir: std::env::temp_dir()
                .join(format!("eevfs-runtime-{}-{tag}", std::process::id())),
            disk_spec: DiskSpec::ata133_type1(),
            client_deadline: Duration::from_secs(10),
            resilience: ResilienceOptions::default(),
        }
    }
}

/// Result of one `get`.
#[derive(Debug, Clone)]
pub struct GetResult {
    /// File contents.
    pub data: Vec<u8>,
    /// Wall-clock response time.
    pub response: Duration,
}

/// Outcome of a [`ClusterHandle::get_with`] under the overload control
/// plane: served, refused with backpressure, or shed. Only `Data` carries
/// file contents; the other two are *successful protocol exchanges*
/// (distinct from `Err`, which means the exchange itself failed).
#[derive(Debug, Clone)]
pub enum GetOutcome {
    /// The file was served.
    Data(GetResult),
    /// Admission refused the request; retry after the hint.
    Busy {
        /// Suggested retry delay, microseconds.
        retry_after_us: u64,
        /// Brownout level at the server.
        level: u8,
    },
    /// The control plane shed the request; do not retry it as-is.
    Shed {
        /// Shed reason ([`crate::admission::shed_code`]).
        code: u16,
        /// Brownout level at the decision point.
        level: u8,
    },
}

/// Result of a trace replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Wall-clock response time per request, in trace order.
    pub responses: Vec<Duration>,
    /// Aggregated node statistics after the replay.
    pub stats: ClusterStats,
}

impl ReplayReport {
    /// Mean response time, seconds.
    pub fn mean_response_s(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        self.responses.iter().map(|d| d.as_secs_f64()).sum::<f64>() / self.responses.len() as f64
    }

    /// Buffer hit rate over the replay.
    pub fn hit_rate(&self) -> f64 {
        let total = self.stats.hits + self.stats.misses;
        if total == 0 {
            0.0
        } else {
            self.stats.hits as f64 / total as f64
        }
    }
}

/// Everything a client operation can be woken by.
enum ClientEvent {
    /// The server sent a message (ack, stats, shutdown echo).
    Server(Message),
    /// The server connection closed.
    ServerClosed,
    /// A node connected to the current callback listener.
    Push(TcpStream),
}

/// A running prototype cluster.
pub struct ClusterHandle {
    cfg: RuntimeConfig,
    clock: VirtualClock,
    server: Option<ServerDaemon>,
    nodes: Vec<NodeDaemon>,
    /// Write half of the server connection (all reads happen on the
    /// reader thread).
    server_conn: TcpStream,
    events: Receiver<ClientEvent>,
    event_tx: Sender<ClientEvent>,
    reader: Option<JoinHandle<()>>,
    /// Server acks abandoned by timed-out operations, to be consumed
    /// before the next operation pairs its own ack.
    owed_acks: u32,
    /// Bumped per revival so each replacement daemon gets a fresh store
    /// directory.
    revival_gen: u32,
    /// Next end-to-end request id; assigned per `get`/`put` and echoed by
    /// the owning node so one id follows client → server → node → client.
    next_req_id: u64,
}

/// Wakes an acceptor thread stuck in `accept` by connecting to its
/// listener, then joins it.
fn unblock_acceptor(addr: SocketAddr, acceptor: JoinHandle<()>) {
    let _ = TcpStream::connect(addr);
    let _ = acceptor.join();
}

impl ClusterHandle {
    /// Boots nodes and server and runs the setup flow for `trace`.
    pub fn start(cfg: RuntimeConfig, trace: &Trace) -> io::Result<ClusterHandle> {
        trace
            .validate()
            .map_err(|e| io::Error::other(format!("bad trace: {e}")))?;
        let clock = VirtualClock::start(cfg.time_scale);
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            nodes.push(NodeDaemon::spawn(NodeConfig {
                root: cfg.root_dir.join(format!("node{i}")),
                data_disks: cfg.data_disks_per_node,
                disk_spec: cfg.disk_spec.clone(),
                idle_threshold: cfg.idle_threshold,
                clock: clock.clone(),
            })?);
        }
        let node_addrs: Vec<_> = nodes.iter().map(|n| n.addr).collect();
        let server = ServerDaemon::spawn_resilient(
            &node_addrs,
            vec![cfg.data_disks_per_node; cfg.nodes],
            trace,
            cfg.prefetch_k,
            cfg.replication,
            cfg.resilience.clone(),
        )?;
        let server_conn = TcpStream::connect(server.addr)?;
        let (event_tx, events) = channel();
        let mut read_half = server_conn.try_clone()?;
        let tx = event_tx.clone();
        let reader = std::thread::Builder::new()
            .name("eevfs-client-reader".into())
            .spawn(move || loop {
                match read_message(&mut read_half) {
                    Ok(m) => {
                        if tx.send(ClientEvent::Server(m)).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        let _ = tx.send(ClientEvent::ServerClosed);
                        break;
                    }
                }
            })?;
        Ok(ClusterHandle {
            cfg,
            clock,
            server: Some(server),
            nodes,
            server_conn,
            events,
            event_tx,
            reader: Some(reader),
            owed_acks: 0,
            revival_gen: 0,
            next_req_id: 1,
        })
    }

    /// The virtual clock (to convert durations in assertions).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The server's listen address, for extra client connections (the
    /// closed-loop load generator dials its own workers here).
    pub fn server_addr(&self) -> io::Result<SocketAddr> {
        match &self.server {
            Some(s) => Ok(s.addr),
            None => Err(io::Error::other("server already shut down")),
        }
    }

    /// Blocks on the event channel until `deadline`.
    fn recv_event(&mut self, deadline: Instant) -> io::Result<ClientEvent> {
        let timeout = deadline.saturating_duration_since(Instant::now());
        match self.events.recv_timeout(timeout) {
            Ok(ev) => Ok(ev),
            Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "timed out waiting for the cluster",
            )),
            Err(RecvTimeoutError::Disconnected) => {
                Err(io::Error::other("client event channel closed"))
            }
        }
    }

    /// Settles leftovers from earlier operations: consumes acks they
    /// abandoned and discards stale callback connections (including the
    /// dummy streams used to unblock acceptor threads).
    fn drain_stale(&mut self) {
        while self.owed_acks > 0 {
            match self.events.recv_timeout(self.cfg.client_deadline) {
                Ok(ClientEvent::Server(_)) => self.owed_acks -= 1,
                Ok(ClientEvent::Push(_)) => {}
                Ok(ClientEvent::ServerClosed) | Err(_) => {
                    self.owed_acks = 0;
                    break;
                }
            }
        }
        while let Ok(ev) = self.events.try_recv() {
            match ev {
                ClientEvent::Push(_) | ClientEvent::ServerClosed => {}
                // A stray server message with no owed ack should not
                // happen; dropping it beats wedging the next operation.
                ClientEvent::Server(_) => {}
            }
        }
    }

    /// Spawns the per-request acceptor: forwards the first callback
    /// connection into the event channel, then exits.
    fn spawn_acceptor(&self, listener: TcpListener) -> io::Result<JoinHandle<()>> {
        let tx = self.event_tx.clone();
        std::thread::Builder::new()
            .name("eevfs-client-acceptor".into())
            .spawn(move || {
                if let Ok((s, _)) = listener.accept() {
                    let _ = tx.send(ClientEvent::Push(s));
                }
            })
    }

    /// Waits for the server's routing ack and interprets it.
    fn await_ack(&mut self, deadline: Instant) -> io::Result<()> {
        loop {
            match self.recv_event(deadline) {
                Ok(ClientEvent::Server(Message::Ok)) => return Ok(()),
                Ok(ClientEvent::Server(Message::Err { code })) => {
                    return Err(io::Error::other(format!("server error {code}")))
                }
                Ok(ClientEvent::Server(other)) => {
                    return Err(io::Error::other(format!("unexpected ack {other:?}")))
                }
                Ok(ClientEvent::ServerClosed) => {
                    return Err(io::Error::other("server connection closed"))
                }
                Ok(ClientEvent::Push(_)) => {} // late duplicate callback; drop
                Err(e) => {
                    self.owed_acks += 1;
                    return Err(e);
                }
            }
        }
    }

    /// Fetches one file end-to-end; verifies nothing (callers can check
    /// [`verify_pattern`]). No deadline budget, default priority; a
    /// backpressure or shed reply surfaces as an error (use
    /// [`ClusterHandle::get_with`] to observe those as typed outcomes).
    pub fn get(&mut self, file: u32) -> io::Result<GetResult> {
        match self.get_with(file, 0, 3)? {
            GetOutcome::Data(r) => Ok(r),
            GetOutcome::Busy { level, .. } => Err(io::Error::other(format!(
                "server busy (brownout level {level})"
            ))),
            GetOutcome::Shed { code, level } => Err(io::Error::other(format!(
                "request shed (code {code}, brownout level {level})"
            ))),
        }
    }

    /// Fetches one file with an explicit deadline budget (microseconds,
    /// 0 = none) and priority (higher is more important; requests with
    /// priority below the configured threshold are shed first under
    /// brownout level 2). Backpressure and shedding come back as typed
    /// outcomes rather than errors.
    pub fn get_with(
        &mut self,
        file: u32,
        deadline_us: u64,
        priority: u8,
    ) -> io::Result<GetOutcome> {
        self.drain_stale();
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let acceptor = self.spawn_acceptor(listener)?;
        let start = Instant::now();
        let deadline = start + self.cfg.client_deadline;
        if let Err(e) = write_message(
            &mut self.server_conn,
            &Message::Get {
                req_id,
                file,
                client_port: addr.port(),
                deadline_us,
                priority,
            },
        ) {
            unblock_acceptor(addr, acceptor);
            return Err(io::Error::other(e.to_string()));
        }
        // First signal: the node's push (step 6), or an early server ack.
        // An `Ok` ack just means the push is imminent — keep waiting.
        let mut acked = false;
        let mut push = loop {
            match self.recv_event(deadline) {
                Ok(ClientEvent::Push(s)) => break s,
                Ok(ClientEvent::Server(Message::Ok)) => acked = true,
                // Busy/Shed *are* the routing reply: terminal, no data
                // push follows and no further ack is owed.
                Ok(ClientEvent::Server(Message::Busy {
                    retry_after_us,
                    level,
                })) => {
                    unblock_acceptor(addr, acceptor);
                    return Ok(GetOutcome::Busy {
                        retry_after_us,
                        level,
                    });
                }
                Ok(ClientEvent::Server(Message::Shed { code, level, .. })) => {
                    unblock_acceptor(addr, acceptor);
                    return Ok(GetOutcome::Shed { code, level });
                }
                Ok(ClientEvent::Server(Message::Err { code })) => {
                    unblock_acceptor(addr, acceptor);
                    return Err(io::Error::other(format!("server error {code}")));
                }
                Ok(ClientEvent::Server(other)) => {
                    unblock_acceptor(addr, acceptor);
                    return Err(io::Error::other(format!("unexpected ack {other:?}")));
                }
                Ok(ClientEvent::ServerClosed) => {
                    unblock_acceptor(addr, acceptor);
                    return Err(io::Error::other("server connection closed"));
                }
                Err(e) => {
                    unblock_acceptor(addr, acceptor);
                    if !acked {
                        self.owed_acks += 1;
                    }
                    return Err(e);
                }
            }
        };
        let _ = acceptor.join();
        let data = match read_message(&mut push).map_err(|e| io::Error::other(e.to_string()))? {
            Message::FileData {
                req_id: got_id,
                file: got,
                data,
            } if got == file && got_id == req_id => data.to_vec(),
            other => return Err(io::Error::other(format!("unexpected push {other:?}"))),
        };
        let response = start.elapsed();
        if !acked {
            self.await_ack(deadline)?;
        }
        Ok(GetOutcome::Data(GetResult { data, response }))
    }

    /// Writes a file through the cluster (the node pulls the payload from
    /// us over the callback connection). Returns the wall response time.
    /// The payload length must equal the file's creation size.
    pub fn put(&mut self, file: u32, data: &[u8]) -> io::Result<Duration> {
        self.drain_stale();
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let acceptor = self.spawn_acceptor(listener)?;
        let start = Instant::now();
        let deadline = start + self.cfg.client_deadline;
        if let Err(e) = write_message(
            &mut self.server_conn,
            &Message::Put {
                req_id,
                file,
                client_port: addr.port(),
                deadline_us: 0,
                priority: 3,
            },
        ) {
            unblock_acceptor(addr, acceptor);
            return Err(io::Error::other(e.to_string()));
        }
        // The first event must be the node's pull connection: the server
        // cannot ack a write before we supply the payload, so any server
        // message here is a routing failure (or protocol confusion).
        let mut pull = match self.recv_event(deadline) {
            Ok(ClientEvent::Push(s)) => s,
            Ok(ClientEvent::Server(Message::Err { code })) => {
                unblock_acceptor(addr, acceptor);
                return Err(io::Error::other(format!("server error {code}")));
            }
            Ok(ClientEvent::Server(other)) => {
                unblock_acceptor(addr, acceptor);
                return Err(io::Error::other(format!("unexpected ack {other:?}")));
            }
            Ok(ClientEvent::ServerClosed) => {
                unblock_acceptor(addr, acceptor);
                return Err(io::Error::other("server connection closed"));
            }
            Err(e) => {
                unblock_acceptor(addr, acceptor);
                self.owed_acks += 1;
                return Err(e);
            }
        };
        let _ = acceptor.join();
        if let Err(e) = write_message(
            &mut pull,
            &Message::FileData {
                req_id,
                file,
                data: bytes::Bytes::copy_from_slice(data),
            },
        ) {
            // The node still replies to the server, so the ack is owed.
            self.owed_acks += 1;
            return Err(io::Error::other(e.to_string()));
        }
        self.await_ack(deadline)?;
        Ok(start.elapsed())
    }

    /// Fetches and verifies a file's contents against the deterministic
    /// creation pattern.
    pub fn get_verified(&mut self, file: u32) -> io::Result<GetResult> {
        let r = self.get(file)?;
        if !verify_pattern(file, &r.data) {
            return Err(io::Error::other(format!("file {file} failed verification")));
        }
        Ok(r)
    }

    /// Replays a trace sequentially (the prototype's replayer): issues
    /// each read, waits for the response, then sleeps the scaled
    /// inter-arrival gap to the next record. Statistics cover the replay
    /// window only (setup/prefetch energy is excluded, as in the paper's
    /// measurements).
    pub fn replay(&mut self, trace: &Trace) -> io::Result<ReplayReport> {
        let before = self.stats()?;
        let mut responses = Vec::with_capacity(trace.len());
        let mut prev_at = None;
        for r in &trace.records {
            if let Some(prev) = prev_at {
                let gap = r.at - prev;
                if !gap.is_zero() {
                    self.clock.sleep_virtual(gap);
                }
            }
            prev_at = Some(r.at);
            let got = self.get(r.file.0)?;
            responses.push(got.response);
        }
        let stats = self.stats()? - before;
        Ok(ReplayReport { responses, stats })
    }

    /// Sends one admin message to the server and expects `Ok`.
    fn admin(&mut self, msg: &Message, what: &str) -> io::Result<()> {
        self.drain_stale();
        write_message(&mut self.server_conn, msg).map_err(|e| io::Error::other(e.to_string()))?;
        let deadline = Instant::now() + self.cfg.client_deadline;
        self.await_ack(deadline)
            .map_err(|e| io::Error::other(format!("{what}: {e}")))
    }

    /// Failure injection: shuts down one storage node, leaving the rest
    /// of the cluster (and the server) running. With replication, reads
    /// of its files fail over to surviving copies; without, they fail
    /// with a server error.
    pub fn kill_node(&mut self, node: usize) -> io::Result<()> {
        self.admin(&Message::KillNode { node: node as u32 }, "kill_node")
    }

    /// Network-fault injection: cuts the server↔node link for `node`.
    /// The node stays alive but the server's request-path frames to it
    /// are dropped until [`ClusterHandle::heal_node`]; the per-node
    /// circuit breaker trips once the policy's failure threshold is hit.
    pub fn partition_node(&mut self, node: usize) -> io::Result<()> {
        self.admin(
            &Message::PartitionLink { node: node as u32 },
            "partition_node",
        )
    }

    /// Undoes a [`ClusterHandle::partition_node`]; after the breaker's
    /// cooldown, a half-open probe restores routing to the node.
    pub fn heal_node(&mut self, node: usize) -> io::Result<()> {
        self.admin(&Message::HealLink { node: node as u32 }, "heal_node")
    }

    /// Failure injection: marks one data disk failed. Reads that need it
    /// fail over to a replica (or to the node's buffer copy).
    pub fn fail_disk(&mut self, node: usize, disk: usize) -> io::Result<()> {
        self.admin(
            &Message::FailDisk {
                node: node as u32,
                disk: disk as u32,
            },
            "fail_disk",
        )
    }

    /// Undoes a [`ClusterHandle::fail_disk`].
    pub fn repair_disk(&mut self, node: usize, disk: usize) -> io::Result<()> {
        self.admin(
            &Message::RepairDisk {
                node: node as u32,
                disk: disk as u32,
            },
            "repair_disk",
        )
    }

    /// Repair flow: boots a replacement daemon for a killed node (fresh
    /// store directory, same shared clock) and asks the server to
    /// re-register it — the server replays the node's creates, prefetch
    /// and hints, then resumes routing to it.
    pub fn revive_node(&mut self, node: usize) -> io::Result<()> {
        if node >= self.nodes.len() {
            return Err(io::Error::other(format!("revive_node: no node {node}")));
        }
        self.revival_gen += 1;
        let replacement = NodeDaemon::spawn(NodeConfig {
            root: self
                .cfg
                .root_dir
                .join(format!("node{node}-r{}", self.revival_gen)),
            data_disks: self.cfg.data_disks_per_node,
            disk_spec: self.cfg.disk_spec.clone(),
            idle_threshold: self.cfg.idle_threshold,
            clock: self.clock.clone(),
        })?;
        let port = replacement.addr.port();
        // Swap in place so node index -> daemon stays the invariant and
        // shutdown joins exactly the live set.
        let old = std::mem::replace(&mut self.nodes[node], replacement);
        let res = self.admin(
            &Message::ReviveNode {
                node: node as u32,
                port,
            },
            "revive_node",
        );
        // Retire the daemon previously at this index. After kill_node it
        // has already exited; on a revive of a live node (double revive)
        // the server just dropped its connection, so it is back in accept
        // and needs an explicit Shutdown — otherwise joining it hangs.
        if !old.is_finished() {
            if let Ok(mut conn) = TcpStream::connect(old.addr) {
                let _ = write_message(&mut conn, &Message::Shutdown);
                let _ = read_message(&mut conn);
            }
        }
        old.join();
        res
    }

    /// Crash-recovery flow: boots a replacement daemon for a killed node
    /// over its **original** store directory. The daemon replays the
    /// node's buffer-disk journal at boot — recovering its file map,
    /// buffer catalog, and power arming on its own — and the server is
    /// asked to `Register` it: reconnect, re-send hints, resume routing.
    /// Contrast [`ClusterHandle::revive_node`], which rebuilds a node
    /// from scratch by replaying the server-side setup logs.
    pub fn restart_node(&mut self, node: usize) -> io::Result<()> {
        if node >= self.nodes.len() {
            return Err(io::Error::other(format!("restart_node: no node {node}")));
        }
        let replacement = NodeDaemon::spawn(NodeConfig {
            root: self.cfg.root_dir.join(format!("node{node}")),
            data_disks: self.cfg.data_disks_per_node,
            disk_spec: self.cfg.disk_spec.clone(),
            idle_threshold: self.cfg.idle_threshold,
            clock: self.clock.clone(),
        })?;
        let port = replacement.addr.port();
        let old = std::mem::replace(&mut self.nodes[node], replacement);
        let res = self.admin(
            &Message::Register {
                node: node as u32,
                port,
            },
            "restart_node",
        );
        if !old.is_finished() {
            if let Ok(mut conn) = TcpStream::connect(old.addr) {
                let _ = write_message(&mut conn, &Message::Shutdown);
                let _ = read_message(&mut conn);
            }
        }
        old.join();
        res
    }

    /// Collects cluster-wide statistics.
    pub fn stats(&mut self) -> io::Result<ClusterStats> {
        self.drain_stale();
        write_message(&mut self.server_conn, &Message::StatsRequest)
            .map_err(|e| io::Error::other(e.to_string()))?;
        let deadline = Instant::now() + self.cfg.client_deadline;
        loop {
            match self.recv_event(deadline)? {
                ClientEvent::Server(reply @ Message::Stats { .. }) => {
                    let counters = reply
                        .into_stats()
                        .map_err(|e| io::Error::other(e.to_string()))?;
                    return Ok(ClusterStats::from_counters(counters));
                }
                ClientEvent::Server(other) => {
                    return Err(io::Error::other(format!(
                        "unexpected stats reply {other:?}"
                    )))
                }
                ClientEvent::ServerClosed => {
                    return Err(io::Error::other("server connection closed"))
                }
                ClientEvent::Push(_) => {} // stale callback; drop
            }
        }
    }

    /// Shuts the cluster down and removes its on-disk state.
    pub fn shutdown(mut self) {
        let _ = write_message(&mut self.server_conn, &Message::Shutdown);
        // Wait for the shutdown echo (or the connection closing).
        let deadline = Instant::now() + self.cfg.client_deadline;
        loop {
            match self.recv_event(deadline) {
                Ok(ClientEvent::Server(Message::Shutdown))
                | Ok(ClientEvent::ServerClosed)
                | Err(_) => break,
                Ok(_) => {}
            }
        }
        if let Some(server) = self.server.take() {
            server.join();
        }
        if let Some(reader) = self.reader.take() {
            // The reader exits once the server side closes the connection.
            let _ = reader.join();
        }
        for node in self.nodes.drain(..) {
            node.join();
        }
        let _ = std::fs::remove_dir_all(&self.cfg.root_dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::synthetic::{generate, SizeDist, SyntheticSpec};

    fn small_trace(files: u32, requests: u32, mu: f64) -> Trace {
        generate(&SyntheticSpec {
            files,
            requests,
            mu,
            mean_size_bytes: 16 * 1024,
            size_dist: SizeDist::Fixed,
            inter_arrival: SimDuration::from_millis(700),
            ..SyntheticSpec::paper_default()
        })
    }

    #[test]
    fn boots_serves_and_shuts_down() {
        let trace = small_trace(20, 10, 5.0);
        let mut cluster =
            ClusterHandle::start(RuntimeConfig::small("boot"), &trace).expect("start");
        let r = cluster.get_verified(0).expect("get file 0");
        assert_eq!(r.data.len(), 16 * 1024);
        cluster.shutdown();
    }

    #[test]
    fn replay_reports_hits_and_energy() {
        let trace = small_trace(20, 30, 3.0);
        let mut cluster =
            ClusterHandle::start(RuntimeConfig::small("replay"), &trace).expect("start");
        let report = cluster.replay(&trace).expect("replay");
        assert_eq!(report.responses.len(), 30);
        // MU=3 concentrates on a handful of files, all within top-8
        // prefetch: replay should be dominated by buffer hits.
        assert!(
            report.hit_rate() > 0.9,
            "hit rate {} stats {:?}",
            report.hit_rate(),
            report.stats
        );
        assert!(report.stats.disk_joules > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn put_then_get_roundtrips_through_the_buffer() {
        let trace = small_trace(12, 8, 3.0);
        let mut cluster = ClusterHandle::start(RuntimeConfig::small("put"), &trace).expect("start");
        let payload = vec![0x5Au8; 16 * 1024];
        cluster.put(7, &payload).expect("put");
        let got = cluster.get(7).expect("get after put");
        assert_eq!(got.data, payload, "read must observe the write");
        // The write was absorbed by the buffer area, so the read hits.
        let stats = cluster.stats().expect("stats");
        assert!(stats.hits >= 1, "stats {stats:?}");
        cluster.shutdown();
    }

    #[test]
    fn put_with_wrong_size_is_rejected() {
        let trace = small_trace(12, 8, 3.0);
        let mut cluster =
            ClusterHandle::start(RuntimeConfig::small("putbad"), &trace).expect("start");
        let err = cluster.put(7, &[1, 2, 3]).expect_err("size mismatch");
        assert!(err.to_string().contains("3"), "{err}");
        cluster.shutdown();
    }

    #[test]
    fn npf_configuration_never_sleeps() {
        let trace = small_trace(20, 15, 5.0);
        let mut cfg = RuntimeConfig::small("npf");
        cfg.prefetch_k = 0;
        let mut cluster = ClusterHandle::start(cfg, &trace).expect("start");
        let report = cluster.replay(&trace).expect("replay");
        assert_eq!(report.stats.hits, 0);
        assert_eq!(report.stats.spin_ups + report.stats.spin_downs, 0);
        cluster.shutdown();
    }

    #[test]
    fn rpc_spans_follow_the_request_id() {
        use crate::server::{RpcSpan, SpanKind};
        use std::sync::{Arc, Mutex};
        let trace = small_trace(12, 8, 3.0);
        let mut cfg = RuntimeConfig::small("spans");
        let sink = Arc::new(Mutex::new(Vec::new()));
        cfg.resilience.spans = Some(sink.clone());
        let mut cluster = ClusterHandle::start(cfg, &trace).expect("start");
        cluster.get(0).expect("get 0");
        cluster.get(1).expect("get 1");
        cluster.shutdown();
        let spans: Vec<RpcSpan> = sink.lock().expect("sink").clone();
        // Each get produces at least Send then Complete, stamped with the
        // client-assigned id (1-based, monotone) on the same attempt.
        for req_id in [1u64, 2] {
            let of_req: Vec<_> = spans.iter().filter(|s| s.req_id == req_id).collect();
            assert!(
                of_req.iter().any(|s| s.kind == SpanKind::Send),
                "req {req_id} missing Send: {spans:?}"
            );
            let done = of_req
                .iter()
                .find(|s| s.kind == SpanKind::Complete)
                .unwrap_or_else(|| panic!("req {req_id} missing Complete: {spans:?}"));
            assert_eq!(done.attempt, 1, "healthy cluster needs one attempt");
        }
    }

    #[test]
    fn killed_node_restarts_from_its_journal() {
        let trace = small_trace(20, 10, 5.0);
        let mut cfg = RuntimeConfig::small("restart");
        let journal = cfg.root_dir.join("placement.journal");
        cfg.resilience.placement_journal = Some(journal.clone());
        let mut cluster = ClusterHandle::start(cfg, &trace).expect("start");
        // The placement journal tells us which files node 1 owns.
        let placements = crate::server::recover_placements(&journal).expect("recover");
        let victim = placements
            .iter()
            .find(|(_, copies)| copies[0].0 == 1)
            .map(|(&file, _)| file)
            .expect("node 1 owns at least one of 20 files");
        cluster.get_verified(victim).expect("healthy get");

        cluster.kill_node(1).expect("kill");
        assert!(
            cluster.get(victim).is_err(),
            "unreplicated file must be unreachable while its node is down"
        );
        cluster.restart_node(1).expect("restart");
        cluster
            .get_verified(victim)
            .expect("restarted node serves from journal-recovered state");
        let stats = cluster.stats().expect("stats");
        assert_eq!(stats.journal_replays, 1, "stats {stats:?}");
        cluster.shutdown();
    }

    #[test]
    fn corrupt_primary_fails_over_and_is_counted() {
        let trace = small_trace(12, 8, 3.0);
        let mut cfg = RuntimeConfig::small("corrupt");
        cfg.replication = 2;
        cfg.prefetch_k = 0; // force data-disk reads
        let journal = cfg.root_dir.join("placement.journal");
        cfg.resilience.placement_journal = Some(journal.clone());
        let root = cfg.root_dir.clone();
        let mut cluster = ClusterHandle::start(cfg, &trace).expect("start");
        // Rot one byte of file 0's primary copy behind the node's back,
        // leaving its checksum sidecar untouched.
        let placements = crate::server::recover_placements(&journal).expect("recover");
        let (node, disk) = placements[&0][0];
        let path = root
            .join(format!("node{node}"))
            .join(format!("disk{disk}"))
            .join("f00000000");
        let mut data = std::fs::read(&path).expect("read primary copy");
        data[100] ^= 0x01;
        std::fs::write(&path, data).expect("write rot");

        let r = cluster.get_verified(0).expect("replica serves clean data");
        assert_eq!(r.data.len(), 16 * 1024);
        let stats = cluster.stats().expect("stats");
        assert!(stats.corruptions_detected >= 1, "stats {stats:?}");
        assert!(stats.failovers >= 1, "stats {stats:?}");
        cluster.shutdown();
    }

    #[test]
    fn placement_journal_is_reproducible_and_recovers_the_map() {
        let trace = small_trace(20, 15, 4.0);
        let mut journals = Vec::new();
        for tag in ["pj-a", "pj-b"] {
            let mut cfg = RuntimeConfig::small(tag);
            cfg.replication = 2;
            let journal = cfg.root_dir.join("placement.journal");
            cfg.resilience.placement_journal = Some(journal.clone());
            let cluster = ClusterHandle::start(cfg, &trace).expect("start");
            journals.push(std::fs::read(&journal).expect("journal bytes"));
            cluster.shutdown();
        }
        assert_eq!(
            journals[0], journals[1],
            "same trace + config must journal byte-identically"
        );
        let recovered = eevfs::journal::MetaState::from_bytes(&journals[0]).placements;
        assert_eq!(recovered.len(), 20, "every file has a recovered placement");
        for (file, copies) in &recovered {
            assert_eq!(copies.len(), 2, "file {file} must have two copies");
            assert_ne!(
                copies[0].0, copies[1].0,
                "file {file} copies must be on distinct nodes"
            );
        }
    }

    #[test]
    fn resilience_counters_stay_zero_on_a_healthy_cluster() {
        let trace = small_trace(12, 10, 4.0);
        let mut cluster =
            ClusterHandle::start(RuntimeConfig::small("zerores"), &trace).expect("start");
        for file in 0..6u32 {
            cluster.get(file).expect("get");
        }
        let s = cluster.stats().expect("stats");
        assert_eq!(
            (s.retries, s.hedges, s.breaker_trips, s.deadline_misses),
            (0, 0, 0, 0),
            "default policy on a healthy cluster must be invisible: {s:?}"
        );
        cluster.shutdown();
    }
}
