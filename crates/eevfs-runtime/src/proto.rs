//! Wire protocol for the prototype.
//!
//! Hand-rolled length-prefixed binary framing over TCP (the 2010
//! prototype predates serde; a fixed binary layout keeps the runtime
//! dependency-light and the frames inspectable):
//!
//! ```text
//! u32 frame_len (excluding itself) | u8 tag | payload...
//! ```
//!
//! All integers are little-endian. File payloads are capped at
//! [`MAX_FRAME`] to bound allocations from untrusted peers.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// Upper bound on a frame, 256 MiB (the paper's largest file is 50 MB).
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server → node: create a file of `size` bytes on data disk `disk`.
    CreateFile {
        /// File id.
        file: u32,
        /// File size in bytes.
        size: u64,
        /// Local data-disk index chosen by placement.
        disk: u32,
    },
    /// Server → node: copy these files into the buffer area (step 3).
    Prefetch {
        /// Files to prefetch, popularity order.
        files: Vec<u32>,
    },
    /// Server → node: expected access pattern for this node (step 4), as
    /// `(virtual_time_us, file)` pairs.
    Hints {
        /// Expected accesses in time order.
        pattern: Vec<(u64, u32)>,
    },
    /// Client → server, then server → node: fetch `file`; the node must
    /// push the data to `127.0.0.1:client_port` (steps 5-6).
    Get {
        /// Request id assigned by the client, echoed end-to-end so one id
        /// follows client → server → node → disk in traces.
        req_id: u64,
        /// File id.
        file: u32,
        /// Client callback port.
        client_port: u16,
        /// Remaining deadline budget, microseconds (0 = no deadline).
        /// Shrinks hop-by-hop: the client stamps the total budget and
        /// each hop forwards what is left after its own queueing.
        deadline_us: u64,
        /// Request priority, 0 (lowest) to 255. Under brownout level 2
        /// the server sheds the lowest priorities first.
        priority: u8,
    },
    /// Node → client: the file contents.
    FileData {
        /// Request id echoed from the originating [`Message::Get`] /
        /// [`Message::Put`] (zero for frames outside a request, e.g.
        /// replication pushes).
        req_id: u64,
        /// File id.
        file: u32,
        /// Contents.
        data: Bytes,
    },
    /// Generic acknowledgement.
    Ok,
    /// Failure with an error code.
    Err {
        /// Error code (1 = no such file, 2 = io error, 3 = bad request).
        code: u16,
    },
    /// Server → node: report energy statistics.
    StatsRequest,
    /// Node → server: energy statistics in response. Field meanings are
    /// documented on [`StatsCounters`]; node replies leave the
    /// server-side counters zero and the server adds its own when
    /// aggregating.
    Stats {
        /// The counters.
        counters: StatsCounters,
    },
    /// Orderly shutdown.
    Shutdown,
    /// Client → server, then server → node: write `file`; the node
    /// connects to `127.0.0.1:client_port` and *reads* a [`Message::FileData`]
    /// frame from the client (the push pattern, reversed).
    Put {
        /// Request id assigned by the client, echoed end-to-end (same
        /// contract as the `req_id` on [`Message::Get`]).
        req_id: u64,
        /// File id.
        file: u32,
        /// Client callback port.
        client_port: u16,
        /// Remaining deadline budget, microseconds (0 = no deadline).
        deadline_us: u64,
        /// Request priority, 0 (lowest) to 255.
        priority: u8,
    },
    /// Client → server (admin / failure injection): shut down one storage
    /// node, leaving the rest of the cluster running.
    KillNode {
        /// Node index.
        node: u32,
    },
    /// Client → server, then server → node (failure injection): mark one
    /// data disk as failed; physical accesses to it return io errors
    /// until repaired.
    FailDisk {
        /// Node index (the node daemon ignores it; the server routes on it).
        node: u32,
        /// Local data-disk index.
        disk: u32,
    },
    /// Client → server, then server → node: undo a [`Message::FailDisk`].
    RepairDisk {
        /// Node index.
        node: u32,
        /// Local data-disk index.
        disk: u32,
    },
    /// Client → server (repair flow): a replacement daemon for `node` is
    /// listening on `127.0.0.1:port`; the server reconnects, replays the
    /// node's setup (creates, prefetch, hints), and resumes routing to it.
    ReviveNode {
        /// Node index.
        node: u32,
        /// Control port of the replacement daemon.
        port: u16,
    },
    /// Client → server (admin / network-fault injection): cut the
    /// server↔node link for `node`; requests reroute to surviving
    /// replicas until a [`Message::HealLink`].
    PartitionLink {
        /// Node index.
        node: u32,
    },
    /// Client → server: undo a [`Message::PartitionLink`].
    HealLink {
        /// Node index.
        node: u32,
    },
    /// Client → server (crash-recovery flow): a *restarted* daemon for
    /// `node` — same store directory, its own metadata recovered by
    /// replaying its buffer-disk journal — is listening on
    /// `127.0.0.1:port`. Unlike [`Message::ReviveNode`], the server does
    /// **not** replay creates/prefetch (the node already owns its files);
    /// it reconnects, re-sends the soft-state hints, and resumes routing.
    Register {
        /// Node index.
        node: u32,
        /// Control port of the restarted daemon.
        port: u16,
    },
    /// Backpressure reply (server → client at admission, or node → server
    /// under brownout): the request was **not** accepted and no work was
    /// done for it; the sender suggests retrying after `retry_after_us`.
    Busy {
        /// Suggested wall-clock retry delay, microseconds.
        retry_after_us: u64,
        /// Brownout level at the sender when the request was refused.
        level: u8,
    },
    /// Load-shedding reply (server → client): the request was dropped by
    /// the overload control plane — deadline budget exhausted, priority
    /// shed under brownout level 2, or refused downstream — and will not
    /// be retried by the cluster.
    Shed {
        /// Request id echoed from the originating `Get`/`Put`.
        req_id: u64,
        /// Why it was shed (1 = deadline expired, 2 = priority shed,
        /// 3 = refused downstream under brownout).
        code: u16,
        /// Brownout level at the decision point.
        level: u8,
    },
    /// Server → node: the cluster's brownout level changed. At level ≥ 1
    /// the node serves buffer-disk content only and refuses misses that
    /// would spin up a data disk (replying [`Message::Busy`]); level 0
    /// restores normal serving.
    Brownout {
        /// New brownout level, 0 (normal) to 3 (admission rejects all).
        level: u8,
    },
}

/// Payload of a [`Message::FileData`] frame, extracted by
/// [`Message::into_file_data`].
#[derive(Debug, Clone, PartialEq)]
pub struct FileDataPayload {
    /// Request id echoed from the originating `Get`/`Put`.
    pub req_id: u64,
    /// File id.
    pub file: u32,
    /// Contents.
    pub data: Bytes,
}

/// Counters of a [`Message::Stats`] frame, extracted by
/// [`Message::into_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsCounters {
    /// Total joules across this node's disks (virtual time).
    pub disk_joules: f64,
    /// Spin-ups across data disks.
    pub spin_ups: u64,
    /// Spin-downs across data disks.
    pub spin_downs: u64,
    /// Buffer hits.
    pub hits: u64,
    /// Buffer misses.
    pub misses: u64,
    /// Requests the server served from a non-primary replica (zero in
    /// node → server replies; the server adds its own when aggregating).
    pub failovers: u64,
    /// RPC flights re-sent after a drop, reset, or per-try timeout
    /// (server-side).
    pub retries: u64,
    /// Hedged reads issued against a second replica (server-side).
    pub hedges: u64,
    /// Hedged reads where the second replica answered first (server-side).
    pub hedges_won: u64,
    /// Circuit-breaker trips, closed/half-open → open (server-side).
    pub breaker_trips: u64,
    /// Half-open probes that closed a breaker again (server-side).
    pub breaker_recoveries: u64,
    /// Requests that blew their end-to-end deadline (server-side).
    pub deadline_misses: u64,
    /// Journal replays this node performed at boot (1 after a restart
    /// with an intact journal, 0 on a cold start).
    pub journal_replays: u64,
    /// Checksum mismatches caught on the node's data-disk reads.
    pub corruptions_detected: u64,
    /// Requests offered to the server's admission gate (server-side; the
    /// shed ledger closes as `offered == admitted + rejected + shed` and
    /// `admitted == completed + node_shed + request_errors`).
    pub offered: u64,
    /// Requests that passed admission.
    pub admitted: u64,
    /// Requests refused at admission with [`Message::Busy`].
    pub rejected: u64,
    /// Requests dropped pre-admission with [`Message::Shed`] (deadline
    /// expired or priority shed).
    pub shed: u64,
    /// Admitted requests a node refused under brownout.
    pub node_shed: u64,
    /// Admitted requests answered with data / `Ok`.
    pub completed: u64,
    /// Admitted requests that ended in an error reply.
    pub request_errors: u64,
    /// Brownout-ladder level changes (either direction).
    pub brownout_transitions: u64,
    /// Peak concurrent admitted requests observed at the server.
    pub queue_peak: u64,
}

impl StatsCounters {
    /// Number of `u64` counters following `disk_joules` on the wire.
    pub const U64_FIELDS: usize = 22;

    /// The `u64` counters in wire order (everything after `disk_joules`).
    fn as_u64_fields(&self) -> [u64; Self::U64_FIELDS] {
        [
            self.spin_ups,
            self.spin_downs,
            self.hits,
            self.misses,
            self.failovers,
            self.retries,
            self.hedges,
            self.hedges_won,
            self.breaker_trips,
            self.breaker_recoveries,
            self.deadline_misses,
            self.journal_replays,
            self.corruptions_detected,
            self.offered,
            self.admitted,
            self.rejected,
            self.shed,
            self.node_shed,
            self.completed,
            self.request_errors,
            self.brownout_transitions,
            self.queue_peak,
        ]
    }

    /// Rebuilds counters from `disk_joules` plus the wire-order fields.
    fn from_u64_fields(disk_joules: f64, f: [u64; Self::U64_FIELDS]) -> StatsCounters {
        StatsCounters {
            disk_joules,
            spin_ups: f[0],
            spin_downs: f[1],
            hits: f[2],
            misses: f[3],
            failovers: f[4],
            retries: f[5],
            hedges: f[6],
            hedges_won: f[7],
            breaker_trips: f[8],
            breaker_recoveries: f[9],
            deadline_misses: f[10],
            journal_replays: f[11],
            corruptions_detected: f[12],
            offered: f[13],
            admitted: f[14],
            rejected: f[15],
            shed: f[16],
            node_shed: f[17],
            completed: f[18],
            request_errors: f[19],
            brownout_transitions: f[20],
            queue_peak: f[21],
        }
    }
}

/// Codec errors.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failed.
    Io(std::io::Error),
    /// Frame violated the protocol.
    Malformed(&'static str),
    /// Frame carried a tag this build does not understand (future
    /// protocol revision or garbage) — distinct from [`CodecError::Malformed`]
    /// so callers can choose to skip rather than tear down the connection.
    UnknownTag(u8),
    /// A well-formed frame arrived where a different message was required
    /// (protocol *state* violation, e.g. a node answering `StatsRequest`
    /// with `Ok`). Carrying both sides keeps the error self-describing
    /// without killing the thread that noticed.
    Unexpected {
        /// The variant the caller needed.
        expected: &'static str,
        /// The variant that actually arrived.
        got: &'static str,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "io: {e}"),
            CodecError::Malformed(why) => write!(f, "malformed frame: {why}"),
            CodecError::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
            CodecError::Unexpected { expected, got } => {
                write!(f, "protocol mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::CreateFile { .. } => 1,
            Message::Prefetch { .. } => 2,
            Message::Hints { .. } => 3,
            Message::Get { .. } => 4,
            Message::FileData { .. } => 5,
            Message::Ok => 6,
            Message::Err { .. } => 7,
            Message::StatsRequest => 8,
            Message::Stats { .. } => 9,
            Message::Shutdown => 10,
            Message::Put { .. } => 11,
            Message::KillNode { .. } => 12,
            Message::FailDisk { .. } => 13,
            Message::RepairDisk { .. } => 14,
            Message::ReviveNode { .. } => 15,
            Message::PartitionLink { .. } => 16,
            Message::HealLink { .. } => 17,
            Message::Register { .. } => 18,
            Message::Busy { .. } => 19,
            Message::Shed { .. } => 20,
            Message::Brownout { .. } => 21,
        }
    }

    /// The end-to-end request id carried by request/response frames
    /// (`Get`, `Put`, `FileData`, `Shed`); `None` for control traffic.
    pub fn req_id(&self) -> Option<u64> {
        match self {
            Message::Get { req_id, .. }
            | Message::Put { req_id, .. }
            | Message::FileData { req_id, .. }
            | Message::Shed { req_id, .. } => Some(*req_id),
            _ => None,
        }
    }

    /// Variant name, for [`CodecError::Unexpected`] diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::CreateFile { .. } => "CreateFile",
            Message::Prefetch { .. } => "Prefetch",
            Message::Hints { .. } => "Hints",
            Message::Get { .. } => "Get",
            Message::FileData { .. } => "FileData",
            Message::Ok => "Ok",
            Message::Err { .. } => "Err",
            Message::StatsRequest => "StatsRequest",
            Message::Stats { .. } => "Stats",
            Message::Shutdown => "Shutdown",
            Message::Put { .. } => "Put",
            Message::KillNode { .. } => "KillNode",
            Message::FailDisk { .. } => "FailDisk",
            Message::RepairDisk { .. } => "RepairDisk",
            Message::ReviveNode { .. } => "ReviveNode",
            Message::PartitionLink { .. } => "PartitionLink",
            Message::HealLink { .. } => "HealLink",
            Message::Register { .. } => "Register",
            Message::Busy { .. } => "Busy",
            Message::Shed { .. } => "Shed",
            Message::Brownout { .. } => "Brownout",
        }
    }

    /// Consumes the message, returning the `FileData` payload, or a typed
    /// [`CodecError::Unexpected`] naming what arrived instead — the
    /// conversion a peer performs after a `Get`/`Put` push, where the
    /// wrong frame must surface as an error rather than kill the thread.
    pub fn into_file_data(self) -> Result<FileDataPayload, CodecError> {
        match self {
            Message::FileData { req_id, file, data } => Ok(FileDataPayload { req_id, file, data }),
            other => Err(CodecError::Unexpected {
                expected: "FileData",
                got: other.kind_name(),
            }),
        }
    }

    /// Consumes the message, returning the stats counters, or a typed
    /// [`CodecError::Unexpected`] naming what arrived instead.
    pub fn into_stats(self) -> Result<StatsCounters, CodecError> {
        match self {
            Message::Stats { counters } => Ok(counters),
            other => Err(CodecError::Unexpected {
                expected: "Stats",
                got: other.kind_name(),
            }),
        }
    }

    /// Encodes into a self-contained frame.
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        body.put_u8(self.tag());
        match self {
            Message::CreateFile { file, size, disk } => {
                body.put_u32_le(*file);
                body.put_u64_le(*size);
                body.put_u32_le(*disk);
            }
            Message::Prefetch { files } => {
                body.put_u32_le(files.len() as u32);
                for f in files {
                    body.put_u32_le(*f);
                }
            }
            Message::Hints { pattern } => {
                body.put_u32_le(pattern.len() as u32);
                for (t, f) in pattern {
                    body.put_u64_le(*t);
                    body.put_u32_le(*f);
                }
            }
            Message::Get {
                req_id,
                file,
                client_port,
                deadline_us,
                priority,
            }
            | Message::Put {
                req_id,
                file,
                client_port,
                deadline_us,
                priority,
            } => {
                body.put_u64_le(*req_id);
                body.put_u32_le(*file);
                body.put_u16_le(*client_port);
                body.put_u64_le(*deadline_us);
                body.put_u8(*priority);
            }
            Message::FileData { req_id, file, data } => {
                body.put_u64_le(*req_id);
                body.put_u32_le(*file);
                body.put_u64_le(data.len() as u64);
                body.extend_from_slice(data);
            }
            Message::Ok | Message::StatsRequest | Message::Shutdown => {}
            Message::KillNode { node } => body.put_u32_le(*node),
            Message::FailDisk { node, disk } | Message::RepairDisk { node, disk } => {
                body.put_u32_le(*node);
                body.put_u32_le(*disk);
            }
            Message::ReviveNode { node, port } | Message::Register { node, port } => {
                body.put_u32_le(*node);
                body.put_u16_le(*port);
            }
            Message::PartitionLink { node } | Message::HealLink { node } => body.put_u32_le(*node),
            Message::Err { code } => body.put_u16_le(*code),
            Message::Stats { counters: c } => {
                body.put_f64_le(c.disk_joules);
                for v in c.as_u64_fields() {
                    body.put_u64_le(v);
                }
            }
            Message::Busy {
                retry_after_us,
                level,
            } => {
                body.put_u64_le(*retry_after_us);
                body.put_u8(*level);
            }
            Message::Shed {
                req_id,
                code,
                level,
            } => {
                body.put_u64_le(*req_id);
                body.put_u16_le(*code);
                body.put_u8(*level);
            }
            Message::Brownout { level } => body.put_u8(*level),
        }
        let mut framed = BytesMut::with_capacity(4 + body.len());
        framed.put_u32_le(body.len() as u32);
        framed.extend_from_slice(&body);
        framed.freeze()
    }

    /// Decodes one frame body (without the length prefix).
    pub fn decode(mut body: Bytes) -> Result<Message, CodecError> {
        use CodecError::Malformed;
        macro_rules! need {
            ($n:expr, $what:literal) => {
                if body.remaining() < $n {
                    return Err(Malformed(concat!("truncated ", $what)));
                }
            };
        }
        need!(1, "tag");
        let tag = body.get_u8();
        let msg = match tag {
            1 => {
                need!(16, "CreateFile");
                Message::CreateFile {
                    file: body.get_u32_le(),
                    size: body.get_u64_le(),
                    disk: body.get_u32_le(),
                }
            }
            2 => {
                need!(4, "Prefetch count");
                let n = body.get_u32_le();
                // Multiply in u64 so a hostile count cannot overflow the
                // size computation on any pointer width.
                if (body.remaining() as u64) < u64::from(n) * 4 {
                    return Err(Malformed("truncated Prefetch list"));
                }
                Message::Prefetch {
                    files: (0..n).map(|_| body.get_u32_le()).collect(),
                }
            }
            3 => {
                need!(4, "Hints count");
                let n = body.get_u32_le();
                if (body.remaining() as u64) < u64::from(n) * 12 {
                    return Err(Malformed("truncated Hints list"));
                }
                Message::Hints {
                    pattern: (0..n)
                        .map(|_| (body.get_u64_le(), body.get_u32_le()))
                        .collect(),
                }
            }
            4 => {
                need!(23, "Get");
                Message::Get {
                    req_id: body.get_u64_le(),
                    file: body.get_u32_le(),
                    client_port: body.get_u16_le(),
                    deadline_us: body.get_u64_le(),
                    priority: body.get_u8(),
                }
            }
            5 => {
                need!(20, "FileData header");
                let req_id = body.get_u64_le();
                let file = body.get_u32_le();
                let len = body.get_u64_le();
                // Compare in u64: `len as usize` first would wrap on
                // 32-bit targets and could spuriously match `remaining`.
                if body.remaining() as u64 != len {
                    return Err(Malformed("FileData length mismatch"));
                }
                Message::FileData {
                    req_id,
                    file,
                    data: body.copy_to_bytes(len as usize),
                }
            }
            6 => Message::Ok,
            7 => {
                need!(2, "Err");
                Message::Err {
                    code: body.get_u16_le(),
                }
            }
            8 => Message::StatsRequest,
            9 => {
                need!(8 + 8 * StatsCounters::U64_FIELDS, "Stats");
                let disk_joules = body.get_f64_le();
                let mut fields = [0u64; StatsCounters::U64_FIELDS];
                for f in &mut fields {
                    *f = body.get_u64_le();
                }
                Message::Stats {
                    counters: StatsCounters::from_u64_fields(disk_joules, fields),
                }
            }
            10 => Message::Shutdown,
            11 => {
                need!(23, "Put");
                Message::Put {
                    req_id: body.get_u64_le(),
                    file: body.get_u32_le(),
                    client_port: body.get_u16_le(),
                    deadline_us: body.get_u64_le(),
                    priority: body.get_u8(),
                }
            }
            12 => {
                need!(4, "KillNode");
                Message::KillNode {
                    node: body.get_u32_le(),
                }
            }
            13 => {
                need!(8, "FailDisk");
                Message::FailDisk {
                    node: body.get_u32_le(),
                    disk: body.get_u32_le(),
                }
            }
            14 => {
                need!(8, "RepairDisk");
                Message::RepairDisk {
                    node: body.get_u32_le(),
                    disk: body.get_u32_le(),
                }
            }
            15 => {
                need!(6, "ReviveNode");
                Message::ReviveNode {
                    node: body.get_u32_le(),
                    port: body.get_u16_le(),
                }
            }
            16 => {
                need!(4, "PartitionLink");
                Message::PartitionLink {
                    node: body.get_u32_le(),
                }
            }
            17 => {
                need!(4, "HealLink");
                Message::HealLink {
                    node: body.get_u32_le(),
                }
            }
            18 => {
                need!(6, "Register");
                Message::Register {
                    node: body.get_u32_le(),
                    port: body.get_u16_le(),
                }
            }
            19 => {
                need!(9, "Busy");
                Message::Busy {
                    retry_after_us: body.get_u64_le(),
                    level: body.get_u8(),
                }
            }
            20 => {
                need!(11, "Shed");
                Message::Shed {
                    req_id: body.get_u64_le(),
                    code: body.get_u16_le(),
                    level: body.get_u8(),
                }
            }
            21 => {
                need!(1, "Brownout");
                Message::Brownout {
                    level: body.get_u8(),
                }
            }
            other => return Err(CodecError::UnknownTag(other)),
        };
        if body.has_remaining() && !matches!(msg, Message::FileData { .. }) {
            return Err(Malformed("trailing bytes"));
        }
        Ok(msg)
    }
}

/// Writes one message to a stream.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> Result<(), CodecError> {
    w.write_all(&msg.encode())?;
    w.flush()?;
    Ok(())
}

/// Reads one message from a stream.
pub fn read_message<R: Read>(r: &mut R) -> Result<Message, CodecError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(CodecError::Malformed("frame exceeds MAX_FRAME"));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Message::decode(Bytes::from(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let framed = msg.encode();
        // Strip the length prefix, decode the body.
        let body = framed.slice(4..);
        let back = Message::decode(body).expect("decode");
        assert_eq!(msg, back);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::CreateFile {
            file: 7,
            size: 123456,
            disk: 1,
        });
        roundtrip(Message::Prefetch {
            files: vec![1, 2, 3, 99],
        });
        roundtrip(Message::Prefetch { files: vec![] });
        roundtrip(Message::Hints {
            pattern: vec![(1000, 1), (2000, 2)],
        });
        roundtrip(Message::Get {
            req_id: u64::MAX,
            file: 3,
            client_port: 54321,
            deadline_us: 2_000_000,
            priority: 3,
        });
        roundtrip(Message::FileData {
            req_id: 77,
            file: 3,
            data: Bytes::from_static(b"hello world"),
        });
        roundtrip(Message::FileData {
            req_id: 0,
            file: 0,
            data: Bytes::new(),
        });
        roundtrip(Message::Ok);
        roundtrip(Message::Err { code: 2 });
        roundtrip(Message::StatsRequest);
        roundtrip(Message::Stats {
            counters: StatsCounters {
                disk_joules: 1234.5,
                spin_ups: 3,
                spin_downs: 4,
                hits: 10,
                misses: 2,
                failovers: 5,
                retries: 7,
                hedges: 2,
                hedges_won: 1,
                breaker_trips: 1,
                breaker_recoveries: 1,
                deadline_misses: 0,
                journal_replays: 2,
                corruptions_detected: 6,
                offered: 100,
                admitted: 90,
                rejected: 7,
                shed: 3,
                node_shed: 2,
                completed: 85,
                request_errors: 3,
                brownout_transitions: 4,
                queue_peak: 16,
            },
        });
        roundtrip(Message::Shutdown);
        roundtrip(Message::Put {
            req_id: 12345,
            file: 8,
            client_port: 4242,
            deadline_us: 0,
            priority: 0,
        });
        roundtrip(Message::Busy {
            retry_after_us: 50_000,
            level: 1,
        });
        roundtrip(Message::Shed {
            req_id: 99,
            code: 2,
            level: 2,
        });
        roundtrip(Message::Brownout { level: 3 });
        roundtrip(Message::KillNode { node: 3 });
        roundtrip(Message::FailDisk { node: 1, disk: 0 });
        roundtrip(Message::RepairDisk { node: 1, disk: 0 });
        roundtrip(Message::ReviveNode {
            node: 2,
            port: 40123,
        });
        roundtrip(Message::PartitionLink { node: 1 });
        roundtrip(Message::HealLink { node: 1 });
        roundtrip(Message::Register {
            node: 1,
            port: 40999,
        });
    }

    #[test]
    fn request_frames_carry_req_id() {
        let get = Message::Get {
            req_id: 42,
            file: 1,
            client_port: 2,
            deadline_us: 0,
            priority: 0,
        };
        assert_eq!(get.req_id(), Some(42));
        // length prefix + tag + u64 req_id + u32 file + u16 port
        // + u64 deadline + u8 priority.
        assert_eq!(get.encode().len(), 4 + 1 + 23);
        let put = Message::Put {
            req_id: 43,
            file: 1,
            client_port: 2,
            deadline_us: 0,
            priority: 0,
        };
        assert_eq!(put.req_id(), Some(43));
        assert_eq!(put.encode().len(), 4 + 1 + 23);
        let fd = Message::FileData {
            req_id: 44,
            file: 1,
            data: Bytes::from_static(b"abc"),
        };
        assert_eq!(fd.req_id(), Some(44));
        // length prefix + tag + 20-byte header + payload.
        assert_eq!(fd.encode().len(), 4 + 1 + 20 + 3);
        let shed = Message::Shed {
            req_id: 45,
            code: 1,
            level: 2,
        };
        assert_eq!(shed.req_id(), Some(45));
        assert_eq!(shed.encode().len(), 4 + 1 + 11);
        assert_eq!(Message::Ok.req_id(), None);
        assert_eq!(
            Message::Busy {
                retry_after_us: 1,
                level: 0
            }
            .req_id(),
            None
        );
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        let msgs = vec![
            Message::Ok,
            Message::Get {
                req_id: 9,
                file: 1,
                client_port: 1000,
                deadline_us: 750_000,
                priority: 2,
            },
            Message::FileData {
                req_id: 9,
                file: 1,
                data: Bytes::from(vec![42u8; 1024]),
            },
        ];
        for m in &msgs {
            write_message(&mut buf, m).expect("write");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &msgs {
            let got = read_message(&mut cursor).expect("read");
            assert_eq!(&got, m);
        }
    }

    #[test]
    fn truncated_frames_rejected() {
        assert!(Message::decode(Bytes::new()).is_err());
        assert!(Message::decode(Bytes::from_static(&[1, 0, 0])).is_err());
        // Prefetch claiming 100 entries with none present.
        assert!(Message::decode(Bytes::from_static(&[2, 100, 0, 0, 0])).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Message::decode(Bytes::from_static(&[200])),
            Err(CodecError::UnknownTag(200))
        ));
        // The first unassigned tag after the current protocol revision.
        assert!(matches!(
            Message::decode(Bytes::from_static(&[22])),
            Err(CodecError::UnknownTag(22))
        ));
    }

    #[test]
    fn hostile_list_counts_rejected_without_overflow() {
        // Prefetch claiming u32::MAX entries: `count * 4` must not wrap
        // into something smaller than `remaining`.
        let mut body = BytesMut::new();
        body.put_u8(2);
        body.put_u32_le(u32::MAX);
        body.extend_from_slice(&[0u8; 64]);
        assert!(Message::decode(body.freeze()).is_err());
        // Same for Hints (12-byte entries).
        let mut body = BytesMut::new();
        body.put_u8(3);
        body.put_u32_le(u32::MAX);
        body.extend_from_slice(&[0u8; 64]);
        assert!(Message::decode(body.freeze()).is_err());
    }

    #[test]
    fn filedata_u64_length_compared_exactly() {
        // A length field larger than the buffer must be rejected even if
        // its low 32 bits happen to match the remaining byte count.
        let mut body = BytesMut::new();
        body.put_u8(5);
        body.put_u64_le(0); // req_id
        body.put_u32_le(1);
        body.put_u64_le((1u64 << 32) + 4);
        body.extend_from_slice(&[9u8; 4]);
        assert!(Message::decode(body.freeze()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        // Ok frame with junk appended.
        assert!(Message::decode(Bytes::from_static(&[6, 1, 2, 3])).is_err());
    }

    #[test]
    fn oversized_frame_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.push(6);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_message(&mut cursor),
            Err(CodecError::Malformed(_))
        ));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_message() -> impl Strategy<Value = Message> {
            prop_oneof![
                (any::<u32>(), any::<u64>(), any::<u32>())
                    .prop_map(|(file, size, disk)| Message::CreateFile { file, size, disk }),
                proptest::collection::vec(any::<u32>(), 0..64)
                    .prop_map(|files| Message::Prefetch { files }),
                proptest::collection::vec((any::<u64>(), any::<u32>()), 0..64)
                    .prop_map(|pattern| Message::Hints { pattern }),
                (
                    any::<u64>(),
                    any::<u32>(),
                    any::<u16>(),
                    any::<u64>(),
                    any::<u8>()
                )
                    .prop_map(
                        |(req_id, file, client_port, deadline_us, priority)| Message::Get {
                            req_id,
                            file,
                            client_port,
                            deadline_us,
                            priority
                        }
                    ),
                (
                    any::<u64>(),
                    any::<u32>(),
                    any::<u16>(),
                    any::<u64>(),
                    any::<u8>()
                )
                    .prop_map(
                        |(req_id, file, client_port, deadline_us, priority)| Message::Put {
                            req_id,
                            file,
                            client_port,
                            deadline_us,
                            priority
                        }
                    ),
                any::<u32>().prop_map(|node| Message::KillNode { node }),
                (any::<u32>(), any::<u32>())
                    .prop_map(|(node, disk)| Message::FailDisk { node, disk }),
                (any::<u32>(), any::<u32>())
                    .prop_map(|(node, disk)| Message::RepairDisk { node, disk }),
                (any::<u32>(), any::<u16>())
                    .prop_map(|(node, port)| Message::ReviveNode { node, port }),
                any::<u32>().prop_map(|node| Message::PartitionLink { node }),
                any::<u32>().prop_map(|node| Message::HealLink { node }),
                (any::<u32>(), any::<u16>())
                    .prop_map(|(node, port)| Message::Register { node, port }),
                (
                    any::<u64>(),
                    any::<u32>(),
                    proptest::collection::vec(any::<u8>(), 0..2048)
                )
                    .prop_map(|(req_id, file, data)| Message::FileData {
                        req_id,
                        file,
                        data: Bytes::from(data)
                    }),
                Just(Message::Ok),
                any::<u16>().prop_map(|code| Message::Err { code }),
                Just(Message::StatsRequest),
                (
                    any::<f64>().prop_filter("finite", |f| f.is_finite()),
                    proptest::collection::vec(any::<u64>(), StatsCounters::U64_FIELDS)
                )
                    .prop_map(|(disk_joules, c)| {
                        let mut fields = [0u64; StatsCounters::U64_FIELDS];
                        fields.copy_from_slice(&c);
                        Message::Stats {
                            counters: StatsCounters::from_u64_fields(disk_joules, fields),
                        }
                    }),
                (any::<u64>(), any::<u8>()).prop_map(|(retry_after_us, level)| Message::Busy {
                    retry_after_us,
                    level
                }),
                (any::<u64>(), any::<u16>(), any::<u8>()).prop_map(|(req_id, code, level)| {
                    Message::Shed {
                        req_id,
                        code,
                        level,
                    }
                }),
                any::<u8>().prop_map(|level| Message::Brownout { level }),
                Just(Message::Shutdown),
            ]
        }

        proptest! {
            /// Every message survives encode -> frame -> decode.
            #[test]
            fn any_message_roundtrips(msg in arb_message()) {
                let framed = msg.encode();
                let back = Message::decode(framed.slice(4..)).expect("decode");
                prop_assert_eq!(msg, back);
            }

            /// Arbitrary byte soup never panics the decoder, and never
            /// produces a frame that re-encodes differently.
            #[test]
            fn fuzz_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                if let Ok(msg) = Message::decode(Bytes::from(bytes)) {
                    let reframed = msg.clone().encode();
                    let again = Message::decode(reframed.slice(4..)).expect("re-decode");
                    prop_assert_eq!(msg, again);
                }
            }

            /// Every prefix of a valid frame body is rejected cleanly —
            /// truncation mid-field must never panic or decode as a
            /// different message.
            #[test]
            fn fuzz_truncated_valid_frames_never_panic(
                msg in arb_message(),
                keep_frac in 0.0f64..1.0,
            ) {
                let body = msg.encode().slice(4..);
                let keep = ((body.len() as f64) * keep_frac) as usize;
                if keep < body.len() {
                    // Only FileData carries an inner length that could make
                    // a prefix self-consistent; everything else must error.
                    let r = Message::decode(body.slice(..keep));
                    if let Ok(decoded) = r {
                        prop_assert!(matches!(decoded, Message::FileData { .. }));
                    }
                }
            }

            /// Flipping one byte of a valid frame body never panics the
            /// decoder (it may still decode, to the same or a sibling
            /// message — only totality is asserted).
            #[test]
            fn fuzz_byte_flips_never_panic(
                msg in arb_message(),
                pos_frac in 0.0f64..1.0,
                flip in 1u8..=255,
            ) {
                let mut bytes = msg.encode().slice(4..).to_vec();
                if !bytes.is_empty() {
                    let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
                    bytes[pos] ^= flip;
                    let _ = Message::decode(Bytes::from(bytes));
                }
            }
        }
    }

    #[test]
    fn filedata_length_mismatch_rejected() {
        let mut body = BytesMut::new();
        body.put_u8(5);
        body.put_u64_le(0); // req_id
        body.put_u32_le(1);
        body.put_u64_le(100); // claims 100 bytes
        body.put_u8(0); // provides 1
        assert!(Message::decode(body.freeze()).is_err());
    }
}
