//! Overload control plane — re-exported from [`eevfs::overload`].
//!
//! The admission gate and brownout ladder are *shared* with the DES
//! driver: the same struct and the same transition rule run in both the
//! threaded prototype and the simulator, which is what lets the
//! simulator predict the prototype's shedding behaviour (same level
//! sequence for the same observation sequence) rather than merely
//! resemble it. This module keeps the runtime-local paths
//! (`crate::admission::...`) stable.

pub use eevfs::overload::{shed_code, AdmissionGate, AdmitError, GateCounters, OverloadOptions};
