//! # eevfs-runtime
//!
//! A running EEVFS prototype: real threads, real loopback TCP, real files
//! on disk — the §IV implementation, as opposed to the `eevfs` crate's
//! deterministic simulation of it.
//!
//! The process flow is the paper's Fig 2:
//!
//! 1. **Init** — the server connects to every storage node over TCP, one
//!    handler thread per node.
//! 2. **Popularity** — derived from the trace log (reusing
//!    `workload::popularity`).
//! 3. **Create + prefetch** — files are created on the nodes
//!    (popularity round-robin, reusing `eevfs::placement`) and the server
//!    instructs nodes to prefetch the top-K into their buffer areas.
//! 4. **Hints** — the server forwards each node its expected pattern
//!    (used by the idle-window power management).
//! 5. **Request** — a client asks the server for a file, quoting a
//!    callback port.
//! 6. **Response** — the owning node connects *to the client* and streams
//!    the file, exactly the paper's push model.
//!
//! ## Power without hardware
//!
//! We cannot spin down laptop/CI disks (nor could we measure wall power),
//! so each node accounts disk power in **virtual time**: a
//! [`clock::VirtualClock`] maps wall-clock seconds to scaled simulated
//! seconds, and every node drives `disk_model::Disk` instances (the same
//! power state machine the simulator uses) from its single-threaded event
//! order. Spin-up penalties are *really slept* (scaled), so response
//! times measurably degrade when a disk must wake — the paper's §VI-C
//! effect, observable in integration tests.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod admission;
pub mod clock;
pub mod cluster;
pub mod loadgen;
pub mod node;
pub mod proto;
pub mod server;
pub mod store;
pub mod transport;

pub use admission::{AdmissionGate, AdmitError, OverloadOptions};
pub use cluster::{ClusterHandle, GetOutcome, ReplayReport, RuntimeConfig};
pub use loadgen::{LoadConfig, LoadReport};
pub use server::{recover_placements, ResilienceOptions, RpcSpan, SpanKind, SpanSink};
