//! Multi-client closed-loop load generator.
//!
//! The historical measurement path (`ClusterHandle::replay`) is a fully
//! open loop: one client issues requests on the trace's schedule no
//! matter how the cluster is doing — the modelling choice behind the
//! documented deviations from the paper's figures. This module is the
//! closed loop: `clients` worker threads each run
//! *request → response → think time → next request*, so offered load is
//! bounded by concurrency and responds to service times exactly like a
//! population of real clients.
//!
//! Each worker owns one server connection and one callback listener
//! (reused across its requests). After sending a `Get` the worker polls
//! **both** the server connection and the listener: the owning node
//! pushes file data to the listener *before* acking the server, so a
//! worker that waited for the ack first could deadlock against a node
//! blocked on a full push socket. Refusals (`Busy`), sheds (`Shed`), and
//! errors arrive on the server connection and terminate the request —
//! the control plane's replies are never retried by the generator, so
//! the client-side tallies line up 1:1 with the server's shed ledger.

use crate::proto::{read_message, write_message, Message};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Closed-loop campaign parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients (each a thread).
    pub clients: usize,
    /// Requests each client issues before stopping.
    pub requests_per_client: usize,
    /// Think time between a response and the client's next request.
    pub think: Duration,
    /// Deadline budget stamped on every request, microseconds (0 = none).
    pub deadline_us: u64,
    /// Files to draw from (uniformly, seeded).
    pub files: u32,
    /// Seed for the per-worker file choice.
    pub seed: u64,
    /// Per-request hard wall-clock timeout (a stuck request is counted as
    /// an error rather than hanging its worker).
    pub request_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 4,
            requests_per_client: 25,
            think: Duration::from_millis(1),
            deadline_us: 0,
            files: 16,
            seed: 7,
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// What one request came back as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqOutcome {
    /// Data served and acked.
    Done,
    /// Refused at admission (`Busy`).
    Busy,
    /// Shed by the control plane (`Shed`).
    Shed,
    /// Error reply, timeout, or transport failure.
    Error,
}

/// Aggregated campaign results (client-side view of the shed ledger).
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent (client-side offered load).
    pub sent: u64,
    /// Requests served with data.
    pub completed: u64,
    /// Requests refused with `Busy`.
    pub busy: u64,
    /// Requests shed by the control plane.
    pub shed: u64,
    /// Requests that errored or timed out.
    pub errors: u64,
    /// Wall-clock latency of each completed request.
    pub latencies: Vec<Duration>,
    /// Campaign wall-clock duration.
    pub elapsed: Duration,
}

impl LoadReport {
    /// The client-side ledger closes exactly:
    /// `sent == completed + busy + shed + errors`.
    pub fn ledger_closes(&self) -> bool {
        self.sent == self.completed + self.busy + self.shed + self.errors
    }

    /// Completed-request latency percentile (`q` in `[0, 1]`), or zero
    /// when nothing completed.
    pub fn percentile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / s
        }
    }
}

/// Per-worker tallies, merged into the [`LoadReport`].
#[derive(Debug, Default)]
struct WorkerTally {
    sent: u64,
    completed: u64,
    busy: u64,
    shed: u64,
    errors: u64,
    latencies: Vec<Duration>,
}

/// Runs a closed-loop campaign against a server and aggregates the
/// worker tallies. Workers that die on a transport error contribute what
/// they measured; their remaining requests are simply never offered, so
/// the client ledger still closes.
pub fn run(server: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for w in 0..cfg.clients {
        let cfg = cfg.clone();
        let handle = std::thread::Builder::new()
            .name(format!("eevfs-loadgen-{w}"))
            .spawn(move || worker(server, &cfg, w as u64));
        if let Ok(h) = handle {
            handles.push(h);
        }
    }
    let mut report = LoadReport::default();
    for h in handles {
        if let Ok(t) = h.join() {
            report.sent += t.sent;
            report.completed += t.completed;
            report.busy += t.busy;
            report.shed += t.shed;
            report.errors += t.errors;
            report.latencies.extend(t.latencies);
        }
    }
    report.elapsed = started.elapsed();
    report
}

/// One closed-loop client: connect, then request → outcome → think,
/// `requests_per_client` times.
fn worker(server: SocketAddr, cfg: &LoadConfig, worker_id: u64) -> WorkerTally {
    let mut tally = WorkerTally::default();
    let Ok(mut conn) = TcpStream::connect(server) else {
        return tally;
    };
    let Ok(listener) = TcpListener::bind("127.0.0.1:0") else {
        return tally;
    };
    if listener.set_nonblocking(true).is_err() {
        return tally;
    }
    let Ok(local) = listener.local_addr() else {
        return tally;
    };
    // Deterministic per-worker file sequence (xorshift64*).
    let mut rng = cfg
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(worker_id)
        | 1;
    for seq in 0..cfg.requests_per_client {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        let file = (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) % u64::from(cfg.files.max(1))) as u32;
        let req_id = (worker_id << 32) | seq as u64;
        // Priorities cycle 0–3 (threshold 2 makes half the traffic
        // sheddable at brownout L2) — mirrored by the simulator.
        let priority = (seq % 4) as u8;
        tally.sent += 1;
        match one_request(
            &mut conn,
            &listener,
            local.port(),
            cfg,
            req_id,
            file,
            priority,
        ) {
            Ok((ReqOutcome::Done, latency)) => {
                tally.completed += 1;
                tally.latencies.push(latency);
            }
            Ok((ReqOutcome::Busy, _)) => tally.busy += 1,
            Ok((ReqOutcome::Shed, _)) => tally.shed += 1,
            Ok((ReqOutcome::Error, _)) => tally.errors += 1,
            // Transport died: count this request and stop the worker.
            Err(_) => {
                tally.errors += 1;
                break;
            }
        }
        if !cfg.think.is_zero() {
            std::thread::sleep(cfg.think);
        }
    }
    tally
}

/// Issues one `Get` and drives it to an outcome, polling the server
/// connection and the callback listener together.
fn one_request(
    conn: &mut TcpStream,
    listener: &TcpListener,
    port: u16,
    cfg: &LoadConfig,
    req_id: u64,
    file: u32,
    priority: u8,
) -> io::Result<(ReqOutcome, Duration)> {
    write_message(
        conn,
        &Message::Get {
            req_id,
            file,
            client_port: port,
            deadline_us: cfg.deadline_us,
            priority,
        },
    )
    .map_err(|e| io::Error::other(e.to_string()))?;
    let started = Instant::now();
    let mut acked = false;
    let mut latency = None;
    loop {
        if started.elapsed() > cfg.request_timeout {
            return Ok((ReqOutcome::Error, Duration::ZERO));
        }
        // The node pushes data before acking the server, so the listener
        // is polled first and read eagerly — never behind the ack.
        if latency.is_none() {
            match listener.accept() {
                Ok((mut push, _)) => {
                    push.set_nonblocking(false)?;
                    match read_message(&mut push) {
                        Ok(Message::FileData {
                            req_id: got_id,
                            file: got,
                            ..
                        }) if got_id == req_id && got == file => {
                            latency = Some(started.elapsed());
                        }
                        _ => return Ok((ReqOutcome::Error, Duration::ZERO)),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(e),
            }
        }
        if let (Some(lat), true) = (latency, acked) {
            return Ok((ReqOutcome::Done, lat));
        }
        match poll_server(conn, Duration::from_millis(1))? {
            Some(Message::Ok) => acked = true,
            Some(Message::Busy { .. }) => return Ok((ReqOutcome::Busy, Duration::ZERO)),
            Some(Message::Shed { .. }) => return Ok((ReqOutcome::Shed, Duration::ZERO)),
            Some(Message::Err { .. }) | Some(_) => return Ok((ReqOutcome::Error, Duration::ZERO)),
            None => {}
        }
    }
}

/// Timed single-frame read on the server connection: `Ok(None)` when
/// nothing arrived in time. A timed 1-byte peek followed by a blocking
/// frame read, so a timeout can never strand a half-read frame.
fn poll_server(conn: &mut TcpStream, timeout: Duration) -> io::Result<Option<Message>> {
    conn.set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
    let mut probe = [0u8; 1];
    let ready = match conn.peek(&mut probe) {
        Ok(0) => {
            let _ = conn.set_read_timeout(None);
            return Err(io::Error::other("server connection closed"));
        }
        Ok(_) => true,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            false
        }
        Err(e) => {
            let _ = conn.set_read_timeout(None);
            return Err(e);
        }
    };
    conn.set_read_timeout(None)?;
    if ready {
        read_message(conn)
            .map(Some)
            .map_err(|e| io::Error::other(e.to_string()))
    } else {
        Ok(None)
    }
}
