//! Virtual time for power accounting.
//!
//! Maps wall-clock time since an epoch onto simulated time at a
//! configurable acceleration, so a 2-second disk spin-up costs 2 *virtual*
//! seconds of spin-up energy but only `2 / scale` wall seconds of test
//! time. A scale of 1.0 runs in real time.

use sim_core::{SimDuration, SimTime};
use std::time::{Duration, Instant};

/// A shared, monotone virtual clock.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    epoch: Instant,
    scale: f64,
}

impl VirtualClock {
    /// Starts the clock now. `scale` > 0 is how many virtual seconds pass
    /// per wall second.
    pub fn start(scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "bad clock scale {scale}");
        VirtualClock {
            epoch: Instant::now(),
            scale,
        }
    }

    /// The acceleration factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        let wall = self.epoch.elapsed().as_secs_f64();
        SimTime::from_micros((wall * self.scale * 1e6) as u64)
    }

    /// Wall-clock duration corresponding to a virtual duration.
    pub fn to_wall(&self, d: SimDuration) -> Duration {
        Duration::from_secs_f64(d.as_secs_f64() / self.scale)
    }

    /// Sleeps the calling thread for the wall equivalent of a virtual
    /// duration (how the node "pays" a spin-up).
    pub fn sleep_virtual(&self, d: SimDuration) {
        std::thread::sleep(self.to_wall(d));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_scaled() {
        let c = VirtualClock::start(1000.0);
        let a = c.now();
        std::thread::sleep(Duration::from_millis(5));
        let b = c.now();
        let virt = (b - a).as_secs_f64();
        // 5 ms wall at 1000x is ~5 virtual seconds; allow generous jitter.
        assert!(virt > 3.0 && virt < 60.0, "virtual elapsed {virt}");
    }

    #[test]
    fn to_wall_inverts_scale() {
        let c = VirtualClock::start(100.0);
        let wall = c.to_wall(SimDuration::from_secs(10));
        assert!((wall.as_secs_f64() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn monotone() {
        let c = VirtualClock::start(50.0);
        let mut last = c.now();
        for _ in 0..100 {
            let t = c.now();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "bad clock scale")]
    fn rejects_zero_scale() {
        let _ = VirtualClock::start(0.0);
    }
}
