//! Fault-injecting transport for the server→node control links.
//!
//! [`FaultyTransport`] wraps one node's control [`TcpStream`] and routes
//! every request-path send through a [`fault_model::NetFaultInjector`]
//! decision:
//!
//! * **Deliver** — write the frame as usual.
//! * **Delay** — sleep the injected spike (wall-interpreted, capped) and
//!   then write; the response is late exactly like a congested link.
//! * **Drop** — *never write the frame*. The caller sees the same thing a
//!   lost packet produces: silence, surfaced as an immediate per-try
//!   timeout. Because nothing was written, the node owes no reply and the
//!   connection needs no draining.
//! * **Reset** — never write; surface a synthetic connection reset.
//!
//! Setup and admin traffic bypasses the injector via
//! [`FaultyTransport::send_raw`] (a fault plan that could starve setup
//! would deadlock the cluster boot, and the paper's experiments only
//! perturb the request path).
//!
//! The wrapper also keeps the **pending-reply ledger** hedged reads need:
//! when a racing request loses, its reply is still owed on this
//! connection and must be consumed before the next exchange —
//! [`FaultyTransport::drain_pending`] does that.

use crate::proto::{read_message, write_message, CodecError, Message};
use fault_model::{LinkDecision, NetFaultInjector};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on any single injected delay sleep, so a heavy-tailed
/// exponential draw cannot stall a test run.
const MAX_DELAY_SLEEP: Duration = Duration::from_secs(2);

/// What happened to a fault-gated send.
#[derive(Debug)]
pub enum SendError {
    /// The injector dropped the frame; nothing was written.
    Dropped,
    /// The injector reset the connection; nothing was written.
    Reset,
    /// The underlying write failed (the node is really gone).
    Io(CodecError),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Dropped => write!(f, "frame dropped by fault injection"),
            SendError::Reset => write!(f, "connection reset by fault injection"),
            SendError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for SendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SendError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// One node's control connection, with fault injection on the send path.
pub struct FaultyTransport {
    conn: TcpStream,
    /// Link index this connection represents in the injector.
    link: usize,
    /// Replies owed on this connection by abandoned (hedge-losing)
    /// requests, to be drained before the next exchange.
    pending: u32,
}

impl FaultyTransport {
    /// Wraps an established node connection as link `link`.
    pub fn new(conn: TcpStream, link: usize) -> FaultyTransport {
        FaultyTransport {
            conn,
            link,
            pending: 0,
        }
    }

    /// Replaces the underlying connection (node revival). Owed replies
    /// died with the old socket.
    pub fn reconnect(&mut self, conn: TcpStream) {
        self.conn = conn;
        self.pending = 0;
    }

    /// Sends one request-path frame, consulting the injector.
    ///
    /// `delay_cap` additionally bounds injected delay sleeps (use the
    /// policy's per-try timeout); `MAX_DELAY_SLEEP` always applies.
    pub fn send(
        &mut self,
        injector: &mut NetFaultInjector,
        msg: &Message,
        delay_cap: Duration,
    ) -> Result<(), SendError> {
        match injector.decide(self.link) {
            LinkDecision::Drop => Err(SendError::Dropped),
            LinkDecision::Reset => Err(SendError::Reset),
            LinkDecision::Delay(spike) => {
                let wall = Duration::from_micros(spike.as_micros())
                    .min(delay_cap)
                    .min(MAX_DELAY_SLEEP);
                std::thread::sleep(wall);
                write_message(&mut self.conn, msg).map_err(SendError::Io)
            }
            LinkDecision::Deliver => write_message(&mut self.conn, msg).map_err(SendError::Io),
        }
    }

    /// Sends bypassing the injector (setup, stats, admin, shutdown).
    pub fn send_raw(&mut self, msg: &Message) -> Result<(), CodecError> {
        write_message(&mut self.conn, msg)
    }

    /// Blocking receive of the next reply (drains owed replies first).
    pub fn recv(&mut self) -> Result<Message, CodecError> {
        self.drain_pending()?;
        read_message(&mut self.conn)
    }

    /// Receives with a timeout: `Ok(None)` when nothing arrived in time.
    ///
    /// Implemented as a timed 1-byte peek followed by a blocking frame
    /// read, so a timeout can never strand a half-read frame on the
    /// stream.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, CodecError> {
        self.drain_pending()?;
        // Zero-duration read timeouts mean "no timeout" to the OS; clamp.
        self.conn
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let mut probe = [0u8; 1];
        let ready = match self.conn.peek(&mut probe) {
            Ok(n) => n > 0,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                false
            }
            Err(e) => {
                let _ = self.conn.set_read_timeout(None);
                return Err(CodecError::Io(e));
            }
        };
        self.conn.set_read_timeout(None)?;
        if ready {
            read_message(&mut self.conn).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Records that one reply is owed on this connection (a hedge loser's
    /// answer that nobody waited for).
    pub fn abandon_reply(&mut self) {
        self.pending += 1;
    }

    /// Consumes owed replies so the next exchange pairs up correctly.
    pub fn drain_pending(&mut self) -> Result<(), CodecError> {
        while self.pending > 0 {
            read_message(&mut self.conn)?;
            self.pending -= 1;
        }
        Ok(())
    }
}

// The tests return `Result` and propagate failures with `?` instead of
// unwrap/expect, keeping the crate-level `clippy::unwrap_used` gate clean
// without an allow on this module.
#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::{LinkFaultProfile, NetFaultPlan};
    use std::net::TcpListener;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn pair() -> io::Result<(TcpStream, TcpStream)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let a = TcpStream::connect(addr)?;
        let (b, _) = listener.accept()?;
        Ok((a, b))
    }

    fn perfect(links: usize) -> NetFaultInjector {
        NetFaultInjector::new(LinkFaultProfile::none(), NetFaultPlan::none(), links)
    }

    /// Unwraps `recv_timeout`'s inner option, turning "no frame arrived"
    /// into a typed error instead of a panic.
    fn must_arrive(got: Option<Message>) -> Result<Message, CodecError> {
        got.ok_or(CodecError::Unexpected {
            expected: "a frame before the timeout",
            got: "silence",
        })
    }

    #[test]
    fn deliver_roundtrips() -> TestResult {
        let (client, mut server) = pair()?;
        let mut t = FaultyTransport::new(client, 0);
        let mut inj = perfect(1);
        t.send(&mut inj, &Message::Ok, Duration::from_secs(1))?;
        assert_eq!(read_message(&mut server)?, Message::Ok);
        write_message(&mut server, &Message::Ok)?;
        assert_eq!(t.recv()?, Message::Ok);
        Ok(())
    }

    #[test]
    fn partitioned_link_drops_without_writing() -> TestResult {
        let (client, mut server) = pair()?;
        let mut t = FaultyTransport::new(client, 0);
        let mut inj = perfect(1);
        inj.set_link(0, false);
        assert!(matches!(
            t.send(&mut inj, &Message::Ok, Duration::from_secs(1)),
            Err(SendError::Dropped)
        ));
        // Nothing reached the peer: a heal and resend pairs up cleanly.
        inj.set_link(0, true);
        t.send(&mut inj, &Message::StatsRequest, Duration::from_secs(1))?;
        assert_eq!(read_message(&mut server)?, Message::StatsRequest);
        Ok(())
    }

    #[test]
    fn recv_timeout_returns_none_then_the_frame() -> TestResult {
        let (client, mut server) = pair()?;
        let mut t = FaultyTransport::new(client, 0);
        assert!(t.recv_timeout(Duration::from_millis(10))?.is_none());
        write_message(&mut server, &Message::Err { code: 7 })?;
        let got = must_arrive(t.recv_timeout(Duration::from_millis(500))?)?;
        assert_eq!(got, Message::Err { code: 7 });
        Ok(())
    }

    #[test]
    fn abandoned_replies_are_drained_before_the_next_exchange() -> TestResult {
        let (client, mut server) = pair()?;
        let mut t = FaultyTransport::new(client, 0);
        // Two stale replies sit on the wire (a lost hedge race).
        write_message(&mut server, &Message::Ok)?;
        write_message(&mut server, &Message::Ok)?;
        t.abandon_reply();
        t.abandon_reply();
        // The real answer follows; recv must skip the stale ones.
        write_message(&mut server, &Message::Err { code: 9 })?;
        assert_eq!(t.recv()?, Message::Err { code: 9 });
        Ok(())
    }
}
