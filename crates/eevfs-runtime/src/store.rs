//! Node-local file store.
//!
//! One directory per node, with one subdirectory per data disk plus a
//! `buffer/` area — the runtime analogue of the storage node's drives.
//! File contents are deterministic (a cheap xorshift pattern keyed by the
//! file id) so integrity can be verified end-to-end after travelling the
//! whole request path.
//!
//! Every data-disk file carries a CRC32 sidecar (`f????????.crc`) written
//! on creation and on every overwrite; [`FileStore::read_data`] verifies
//! it and reports a mismatch as [`io::ErrorKind::InvalidData`], the
//! signal the node daemon counts as a detected corruption and the server
//! turns into replica failover. Buffer-area copies are not checksummed —
//! the buffer disk is the always-on, trusted device in EEVFS, and its
//! contents are re-derivable from the data disks.

use disk_model::checksum::crc32;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Deterministic file contents for file `id` of length `size`.
///
/// Every byte is a function of `(id, offset)`, so a flipped block anywhere
/// in the pipeline fails verification.
pub fn file_pattern(id: u32, size: u64) -> Vec<u8> {
    let mut state = (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut out = Vec::with_capacity(size as usize);
    while (out.len() as u64) < size {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let word = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        for b in word.to_le_bytes() {
            if (out.len() as u64) == size {
                break;
            }
            out.push(b);
        }
    }
    out
}

/// Verifies contents against [`file_pattern`].
pub fn verify_pattern(id: u32, data: &[u8]) -> bool {
    file_pattern(id, data.len() as u64) == data
}

/// Storage layout of one node.
#[derive(Debug)]
pub struct FileStore {
    root: PathBuf,
    data_disks: usize,
}

impl FileStore {
    /// Creates (or reuses) the node directory with `data_disks` disk
    /// subdirectories and a buffer area.
    pub fn create(root: impl Into<PathBuf>, data_disks: usize) -> io::Result<FileStore> {
        assert!(data_disks > 0, "a node needs at least one data disk");
        let root = root.into();
        for d in 0..data_disks {
            fs::create_dir_all(root.join(format!("disk{d}")))?;
        }
        fs::create_dir_all(root.join("buffer"))?;
        Ok(FileStore { root, data_disks })
    }

    /// Number of data disks.
    pub fn data_disks(&self) -> usize {
        self.data_disks
    }

    /// Node root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn data_path(&self, disk: usize, file: u32) -> PathBuf {
        self.root
            .join(format!("disk{disk}"))
            .join(format!("f{file:08}"))
    }

    fn crc_path(&self, disk: usize, file: u32) -> PathBuf {
        self.root
            .join(format!("disk{disk}"))
            .join(format!("f{file:08}.crc"))
    }

    fn buffer_path(&self, file: u32) -> PathBuf {
        self.root.join("buffer").join(format!("f{file:08}"))
    }

    fn write_crc(&self, disk: usize, file: u32, data: &[u8]) -> io::Result<()> {
        fs::write(self.crc_path(disk, file), crc32(data).to_le_bytes())
    }

    /// Creates a file with deterministic contents on a data disk.
    pub fn create_file(&self, disk: usize, file: u32, size: u64) -> io::Result<()> {
        assert!(disk < self.data_disks, "disk {disk} out of range");
        let data = file_pattern(file, size);
        let mut f = fs::File::create(self.data_path(disk, file))?;
        f.write_all(&data)?;
        self.write_crc(disk, file, &data)
    }

    /// Reads a file from a data disk, verifying it against its CRC32
    /// sidecar. A mismatch (or a missing/short sidecar) comes back as
    /// [`io::ErrorKind::InvalidData`] so callers can distinguish silent
    /// corruption from the file simply not being there.
    pub fn read_data(&self, disk: usize, file: u32) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        fs::File::open(self.data_path(disk, file))?.read_to_end(&mut buf)?;
        let sidecar = fs::read(self.crc_path(disk, file))
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "checksum sidecar missing"))?;
        let stored: [u8; 4] = sidecar
            .as_slice()
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "checksum sidecar damaged"))?;
        if crc32(&buf) != u32::from_le_bytes(stored) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checksum mismatch on disk{disk}/f{file:08}"),
            ));
        }
        Ok(buf)
    }

    /// Fault injection: flips one byte of a data-disk file **without**
    /// touching its checksum sidecar — the on-platter bit rot the
    /// integrity layer exists to catch.
    pub fn corrupt_data(&self, disk: usize, file: u32, offset: u64) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.data_path(disk, file))?;
        let mut byte = [0u8; 1];
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(&mut byte)?;
        byte[0] ^= 0xFF;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(&byte)
    }

    /// Copies a file from a data disk into the buffer area (prefetch).
    /// Goes through [`FileStore::read_data`], so a corrupt source block
    /// is detected rather than silently promoted into the buffer every
    /// future read would then hit.
    pub fn prefetch(&self, disk: usize, file: u32) -> io::Result<u64> {
        let data = self.read_data(disk, file)?;
        let mut f = fs::File::create(self.buffer_path(file))?;
        f.write_all(&data)?;
        Ok(data.len() as u64)
    }

    /// Writes client-supplied data into the buffer area (write buffering).
    pub fn write_buffer_file(&self, file: u32, data: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(self.buffer_path(file))?;
        f.write_all(data)?;
        Ok(())
    }

    /// Overwrites a file on a data disk with client-supplied data.
    pub fn write_data(&self, disk: usize, file: u32, data: &[u8]) -> io::Result<()> {
        assert!(disk < self.data_disks, "disk {disk} out of range");
        let mut f = fs::File::create(self.data_path(disk, file))?;
        f.write_all(data)?;
        self.write_crc(disk, file, data)
    }

    /// Reads a file from the buffer area.
    pub fn read_buffer(&self, file: u32) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        fs::File::open(self.buffer_path(file))?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    /// True when the buffer area holds the file.
    pub fn in_buffer(&self, file: u32) -> bool {
        self.buffer_path(file).exists()
    }

    /// Size of a file on a data disk, if present.
    pub fn data_size(&self, disk: usize, file: u32) -> Option<u64> {
        fs::metadata(self.data_path(disk, file))
            .ok()
            .map(|m| m.len())
    }
}

// The tests return `io::Result` and propagate failures with `?` instead
// of unwrap/expect, keeping the crate-level `clippy::unwrap_used` gate
// clean without an allow on this module.
#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eevfs-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Asserts an operation failed with [`io::ErrorKind::InvalidData`],
    /// surfacing anything else as the test's own typed error.
    fn expect_invalid<T>(r: io::Result<T>, what: &str) -> io::Result<()> {
        match r {
            Ok(_) => Err(io::Error::other(format!("{what}: expected InvalidData"))),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => Ok(()),
            Err(e) => Err(io::Error::other(format!(
                "{what}: expected InvalidData, got {e}"
            ))),
        }
    }

    #[test]
    fn pattern_is_deterministic_and_id_sensitive() {
        assert_eq!(file_pattern(1, 100), file_pattern(1, 100));
        assert_ne!(file_pattern(1, 100), file_pattern(2, 100));
        assert!(verify_pattern(1, &file_pattern(1, 1000)));
        let mut corrupted = file_pattern(1, 1000);
        corrupted[500] ^= 0xFF;
        assert!(!verify_pattern(1, &corrupted));
    }

    #[test]
    fn pattern_lengths_exact() {
        for len in [0u64, 1, 7, 8, 9, 1000] {
            assert_eq!(file_pattern(3, len).len() as u64, len);
        }
    }

    #[test]
    fn create_read_roundtrip() -> io::Result<()> {
        let store = FileStore::create(tmp(), 2)?;
        store.create_file(1, 42, 4096)?;
        let data = store.read_data(1, 42)?;
        assert_eq!(data.len(), 4096);
        assert!(verify_pattern(42, &data));
        assert_eq!(store.data_size(1, 42), Some(4096));
        assert_eq!(store.data_size(0, 42), None);
        let _ = fs::remove_dir_all(store.root());
        Ok(())
    }

    #[test]
    fn prefetch_copies_into_buffer() -> io::Result<()> {
        let store = FileStore::create(tmp(), 1)?;
        store.create_file(0, 7, 1024)?;
        assert!(!store.in_buffer(7));
        let copied = store.prefetch(0, 7)?;
        assert_eq!(copied, 1024);
        assert!(store.in_buffer(7));
        let data = store.read_buffer(7)?;
        assert!(verify_pattern(7, &data));
        let _ = fs::remove_dir_all(store.root());
        Ok(())
    }

    #[test]
    fn client_writes_roundtrip() -> io::Result<()> {
        let store = FileStore::create(tmp(), 1)?;
        store.create_file(0, 3, 64)?;
        let payload = vec![0xABu8; 64];
        store.write_buffer_file(3, &payload)?;
        assert_eq!(store.read_buffer(3)?, payload);
        store.write_data(0, 3, &payload)?;
        assert_eq!(store.read_data(0, 3)?, payload);
        let _ = fs::remove_dir_all(store.root());
        Ok(())
    }

    #[test]
    fn corruption_is_detected_on_read() -> io::Result<()> {
        let store = FileStore::create(tmp(), 1)?;
        store.create_file(0, 5, 2048)?;
        assert!(store.read_data(0, 5).is_ok());
        store.corrupt_data(0, 5, 1024)?;
        expect_invalid(store.read_data(0, 5), "read of corrupt file")?;
        // Prefetch of the corrupt file is refused too, so the damage is
        // never promoted into the buffer area.
        expect_invalid(store.prefetch(0, 5), "prefetch of corrupt file")?;
        assert!(!store.in_buffer(5));
        // An overwrite refreshes the sidecar and clears the condition.
        let payload = file_pattern(5, 2048);
        store.write_data(0, 5, &payload)?;
        assert_eq!(store.read_data(0, 5)?, payload);
        let _ = fs::remove_dir_all(store.root());
        Ok(())
    }

    #[test]
    fn missing_sidecar_is_invalid_data() -> io::Result<()> {
        let store = FileStore::create(tmp(), 1)?;
        store.create_file(0, 6, 128)?;
        fs::remove_file(store.crc_path(0, 6))?;
        expect_invalid(store.read_data(0, 6), "read without sidecar")?;
        let _ = fs::remove_dir_all(store.root());
        Ok(())
    }

    #[test]
    fn missing_file_is_io_error() -> io::Result<()> {
        let store = FileStore::create(tmp(), 1)?;
        assert!(store.read_data(0, 999).is_err());
        assert!(store.read_buffer(999).is_err());
        let _ = fs::remove_dir_all(store.root());
        Ok(())
    }
}
