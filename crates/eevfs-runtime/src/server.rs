//! Storage-server daemon.
//!
//! The thin metadata tier of the prototype (§III-A): it owns the
//! file → node map, performs the popularity round-robin placement during
//! setup (steps 1–4 of the process flow), and at run time resolves each
//! client request and forwards it to the owning node (step 5). It never
//! touches file data — responses flow node → client directly.

use crate::proto::{read_message, write_message, CodecError, Message};
use eevfs::config::PlacementPolicy;
use eevfs::placement::place;
use sim_core::SimTime;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use workload::popularity::PopularityTable;
use workload::record::Trace;

/// Aggregated node statistics. Cumulative from cluster boot; subtract two
/// snapshots to measure a window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterStats {
    /// Total disk joules across all nodes (virtual time).
    pub disk_joules: f64,
    /// Spin-ups across all data disks.
    pub spin_ups: u64,
    /// Spin-downs across all data disks.
    pub spin_downs: u64,
    /// Buffer hits.
    pub hits: u64,
    /// Buffer misses.
    pub misses: u64,
}

impl std::ops::Sub for ClusterStats {
    type Output = ClusterStats;
    fn sub(self, earlier: ClusterStats) -> ClusterStats {
        ClusterStats {
            disk_joules: self.disk_joules - earlier.disk_joules,
            spin_ups: self.spin_ups - earlier.spin_ups,
            spin_downs: self.spin_downs - earlier.spin_downs,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

struct ServerState {
    node_conns: Vec<TcpStream>,
    node_of_file: HashMap<u32, usize>,
}

impl ServerState {
    fn rpc(&mut self, node: usize, msg: &Message) -> Result<Message, CodecError> {
        let conn = &mut self.node_conns[node];
        write_message(conn, msg)?;
        read_message(conn)
    }

    /// Steps 1-4: placement, creation, prefetch, hints.
    fn setup(&mut self, trace: &Trace, prefetch_k: u32, disks_per_node: &[usize]) -> Result<(), CodecError> {
        let popularity = PopularityTable::from_trace(trace);
        let plan = place(PlacementPolicy::PopularityRoundRobin, &popularity, disks_per_node);

        // Step 3a: create every file on its node, popularity order (the
        // node-local disk round-robin is encoded in the plan).
        for node in 0..disks_per_node.len() {
            for &file in plan.files_on(node) {
                let size = trace.file_sizes[file.index()];
                let disk = plan.disk_of_file[file.index()];
                self.node_of_file.insert(file.0, node);
                match self.rpc(
                    node,
                    &Message::CreateFile {
                        file: file.0,
                        size,
                        disk,
                    },
                )? {
                    Message::Ok => {}
                    other => {
                        return Err(CodecError::Malformed(match other {
                            Message::Err { .. } => "node failed to create file",
                            _ => "unexpected reply to CreateFile",
                        }))
                    }
                }
            }
        }

        // Step 3b: prefetch the global top-K, grouped by owner.
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); disks_per_node.len()];
        for &file in popularity.top_k(prefetch_k as usize) {
            per_node[plan.node_of_file[file.index()] as usize].push(file.0);
        }
        let prefetched: Vec<Vec<u32>> = per_node.clone();
        for (node, files) in per_node.into_iter().enumerate() {
            if files.is_empty() {
                continue;
            }
            match self.rpc(node, &Message::Prefetch { files })? {
                Message::Ok => {}
                _ => return Err(CodecError::Malformed("node failed to prefetch")),
            }
        }

        // Step 4: forward each node its expected *physical* pattern.
        let mut patterns: Vec<Vec<(u64, u32)>> = vec![Vec::new(); disks_per_node.len()];
        for r in &trace.records {
            let node = plan.node_of_file[r.file.index()] as usize;
            if !prefetched[node].contains(&r.file.0) {
                patterns[node].push((r.at.as_micros(), r.file.0));
            }
        }
        for (node, pattern) in patterns.into_iter().enumerate() {
            match self.rpc(node, &Message::Hints { pattern })? {
                Message::Ok => {}
                _ => return Err(CodecError::Malformed("node rejected hints")),
            }
        }
        Ok(())
    }

    /// Step 5: resolve and forward one client request (read or write).
    fn route(&mut self, msg: Message) -> Result<Message, CodecError> {
        let file = match &msg {
            Message::Get { file, .. } | Message::Put { file, .. } => *file,
            _ => return Ok(Message::Err { code: 3 }),
        };
        match self.node_of_file.get(&file).copied() {
            Some(node) => self.rpc(node, &msg),
            None => Ok(Message::Err { code: 1 }),
        }
    }

    fn collect_stats(&mut self) -> Result<ClusterStats, CodecError> {
        let mut total = ClusterStats::default();
        for node in 0..self.node_conns.len() {
            match self.rpc(node, &Message::StatsRequest)? {
                Message::Stats {
                    disk_joules,
                    spin_ups,
                    spin_downs,
                    hits,
                    misses,
                } => {
                    total.disk_joules += disk_joules;
                    total.spin_ups += spin_ups;
                    total.spin_downs += spin_downs;
                    total.hits += hits;
                    total.misses += misses;
                }
                _ => return Err(CodecError::Malformed("unexpected reply to StatsRequest")),
            }
        }
        Ok(total)
    }

    fn shutdown_nodes(&mut self) {
        for node in 0..self.node_conns.len() {
            let _ = self.rpc(node, &Message::Shutdown);
        }
    }
}

/// A running server daemon.
pub struct ServerDaemon {
    /// Address clients talk to.
    pub addr: SocketAddr,
    handle: JoinHandle<()>,
}

impl ServerDaemon {
    /// Connects to the nodes (step 1), performs setup (steps 2–4), then
    /// serves client requests until it receives `Shutdown` from a client.
    pub fn spawn(
        node_addrs: &[SocketAddr],
        disks_per_node: Vec<usize>,
        trace: &Trace,
        prefetch_k: u32,
    ) -> std::io::Result<ServerDaemon> {
        let mut conns = Vec::with_capacity(node_addrs.len());
        for addr in node_addrs {
            conns.push(TcpStream::connect(addr)?);
        }
        let mut state = ServerState {
            node_conns: conns,
            node_of_file: HashMap::new(),
        };
        state
            .setup(trace, prefetch_k, &disks_per_node)
            .map_err(|e| std::io::Error::other(format!("setup failed: {e}")))?;

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("eevfs-server".into())
            .spawn(move || {
                'outer: for stream in listener.incoming() {
                    let Ok(mut stream) = stream else { continue };
                    loop {
                        let msg = match read_message(&mut stream) {
                            Ok(m) => m,
                            Err(_) => break,
                        };
                        let reply = match msg {
                            msg @ (Message::Get { .. } | Message::Put { .. }) => {
                                state.route(msg).unwrap_or(Message::Err { code: 2 })
                            }
                            Message::StatsRequest => match state.collect_stats() {
                                Ok(s) => Message::Stats {
                                    disk_joules: s.disk_joules,
                                    spin_ups: s.spin_ups,
                                    spin_downs: s.spin_downs,
                                    hits: s.hits,
                                    misses: s.misses,
                                },
                                Err(_) => Message::Err { code: 2 },
                            },
                            Message::KillNode { node } => {
                                let n = node as usize;
                                if n < state.node_conns.len() {
                                    // Best effort: the node acks Shutdown
                                    // and its thread exits.
                                    let _ = state.rpc(n, &Message::Shutdown);
                                    Message::Ok
                                } else {
                                    Message::Err { code: 3 }
                                }
                            }
                            Message::Shutdown => {
                                state.shutdown_nodes();
                                let _ = write_message(&mut stream, &Message::Shutdown);
                                break 'outer;
                            }
                            _ => Message::Err { code: 3 },
                        };
                        if write_message(&mut stream, &reply).is_err() {
                            break;
                        }
                    }
                }
            })?;
        Ok(ServerDaemon { addr, handle })
    }

    /// Waits for the server thread to exit.
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

/// Splits a trace record time into the form hints carry.
pub fn hint_time(t: SimTime) -> u64 {
    t.as_micros()
}
