//! Storage-server daemon.
//!
//! The thin metadata tier of the prototype (§III-A): it owns the
//! file → node map, performs the popularity round-robin placement during
//! setup (steps 1–4 of the process flow), and at run time resolves each
//! client request and forwards it to the owning node (step 5). It never
//! touches file data — responses flow node → client directly.

use crate::proto::{read_message, write_message, CodecError, Message};
use eevfs::config::PlacementPolicy;
use eevfs::placement::place;
use eevfs::replication::replicate;
use sim_core::SimTime;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use workload::popularity::PopularityTable;
use workload::record::{FileId, Trace};

/// Aggregated node statistics. Cumulative from cluster boot; subtract two
/// snapshots to measure a window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterStats {
    /// Total disk joules across all nodes (virtual time).
    pub disk_joules: f64,
    /// Spin-ups across all data disks.
    pub spin_ups: u64,
    /// Spin-downs across all data disks.
    pub spin_downs: u64,
    /// Buffer hits.
    pub hits: u64,
    /// Buffer misses.
    pub misses: u64,
    /// Requests the server redirected to a non-primary replica.
    pub failovers: u64,
}

impl std::ops::Sub for ClusterStats {
    type Output = ClusterStats;
    fn sub(self, earlier: ClusterStats) -> ClusterStats {
        // Saturating: a node that died between snapshots takes its
        // counters with it, so the later total can dip below the earlier.
        ClusterStats {
            disk_joules: self.disk_joules - earlier.disk_joules,
            spin_ups: self.spin_ups.saturating_sub(earlier.spin_ups),
            spin_downs: self.spin_downs.saturating_sub(earlier.spin_downs),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            failovers: self.failovers.saturating_sub(earlier.failovers),
        }
    }
}

struct ServerState {
    node_conns: Vec<TcpStream>,
    /// Routing availability. A node is marked down by `KillNode` or by a
    /// transport failure mid-request, and up again by `ReviveNode`.
    node_up: Vec<bool>,
    /// All copies of each file, `(node, disk)`, primary first.
    copies_of_file: HashMap<u32, Vec<(usize, u32)>>,
    /// Reads served by a non-primary copy.
    failovers: u64,
    /// Per-node setup replay logs, so a revived node can be rebuilt:
    /// `CreateFile` arguments, prefetched files, and the hint pattern.
    create_log: Vec<Vec<(u32, u64, u32)>>,
    prefetch_log: Vec<Vec<u32>>,
    hints_log: Vec<Vec<(u64, u32)>>,
}

impl ServerState {
    fn rpc(&mut self, node: usize, msg: &Message) -> Result<Message, CodecError> {
        let conn = &mut self.node_conns[node];
        write_message(conn, msg)?;
        read_message(conn)
    }

    /// Steps 1-4: placement, creation (all `replication` copies),
    /// prefetch, hints.
    fn setup(
        &mut self,
        trace: &Trace,
        prefetch_k: u32,
        disks_per_node: &[usize],
        replication: usize,
    ) -> Result<(), CodecError> {
        let popularity = PopularityTable::from_trace(trace);
        let plan = place(
            PlacementPolicy::PopularityRoundRobin,
            &popularity,
            disks_per_node,
        );
        let replicas = replicate(&plan, replication.max(1), disks_per_node);

        // Step 3a: create every copy. Primaries go first in popularity
        // order (the node-local disk round-robin is encoded in the plan),
        // then backup copies. Everything lands in the replay log so a
        // revived node can be rebuilt.
        for node in 0..disks_per_node.len() {
            for &file in plan.files_on(node) {
                let size = trace.file_sizes[file.index()];
                let disk = plan.disk_of_file[file.index()];
                self.create_log[node].push((file.0, size, disk));
            }
        }
        for f in 0..replicas.file_count() {
            let copies = replicas.of(FileId(f as u32));
            self.copies_of_file.insert(
                f as u32,
                copies.iter().map(|&(n, d)| (n as usize, d)).collect(),
            );
            for &(node, disk) in &copies[1..] {
                self.create_log[node as usize].push((f as u32, trace.file_sizes[f], disk));
            }
        }
        for node in 0..disks_per_node.len() {
            for &(file, size, disk) in &self.create_log[node].clone() {
                match self.rpc(node, &Message::CreateFile { file, size, disk })? {
                    Message::Ok => {}
                    other => {
                        return Err(CodecError::Malformed(match other {
                            Message::Err { .. } => "node failed to create file",
                            _ => "unexpected reply to CreateFile",
                        }))
                    }
                }
            }
        }

        // Step 3b: prefetch the global top-K on each file's primary.
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); disks_per_node.len()];
        for &file in popularity.top_k(prefetch_k as usize) {
            per_node[plan.node_of_file[file.index()] as usize].push(file.0);
        }
        self.prefetch_log = per_node.clone();
        for (node, files) in per_node.into_iter().enumerate() {
            if files.is_empty() {
                continue;
            }
            match self.rpc(node, &Message::Prefetch { files })? {
                Message::Ok => {}
                _ => return Err(CodecError::Malformed("node failed to prefetch")),
            }
        }

        // Step 4: forward each node its expected *physical* pattern.
        let mut patterns: Vec<Vec<(u64, u32)>> = vec![Vec::new(); disks_per_node.len()];
        for r in &trace.records {
            let node = plan.node_of_file[r.file.index()] as usize;
            if !self.prefetch_log[node].contains(&r.file.0) {
                patterns[node].push((r.at.as_micros(), r.file.0));
            }
        }
        self.hints_log = patterns.clone();
        for (node, pattern) in patterns.into_iter().enumerate() {
            match self.rpc(node, &Message::Hints { pattern })? {
                Message::Ok => {}
                _ => return Err(CodecError::Malformed("node rejected hints")),
            }
        }
        Ok(())
    }

    /// Step 5: resolve and forward one client request (read or write),
    /// failing a read over to the next replica when a copy's node is down
    /// (routing state or transport error) or its disk cannot serve.
    fn route(&mut self, msg: Message) -> Message {
        let (file, is_read) = match &msg {
            Message::Get { file, .. } => (*file, true),
            Message::Put { file, .. } => (*file, false),
            _ => return Message::Err { code: 3 },
        };
        let Some(copies) = self.copies_of_file.get(&file).cloned() else {
            return Message::Err { code: 1 };
        };
        // Writes go to the primary only (§III-C write buffering is a
        // per-node affair; the prototype does not propagate writes to
        // backups, so failing a write over would fork the copies).
        let tries = if is_read { copies.len() } else { 1 };
        for (i, &(node, _disk)) in copies.iter().take(tries).enumerate() {
            if !self.node_up[node] {
                continue;
            }
            match self.rpc(node, &msg) {
                Ok(Message::Err { code: 1 | 2 }) if i + 1 < tries => {
                    // This copy cannot serve (failed disk, lost file);
                    // fall through to the next one.
                }
                Ok(reply) => {
                    if i > 0 && !matches!(reply, Message::Err { .. }) {
                        self.failovers += 1;
                    }
                    return reply;
                }
                Err(_) => {
                    // Transport failure: the node is gone. Stop routing
                    // to it and keep trying the remaining copies.
                    self.node_up[node] = false;
                }
            }
        }
        Message::Err { code: 2 }
    }

    /// Reconnects to a replacement daemon for `node` and replays the
    /// node's setup (creates, prefetch, hints) so it holds the same files.
    fn revive(&mut self, node: usize, port: u16) -> Result<(), CodecError> {
        let conn = TcpStream::connect(SocketAddr::from(([127, 0, 0, 1], port)))?;
        self.node_conns[node] = conn;
        for (file, size, disk) in self.create_log[node].clone() {
            match self.rpc(node, &Message::CreateFile { file, size, disk })? {
                Message::Ok => {}
                _ => return Err(CodecError::Malformed("revived node failed to create file")),
            }
        }
        let files = self.prefetch_log[node].clone();
        if !files.is_empty() {
            match self.rpc(node, &Message::Prefetch { files })? {
                Message::Ok => {}
                _ => return Err(CodecError::Malformed("revived node failed to prefetch")),
            }
        }
        let pattern = self.hints_log[node].clone();
        match self.rpc(node, &Message::Hints { pattern })? {
            Message::Ok => {}
            _ => return Err(CodecError::Malformed("revived node rejected hints")),
        }
        self.node_up[node] = true;
        Ok(())
    }

    fn collect_stats(&mut self) -> Result<ClusterStats, CodecError> {
        let mut total = ClusterStats {
            failovers: self.failovers,
            ..ClusterStats::default()
        };
        for node in 0..self.node_conns.len() {
            if !self.node_up[node] {
                continue;
            }
            match self.rpc(node, &Message::StatsRequest) {
                Ok(Message::Stats {
                    disk_joules,
                    spin_ups,
                    spin_downs,
                    hits,
                    misses,
                    failovers: _,
                }) => {
                    total.disk_joules += disk_joules;
                    total.spin_ups += spin_ups;
                    total.spin_downs += spin_downs;
                    total.hits += hits;
                    total.misses += misses;
                }
                Ok(_) => return Err(CodecError::Malformed("unexpected reply to StatsRequest")),
                // A node that died since the last request just drops out
                // of the totals.
                Err(_) => self.node_up[node] = false,
            }
        }
        Ok(total)
    }

    fn shutdown_nodes(&mut self) {
        for node in 0..self.node_conns.len() {
            if self.node_up[node] {
                let _ = self.rpc(node, &Message::Shutdown);
            }
        }
    }
}

/// A running server daemon.
pub struct ServerDaemon {
    /// Address clients talk to.
    pub addr: SocketAddr,
    handle: JoinHandle<()>,
}

impl ServerDaemon {
    /// Connects to the nodes (step 1), performs setup (steps 2–4) with
    /// `replication` copies per file, then serves client requests until it
    /// receives `Shutdown` from a client.
    pub fn spawn(
        node_addrs: &[SocketAddr],
        disks_per_node: Vec<usize>,
        trace: &Trace,
        prefetch_k: u32,
        replication: usize,
    ) -> std::io::Result<ServerDaemon> {
        let mut conns = Vec::with_capacity(node_addrs.len());
        for addr in node_addrs {
            conns.push(TcpStream::connect(addr)?);
        }
        let n_nodes = node_addrs.len();
        let mut state = ServerState {
            node_conns: conns,
            node_up: vec![true; n_nodes],
            copies_of_file: HashMap::new(),
            failovers: 0,
            create_log: vec![Vec::new(); n_nodes],
            prefetch_log: vec![Vec::new(); n_nodes],
            hints_log: vec![Vec::new(); n_nodes],
        };
        state
            .setup(trace, prefetch_k, &disks_per_node, replication)
            .map_err(|e| std::io::Error::other(format!("setup failed: {e}")))?;

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("eevfs-server".into())
            .spawn(move || {
                'outer: for stream in listener.incoming() {
                    let Ok(mut stream) = stream else { continue };
                    while let Ok(msg) = read_message(&mut stream) {
                        let reply = match msg {
                            msg @ (Message::Get { .. } | Message::Put { .. }) => state.route(msg),
                            Message::StatsRequest => match state.collect_stats() {
                                Ok(s) => Message::Stats {
                                    disk_joules: s.disk_joules,
                                    spin_ups: s.spin_ups,
                                    spin_downs: s.spin_downs,
                                    hits: s.hits,
                                    misses: s.misses,
                                    failovers: s.failovers,
                                },
                                Err(_) => Message::Err { code: 2 },
                            },
                            Message::KillNode { node } => {
                                let n = node as usize;
                                if n < state.node_conns.len() {
                                    // Best effort: the node acks Shutdown
                                    // and its thread exits. Routing skips
                                    // it from here on.
                                    let _ = state.rpc(n, &Message::Shutdown);
                                    state.node_up[n] = false;
                                    Message::Ok
                                } else {
                                    Message::Err { code: 3 }
                                }
                            }
                            msg @ (Message::FailDisk { .. } | Message::RepairDisk { .. }) => {
                                let node = match msg {
                                    Message::FailDisk { node, .. }
                                    | Message::RepairDisk { node, .. } => node as usize,
                                    _ => unreachable!(),
                                };
                                if node < state.node_conns.len() && state.node_up[node] {
                                    state.rpc(node, &msg).unwrap_or(Message::Err { code: 2 })
                                } else {
                                    Message::Err { code: 3 }
                                }
                            }
                            Message::ReviveNode { node, port } => {
                                let n = node as usize;
                                if n < state.node_conns.len() {
                                    match state.revive(n, port) {
                                        Ok(()) => Message::Ok,
                                        Err(_) => Message::Err { code: 2 },
                                    }
                                } else {
                                    Message::Err { code: 3 }
                                }
                            }
                            Message::Shutdown => {
                                state.shutdown_nodes();
                                let _ = write_message(&mut stream, &Message::Shutdown);
                                break 'outer;
                            }
                            _ => Message::Err { code: 3 },
                        };
                        if write_message(&mut stream, &reply).is_err() {
                            break;
                        }
                    }
                }
            })?;
        Ok(ServerDaemon { addr, handle })
    }

    /// Waits for the server thread to exit.
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

/// Splits a trace record time into the form hints carry.
pub fn hint_time(t: SimTime) -> u64 {
    t.as_micros()
}
