//! Storage-server daemon.
//!
//! The thin metadata tier of the prototype (§III-A): it owns the
//! file → node map, performs the popularity round-robin placement during
//! setup (steps 1–4 of the process flow), and at run time resolves each
//! client request and forwards it to the owning node (step 5). It never
//! touches file data — responses flow node → client directly.
//!
//! Request forwarding runs under an [`fault_model::RpcPolicy`]: bounded
//! retries with seeded exponential backoff, per-node circuit breakers,
//! optional hedged reads against the next replica, and a
//! [`crate::transport::FaultyTransport`] per node link that can drop,
//! delay, or reset request-path frames (admin-driven partitions and
//! probabilistic link faults). `SimDuration` fields of the policy are
//! interpreted as **wall-clock** durations here; the default options
//! reproduce the historical fail-fast behaviour exactly.

use crate::admission::{shed_code, AdmissionGate, AdmitError, GateCounters, OverloadOptions};
use crate::proto::{read_message, write_message, CodecError, Message, StatsCounters};
use crate::transport::{FaultyTransport, SendError};
use eevfs::config::PlacementPolicy;
use eevfs::journal::{encode, JournalRecord, MetaState};
use eevfs::placement::place;
use eevfs::replication::replicate;
use fault_model::{CircuitBreaker, LinkFaultProfile, NetFaultInjector, NetFaultPlan, RpcPolicy};
use sim_core::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use workload::popularity::PopularityTable;
use workload::record::{FileId, Trace};

/// Poll quantum while racing a hedged read's two in-flight replies.
const HEDGE_POLL: Duration = Duration::from_millis(2);

/// Aggregated node statistics. Cumulative from cluster boot; subtract two
/// snapshots to measure a window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterStats {
    /// Total disk joules across all nodes (virtual time).
    pub disk_joules: f64,
    /// Spin-ups across all data disks.
    pub spin_ups: u64,
    /// Spin-downs across all data disks.
    pub spin_downs: u64,
    /// Buffer hits.
    pub hits: u64,
    /// Buffer misses.
    pub misses: u64,
    /// Requests the server redirected to a non-primary replica.
    pub failovers: u64,
    /// Request forwards re-sent after a drop, reset, or transport error.
    pub retries: u64,
    /// Hedged reads issued against a second replica.
    pub hedges: u64,
    /// Hedged reads the second replica won.
    pub hedges_won: u64,
    /// Circuit-breaker trips across node links.
    pub breaker_trips: u64,
    /// Half-open probes that closed a breaker again.
    pub breaker_recoveries: u64,
    /// Requests that exhausted their deadline or retry budget.
    pub deadline_misses: u64,
    /// Journal replays nodes performed at boot (one per restart that
    /// recovered from an intact journal).
    pub journal_replays: u64,
    /// Checksum mismatches nodes caught on data-disk reads.
    pub corruptions_detected: u64,
    /// Requests offered to the server's admission gate.
    pub offered: u64,
    /// Requests admitted past the gate.
    pub admitted: u64,
    /// Requests refused at admission with `Busy`.
    pub rejected: u64,
    /// Requests shed pre-admission (deadline or priority).
    pub shed: u64,
    /// Admitted requests shed after admission: a node refused them under
    /// brownout, or the deadline budget drained while queued.
    pub node_shed: u64,
    /// Admitted requests answered with a terminal non-error reply.
    pub completed: u64,
    /// Admitted requests that ended in an error reply.
    pub request_errors: u64,
    /// Brownout-ladder level changes, either direction.
    pub brownout_transitions: u64,
    /// Peak concurrent admitted requests at the server.
    pub queue_peak: u64,
}

impl std::ops::Sub for ClusterStats {
    type Output = ClusterStats;
    fn sub(self, earlier: ClusterStats) -> ClusterStats {
        // Saturating: a node that died between snapshots takes its
        // counters with it, so the later total can dip below the earlier.
        ClusterStats {
            disk_joules: self.disk_joules - earlier.disk_joules,
            spin_ups: self.spin_ups.saturating_sub(earlier.spin_ups),
            spin_downs: self.spin_downs.saturating_sub(earlier.spin_downs),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            failovers: self.failovers.saturating_sub(earlier.failovers),
            retries: self.retries.saturating_sub(earlier.retries),
            hedges: self.hedges.saturating_sub(earlier.hedges),
            hedges_won: self.hedges_won.saturating_sub(earlier.hedges_won),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            breaker_recoveries: self
                .breaker_recoveries
                .saturating_sub(earlier.breaker_recoveries),
            deadline_misses: self.deadline_misses.saturating_sub(earlier.deadline_misses),
            journal_replays: self.journal_replays.saturating_sub(earlier.journal_replays),
            corruptions_detected: self
                .corruptions_detected
                .saturating_sub(earlier.corruptions_detected),
            offered: self.offered.saturating_sub(earlier.offered),
            admitted: self.admitted.saturating_sub(earlier.admitted),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            shed: self.shed.saturating_sub(earlier.shed),
            node_shed: self.node_shed.saturating_sub(earlier.node_shed),
            completed: self.completed.saturating_sub(earlier.completed),
            request_errors: self.request_errors.saturating_sub(earlier.request_errors),
            brownout_transitions: self
                .brownout_transitions
                .saturating_sub(earlier.brownout_transitions),
            // Peaks are high-water marks, not monotone counters; a window
            // difference is meaningless, so keep the later snapshot's.
            queue_peak: self.queue_peak,
        }
    }
}

impl ClusterStats {
    /// Wire form for a client-facing `Stats` reply.
    pub fn to_counters(self) -> StatsCounters {
        StatsCounters {
            disk_joules: self.disk_joules,
            spin_ups: self.spin_ups,
            spin_downs: self.spin_downs,
            hits: self.hits,
            misses: self.misses,
            failovers: self.failovers,
            retries: self.retries,
            hedges: self.hedges,
            hedges_won: self.hedges_won,
            breaker_trips: self.breaker_trips,
            breaker_recoveries: self.breaker_recoveries,
            deadline_misses: self.deadline_misses,
            journal_replays: self.journal_replays,
            corruptions_detected: self.corruptions_detected,
            offered: self.offered,
            admitted: self.admitted,
            rejected: self.rejected,
            shed: self.shed,
            node_shed: self.node_shed,
            completed: self.completed,
            request_errors: self.request_errors,
            brownout_transitions: self.brownout_transitions,
            queue_peak: self.queue_peak,
        }
    }

    /// Rebuilds cluster stats from a `Stats` reply's counters.
    pub fn from_counters(c: StatsCounters) -> ClusterStats {
        ClusterStats {
            disk_joules: c.disk_joules,
            spin_ups: c.spin_ups,
            spin_downs: c.spin_downs,
            hits: c.hits,
            misses: c.misses,
            failovers: c.failovers,
            retries: c.retries,
            hedges: c.hedges,
            hedges_won: c.hedges_won,
            breaker_trips: c.breaker_trips,
            breaker_recoveries: c.breaker_recoveries,
            deadline_misses: c.deadline_misses,
            journal_replays: c.journal_replays,
            corruptions_detected: c.corruptions_detected,
            offered: c.offered,
            admitted: c.admitted,
            rejected: c.rejected,
            shed: c.shed,
            node_shed: c.node_shed,
            completed: c.completed,
            request_errors: c.request_errors,
            brownout_transitions: c.brownout_transitions,
            queue_peak: c.queue_peak,
        }
    }
}

/// One step of a request's server-side RPC lifecycle, tagged with the
/// end-to-end request id from the client's frame so traces can nest
/// retries and hedges under the request they serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcSpan {
    /// End-to-end request id (from the `Get`/`Put` frame).
    pub req_id: u64,
    /// Node the step talked to (`u32::MAX` when no node is involved,
    /// e.g. a retry about to re-run candidate selection).
    pub node: u32,
    /// 1-based attempt number; all candidate sends within one routing
    /// pass share it, and each retry starts a new one.
    pub attempt: u32,
    /// What happened.
    pub kind: SpanKind,
}

/// The step kinds an [`RpcSpan`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A request frame went out to a node.
    Send,
    /// The routing pass failed everywhere; a backoff retry follows.
    Retry,
    /// A hedge fired against a second replica.
    Hedge,
    /// A node's reply was accepted as the request's answer.
    Complete,
}

/// Shared sink the server appends [`RpcSpan`]s into when tracing is on.
pub type SpanSink = Arc<Mutex<Vec<RpcSpan>>>;

/// Resilience knobs for the server's request forwarding.
#[derive(Debug, Clone)]
pub struct ResilienceOptions {
    /// Retry/hedge/breaker policy; durations are wall-interpreted.
    pub policy: RpcPolicy,
    /// Probabilistic per-link faults on request-path sends (injected
    /// delays are wall-interpreted and capped at the per-try timeout).
    pub profile: LinkFaultProfile,
    /// Optional span sink; when set, every request-path send, retry,
    /// hedge, and completion is appended here with its request id.
    pub spans: Option<SpanSink>,
    /// When set, the server journals every placement decision (file →
    /// copy list) to this file during setup, using the same framed-CRC
    /// record format as the node journals. [`recover_placements`] rebuilds
    /// the file → node map from it after a server crash; identical
    /// trace + config produce byte-identical journals.
    pub placement_journal: Option<PathBuf>,
    /// Overload control plane: admission gate + brownout ladder. The
    /// default is disabled (legacy unbounded admission).
    pub overload: OverloadOptions,
}

impl Default for ResilienceOptions {
    /// No retries, no hedging, no injected faults: an effectively
    /// unbounded deadline keeps the legacy fail-fast routing.
    fn default() -> ResilienceOptions {
        ResilienceOptions {
            policy: RpcPolicy::no_retry(SimDuration::from_secs(3600)),
            profile: LinkFaultProfile::none(),
            spans: None,
            placement_journal: None,
            overload: OverloadOptions::default(),
        }
    }
}

/// Rebuilds the file → copy-list map from a placement journal written via
/// [`ResilienceOptions::placement_journal`]. A torn or corrupt tail is
/// truncated, never fatal; the result is exactly the placements the
/// intact prefix recorded, copy order preserved (primary first).
pub fn recover_placements(path: &Path) -> std::io::Result<BTreeMap<u32, Vec<(u32, u32)>>> {
    let bytes = std::fs::read(path)?;
    Ok(MetaState::from_bytes(&bytes).placements)
}

/// Converts a wall-interpreted policy duration.
fn wall(d: SimDuration) -> Duration {
    Duration::from_micros(d.as_micros())
}

struct ServerState {
    /// One fault-gated control link per node.
    links: Vec<FaultyTransport>,
    /// Routing availability. A node is marked down by `KillNode` or by a
    /// transport failure mid-request, and up again by `ReviveNode`.
    node_up: Vec<bool>,
    /// All copies of each file, `(node, disk)`, primary first.
    copies_of_file: HashMap<u32, Vec<(usize, u32)>>,
    /// Reads served by a non-primary copy.
    failovers: u64,
    /// Per-node setup replay logs, so a revived node can be rebuilt:
    /// `CreateFile` arguments, prefetched files, and the hint pattern.
    create_log: Vec<Vec<(u32, u64, u32)>>,
    prefetch_log: Vec<Vec<u32>>,
    hints_log: Vec<Vec<(u64, u32)>>,
    /// Request-forwarding policy (wall-interpreted durations).
    policy: RpcPolicy,
    /// Link fault injection (admin partitions + probabilistic profile).
    injector: NetFaultInjector,
    /// One circuit breaker per node link, fed wall-derived ticks.
    breakers: Vec<CircuitBreaker>,
    /// Wall epoch the breakers' virtual clock counts from.
    epoch: Instant,
    /// Monotone id seeding backoff schedules for frames that carry no
    /// request id (control traffic never routes, so this is a fallback).
    next_request_id: u64,
    /// Span sink plus the request id / attempt the route in progress is
    /// stamping its spans with.
    spans: Option<SpanSink>,
    current_req: u64,
    current_attempt: u32,
    retries: u64,
    hedges: u64,
    hedges_won: u64,
    deadline_misses: u64,
    /// Admitted-side ledger: `admitted == completed + node_shed +
    /// request_errors` once the cluster is quiescent.
    completed: u64,
    node_shed: u64,
    request_errors: u64,
    /// Last brownout level broadcast to the nodes.
    brownout_level: u8,
}

impl ServerState {
    /// Appends a span for the route in progress (no-op without a sink).
    fn span(&self, node: u32, kind: SpanKind) {
        if let Some(sink) = &self.spans {
            if let Ok(mut v) = sink.lock() {
                v.push(RpcSpan {
                    req_id: self.current_req,
                    node,
                    attempt: self.current_attempt,
                    kind,
                });
            }
        }
    }

    /// Wall time since boot on the breakers' `SimTime` axis.
    fn wall_now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// Marks a link's transport as failed: breaker tick, and (for real
    /// socket errors) routing removal until revival.
    fn fail_link(&mut self, node: usize, node_died: bool) {
        let now = self.wall_now();
        self.breakers[node].on_failure(now);
        if node_died {
            self.node_up[node] = false;
        }
    }

    /// Raw request/reply exchange bypassing fault injection (setup,
    /// stats, admin, shutdown).
    fn rpc(&mut self, node: usize, msg: &Message) -> Result<Message, CodecError> {
        self.links[node].send_raw(msg)?;
        self.links[node].recv()
    }

    /// Steps 1-4: placement, creation (all `replication` copies),
    /// prefetch, hints.
    fn setup(
        &mut self,
        trace: &Trace,
        prefetch_k: u32,
        disks_per_node: &[usize],
        replication: usize,
        placement_journal: Option<&Path>,
    ) -> Result<(), CodecError> {
        let popularity = PopularityTable::from_trace(trace);
        let plan = place(
            PlacementPolicy::PopularityRoundRobin,
            &popularity,
            disks_per_node,
        );
        let replicas = replicate(&plan, replication.max(1), disks_per_node);

        // Step 3a: create every copy. Primaries go first in popularity
        // order (the node-local disk round-robin is encoded in the plan),
        // then backup copies. Everything lands in the replay log so a
        // revived node can be rebuilt.
        for node in 0..disks_per_node.len() {
            for &file in plan.files_on(node) {
                let size = trace.file_sizes[file.index()];
                let disk = plan.disk_of_file[file.index()];
                self.create_log[node].push((file.0, size, disk));
            }
        }
        for f in 0..replicas.file_count() {
            let copies = replicas.of(FileId(f as u32));
            self.copies_of_file.insert(
                f as u32,
                copies.iter().map(|&(n, d)| (n as usize, d)).collect(),
            );
            for &(node, disk) in &copies[1..] {
                self.create_log[node as usize].push((f as u32, trace.file_sizes[f], disk));
            }
        }

        // Durably record the placement decisions before any node acts on
        // them, so a crashed server can be rebuilt with the same file →
        // node map (file order and copy order are deterministic, making
        // the journal bytes reproducible run-to-run).
        if let Some(path) = placement_journal {
            let mut records = Vec::new();
            for f in 0..replicas.file_count() {
                for &(node, disk) in replicas.of(FileId(f as u32)) {
                    records.push(JournalRecord::Placement {
                        file: f as u32,
                        node,
                        disk,
                    });
                }
            }
            std::fs::write(path, encode(&records))
                .map_err(|_| CodecError::Malformed("placement journal write failed"))?;
        }
        for node in 0..disks_per_node.len() {
            for &(file, size, disk) in &self.create_log[node].clone() {
                match self.rpc(node, &Message::CreateFile { file, size, disk })? {
                    Message::Ok => {}
                    other => {
                        return Err(CodecError::Malformed(match other {
                            Message::Err { .. } => "node failed to create file",
                            _ => "unexpected reply to CreateFile",
                        }))
                    }
                }
            }
        }

        // Step 3b: prefetch the global top-K on each file's primary.
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); disks_per_node.len()];
        for &file in popularity.top_k(prefetch_k as usize) {
            per_node[plan.node_of_file[file.index()] as usize].push(file.0);
        }
        self.prefetch_log = per_node.clone();
        for (node, files) in per_node.into_iter().enumerate() {
            if files.is_empty() {
                continue;
            }
            match self.rpc(node, &Message::Prefetch { files })? {
                Message::Ok => {}
                _ => return Err(CodecError::Malformed("node failed to prefetch")),
            }
        }

        // Step 4: forward each node its expected *physical* pattern.
        let mut patterns: Vec<Vec<(u64, u32)>> = vec![Vec::new(); disks_per_node.len()];
        for r in &trace.records {
            let node = plan.node_of_file[r.file.index()] as usize;
            if !self.prefetch_log[node].contains(&r.file.0) {
                patterns[node].push((r.at.as_micros(), r.file.0));
            }
        }
        self.hints_log = patterns.clone();
        for (node, pattern) in patterns.into_iter().enumerate() {
            match self.rpc(node, &Message::Hints { pattern })? {
                Message::Ok => {}
                _ => return Err(CodecError::Malformed("node rejected hints")),
            }
        }
        Ok(())
    }

    /// Step 5: resolve and forward one client request (read or write)
    /// under the RPC policy: replica failover, circuit-breaker gating,
    /// optional hedging, then bounded backoff retries until the deadline.
    fn route(&mut self, msg: Message) -> Message {
        // Seed the deterministic backoff schedule with the client's
        // end-to-end request id (every routable frame carries one; the
        // monotone counter covers anything that doesn't).
        let rid = msg.req_id().unwrap_or(self.next_request_id);
        self.next_request_id += 1;
        self.current_req = rid;
        let schedule = self.policy.backoff_schedule(rid);
        let deadline = wall(self.policy.deadline);
        let started = Instant::now();
        let mut retry = 0usize;
        loop {
            self.current_attempt = retry as u32 + 1;
            match self.route_once(&msg, started) {
                Ok(reply) => return reply,
                Err(last) => {
                    let give_up = |state: &mut ServerState| {
                        state.deadline_misses += 1;
                        last.map_or(Message::Err { code: 2 }, |b| *b)
                    };
                    let Some(delay) = schedule.delay(retry) else {
                        return give_up(self);
                    };
                    let d = wall(delay);
                    if started.elapsed() + d >= deadline {
                        return give_up(self);
                    }
                    // The span carries the attempt the retry opens.
                    self.current_attempt = retry as u32 + 2;
                    self.span(u32::MAX, SpanKind::Retry);
                    std::thread::sleep(d);
                    self.retries += 1;
                    retry += 1;
                }
            }
        }
    }

    /// One pass over the healthy, breaker-admitted copies. `Ok` carries a
    /// terminal reply; `Err` means every copy failed transiently (with
    /// the last node-level error, if any, for the give-up reply).
    fn route_once(
        &mut self,
        msg: &Message,
        started: Instant,
    ) -> Result<Message, Option<Box<Message>>> {
        let (file, is_read) = match msg {
            Message::Get { file, .. } => (*file, true),
            Message::Put { file, .. } => (*file, false),
            _ => return Ok(Message::Err { code: 3 }),
        };
        let Some(copies) = self.copies_of_file.get(&file).cloned() else {
            return Ok(Message::Err { code: 1 });
        };
        // Writes go to the primary only (§III-C write buffering is a
        // per-node affair; the prototype does not propagate writes to
        // backups, so failing a write over would fork the copies).
        let tries = if is_read { copies.len() } else { 1 };
        let mut candidates = Vec::with_capacity(tries);
        let now = self.wall_now();
        for &(node, _disk) in copies.iter().take(tries) {
            // `allows` doubles as the half-open probe admission: an open
            // breaker past its cooldown lets exactly this request through.
            if self.node_up[node] && self.breakers[node].allows(now) {
                candidates.push(node);
            }
        }
        let mut last = None;
        for (i, &node) in candidates.iter().enumerate() {
            // Hedge only the first attempt of a read, against the next
            // admitted copy.
            let hedge_with = if is_read && i == 0 && self.policy.hedge_after.is_some() {
                candidates.get(1).copied()
            } else {
                None
            };
            match self.exchange(node, msg, hedge_with, started) {
                Ok(Message::Err {
                    code: code @ (1 | 2),
                }) => {
                    // This copy cannot serve (failed disk, lost file);
                    // transient from the route's point of view.
                    last = Some(Box::new(Message::Err { code }));
                }
                Ok(reply) => {
                    // Busy/Shed are terminal refusals, not served data: a
                    // backup refusing under brownout is no failover.
                    if node != copies[0].0
                        && !matches!(
                            reply,
                            Message::Err { .. } | Message::Busy { .. } | Message::Shed { .. }
                        )
                    {
                        self.failovers += 1;
                    }
                    self.span(node as u32, SpanKind::Complete);
                    return Ok(reply);
                }
                Err(()) => {}
            }
        }
        Err(last)
    }

    /// One request/reply exchange with node `node`, hedged against
    /// `hedge_with` when the policy arms hedging.
    fn exchange(
        &mut self,
        node: usize,
        msg: &Message,
        hedge_with: Option<usize>,
        started: Instant,
    ) -> Result<Message, ()> {
        let cap = wall(self.policy.per_try_timeout);
        if self.links[node].drain_pending().is_err() {
            self.fail_link(node, true);
            return Err(());
        }
        self.span(node as u32, SpanKind::Send);
        match self.links[node].send(&mut self.injector, msg, cap) {
            Ok(()) => {}
            Err(SendError::Dropped) | Err(SendError::Reset) => {
                // Injected loss: the node never saw the frame. Tick the
                // breaker but keep the node routable — the link may heal.
                self.fail_link(node, false);
                return Err(());
            }
            Err(SendError::Io(_)) => {
                self.fail_link(node, true);
                return Err(());
            }
        }
        if let (Some(h), Some(second)) = (self.policy.hedge_after, hedge_with) {
            return self.race_hedge(node, second, msg, h, started);
        }
        match self.links[node].recv() {
            Ok(reply) => {
                self.breakers[node].on_success();
                Ok(reply)
            }
            Err(_) => {
                self.fail_link(node, true);
                Err(())
            }
        }
    }

    /// The hedged-read race: wait `hedge_after` for the primary, then
    /// issue the same request to `second` and take whichever answers
    /// first. The loser's reply is left on its link's pending ledger.
    fn race_hedge(
        &mut self,
        primary: usize,
        second: usize,
        msg: &Message,
        hedge_after: SimDuration,
        started: Instant,
    ) -> Result<Message, ()> {
        let wait = wall(hedge_after).saturating_sub(started.elapsed());
        // A zero budget means the latency bound is already blown (e.g. an
        // injected delay burned it during the send): hedge immediately.
        if wait > Duration::ZERO {
            match self.links[primary].recv_timeout(wait) {
                Ok(Some(reply)) => {
                    self.breakers[primary].on_success();
                    return Ok(reply);
                }
                Ok(None) => {}
                Err(_) => {
                    self.fail_link(primary, true);
                    return Err(());
                }
            }
        }
        // Primary exceeded the hedge latency bound: race the next copy.
        self.hedges += 1;
        self.span(second as u32, SpanKind::Hedge);
        let cap = wall(self.policy.per_try_timeout);
        let mut hedged = self.links[second].drain_pending().is_ok()
            && self.links[second]
                .send(&mut self.injector, msg, cap)
                .is_ok();
        let mut primary_alive = true;
        let deadline = wall(self.policy.deadline);
        loop {
            if started.elapsed() >= deadline || (!primary_alive && !hedged) {
                if primary_alive {
                    self.links[primary].abandon_reply();
                }
                if hedged {
                    self.links[second].abandon_reply();
                }
                return Err(());
            }
            if primary_alive {
                match self.links[primary].recv_timeout(HEDGE_POLL) {
                    Ok(Some(reply)) => {
                        self.breakers[primary].on_success();
                        if hedged {
                            self.links[second].abandon_reply();
                        }
                        return Ok(reply);
                    }
                    Ok(None) => {}
                    Err(_) => {
                        self.fail_link(primary, true);
                        primary_alive = false;
                    }
                }
            }
            if hedged {
                match self.links[second].recv_timeout(HEDGE_POLL) {
                    Ok(Some(reply)) => {
                        self.breakers[second].on_success();
                        self.hedges_won += 1;
                        if primary_alive {
                            self.links[primary].abandon_reply();
                        }
                        return Ok(reply);
                    }
                    Ok(None) => {}
                    Err(_) => {
                        self.fail_link(second, true);
                        hedged = false;
                    }
                }
            }
        }
    }

    /// Reconnects to a replacement daemon for `node` and replays the
    /// node's setup (creates, prefetch, hints) so it holds the same files.
    fn revive(&mut self, node: usize, port: u16) -> Result<(), CodecError> {
        let conn = TcpStream::connect(SocketAddr::from(([127, 0, 0, 1], port)))?;
        self.links[node].reconnect(conn);
        // A fresh daemon earns a fresh breaker: failures of its
        // predecessor say nothing about it.
        self.breakers[node] = CircuitBreaker::new(self.policy.breaker);
        for (file, size, disk) in self.create_log[node].clone() {
            match self.rpc(node, &Message::CreateFile { file, size, disk })? {
                Message::Ok => {}
                _ => return Err(CodecError::Malformed("revived node failed to create file")),
            }
        }
        let files = self.prefetch_log[node].clone();
        if !files.is_empty() {
            match self.rpc(node, &Message::Prefetch { files })? {
                Message::Ok => {}
                _ => return Err(CodecError::Malformed("revived node failed to prefetch")),
            }
        }
        let pattern = self.hints_log[node].clone();
        match self.rpc(node, &Message::Hints { pattern })? {
            Message::Ok => {}
            _ => return Err(CodecError::Malformed("revived node rejected hints")),
        }
        self.node_up[node] = true;
        Ok(())
    }

    /// Reconnects to a *restarted* daemon for `node` that kept its store
    /// directory and already replayed its own journal. The server only
    /// re-sends the soft-state hints (never journalled on the node — the
    /// expected pattern is a prediction, not metadata) and resumes
    /// routing; creates and prefetch are deliberately not replayed.
    fn register(&mut self, node: usize, port: u16) -> Result<(), CodecError> {
        let conn = TcpStream::connect(SocketAddr::from(([127, 0, 0, 1], port)))?;
        self.links[node].reconnect(conn);
        self.breakers[node] = CircuitBreaker::new(self.policy.breaker);
        let pattern = self.hints_log[node].clone();
        match self.rpc(node, &Message::Hints { pattern })? {
            Message::Ok => {}
            _ => return Err(CodecError::Malformed("restarted node rejected hints")),
        }
        self.node_up[node] = true;
        Ok(())
    }

    /// Lazily broadcasts a changed brownout level to every routable node
    /// (bypassing fault injection — losing a control broadcast to an
    /// injected drop would desynchronise the cluster's degradation
    /// state). Nodes that cannot be reached drop out of routing, exactly
    /// as they would on the next forwarded request.
    fn sync_brownout(&mut self, level: u8) {
        if level == self.brownout_level {
            return;
        }
        for node in 0..self.links.len() {
            if !self.node_up[node] {
                continue;
            }
            if self.rpc(node, &Message::Brownout { level }).is_err() {
                self.node_up[node] = false;
            }
        }
        self.brownout_level = level;
    }

    fn collect_stats(&mut self, gate: GateCounters) -> Result<ClusterStats, CodecError> {
        let mut total = ClusterStats {
            failovers: self.failovers,
            retries: self.retries,
            hedges: self.hedges,
            hedges_won: self.hedges_won,
            breaker_trips: self.breakers.iter().map(|b| b.trips()).sum(),
            breaker_recoveries: self.breakers.iter().map(|b| b.recoveries()).sum(),
            deadline_misses: self.deadline_misses,
            offered: gate.offered,
            admitted: gate.admitted,
            rejected: gate.rejected,
            shed: gate.shed,
            node_shed: self.node_shed,
            completed: self.completed,
            request_errors: self.request_errors,
            brownout_transitions: gate.brownout_transitions,
            queue_peak: gate.queue_peak,
            ..ClusterStats::default()
        };
        for node in 0..self.links.len() {
            if !self.node_up[node] {
                continue;
            }
            match self.rpc(node, &Message::StatsRequest) {
                // A wrong-but-well-formed reply propagates as a typed
                // `CodecError::Unexpected` naming both sides.
                Ok(reply) => {
                    let s = reply.into_stats()?;
                    total.disk_joules += s.disk_joules;
                    total.spin_ups += s.spin_ups;
                    total.spin_downs += s.spin_downs;
                    total.hits += s.hits;
                    total.misses += s.misses;
                    total.journal_replays += s.journal_replays;
                    total.corruptions_detected += s.corruptions_detected;
                }
                // A node that died since the last request just drops out
                // of the totals.
                Err(_) => self.node_up[node] = false,
            }
        }
        Ok(total)
    }

    fn shutdown_nodes(&mut self) {
        for node in 0..self.links.len() {
            if self.node_up[node] {
                let _ = self.rpc(node, &Message::Shutdown);
            }
        }
    }
}

/// A running server daemon.
pub struct ServerDaemon {
    /// Address clients talk to.
    pub addr: SocketAddr,
    handle: JoinHandle<()>,
}

impl ServerDaemon {
    /// [`ServerDaemon::spawn_resilient`] with the default (legacy
    /// fail-fast, fault-free) options.
    pub fn spawn(
        node_addrs: &[SocketAddr],
        disks_per_node: Vec<usize>,
        trace: &Trace,
        prefetch_k: u32,
        replication: usize,
    ) -> std::io::Result<ServerDaemon> {
        ServerDaemon::spawn_resilient(
            node_addrs,
            disks_per_node,
            trace,
            prefetch_k,
            replication,
            ResilienceOptions::default(),
        )
    }

    /// Connects to the nodes (step 1), performs setup (steps 2–4) with
    /// `replication` copies per file, then serves client requests until it
    /// receives `Shutdown` from a client. Request forwarding runs under
    /// `opts` (retry policy, link fault profile).
    pub fn spawn_resilient(
        node_addrs: &[SocketAddr],
        disks_per_node: Vec<usize>,
        trace: &Trace,
        prefetch_k: u32,
        replication: usize,
        opts: ResilienceOptions,
    ) -> std::io::Result<ServerDaemon> {
        let mut links = Vec::with_capacity(node_addrs.len());
        for (i, addr) in node_addrs.iter().enumerate() {
            links.push(FaultyTransport::new(TcpStream::connect(addr)?, i));
        }
        let n_nodes = node_addrs.len();
        let mut state = ServerState {
            links,
            node_up: vec![true; n_nodes],
            copies_of_file: HashMap::new(),
            failovers: 0,
            create_log: vec![Vec::new(); n_nodes],
            prefetch_log: vec![Vec::new(); n_nodes],
            hints_log: vec![Vec::new(); n_nodes],
            injector: NetFaultInjector::new(opts.profile, NetFaultPlan::none(), n_nodes),
            breakers: vec![CircuitBreaker::new(opts.policy.breaker); n_nodes],
            policy: opts.policy,
            epoch: Instant::now(),
            next_request_id: 0,
            spans: opts.spans,
            current_req: 0,
            current_attempt: 1,
            retries: 0,
            hedges: 0,
            hedges_won: 0,
            deadline_misses: 0,
            completed: 0,
            node_shed: 0,
            request_errors: 0,
            brownout_level: 0,
        };
        state
            .setup(
                trace,
                prefetch_k,
                &disks_per_node,
                replication,
                opts.placement_journal.as_deref(),
            )
            .map_err(|e| std::io::Error::other(format!("setup failed: {e}")))?;

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(SharedServer {
            state: Mutex::new(state),
            gate: Mutex::new(AdmissionGate::new(opts.overload)),
            shutting_down: AtomicBool::new(false),
        });
        let handle = std::thread::Builder::new()
            .name("eevfs-server".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Thread-per-connection: concurrency is bounded by the
                    // admission gate, not by the accept loop — a refused
                    // request gets its Busy/Shed reply without ever
                    // waiting on the routing lock.
                    let conn_shared = Arc::clone(&shared);
                    let _ = std::thread::Builder::new()
                        .name("eevfs-server-conn".into())
                        .spawn(move || serve_connection(&conn_shared, stream, addr));
                }
            })?;
        Ok(ServerDaemon { addr, handle })
    }

    /// Waits for the server thread to exit.
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

/// Shared server context: routing state, the admission gate (under its
/// own lock, so admission refusals never wait on a routing pass), and the
/// shutdown latch.
struct SharedServer {
    state: Mutex<ServerState>,
    gate: Mutex<AdmissionGate>,
    shutting_down: AtomicBool,
}

/// Mutex lock that survives a poisoned peer: a panicked handler thread
/// must not wedge every other connection.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Suggested client retry delay quoted in server-side `Busy` replies.
const SERVER_RETRY_AFTER_US: u64 = 5_000;

/// Serves one client connection until it closes or the cluster shuts
/// down. Admitted `Get`/`Put` requests serialise on the routing lock —
/// the runtime analogue of the simulated server's serial service queue —
/// while admission decisions take only the gate lock.
fn serve_connection(shared: &SharedServer, mut stream: TcpStream, self_addr: SocketAddr) {
    while let Ok(msg) = read_message(&mut stream) {
        let arrived = Instant::now();
        let reply = match msg {
            msg @ (Message::Get { .. } | Message::Put { .. }) => {
                route_admitted(shared, msg, arrived)
            }
            Message::StatsRequest => {
                let gate = lock(&shared.gate).counters;
                match lock(&shared.state).collect_stats(gate) {
                    Ok(s) => Message::Stats {
                        counters: s.to_counters(),
                    },
                    Err(_) => Message::Err { code: 2 },
                }
            }
            Message::KillNode { node } => {
                let n = node as usize;
                let mut state = lock(&shared.state);
                if n < state.links.len() {
                    // Best effort: the node acks Shutdown and its thread
                    // exits. Routing skips it from here on.
                    let _ = state.rpc(n, &Message::Shutdown);
                    state.node_up[n] = false;
                    Message::Ok
                } else {
                    Message::Err { code: 3 }
                }
            }
            msg @ (Message::PartitionLink { .. } | Message::HealLink { .. }) => {
                let (node, up) = match msg {
                    Message::PartitionLink { node } => (node as usize, false),
                    Message::HealLink { node } => (node as usize, true),
                    _ => unreachable!(),
                };
                let mut state = lock(&shared.state);
                if node < state.links.len() {
                    state.injector.set_link(node, up);
                    Message::Ok
                } else {
                    Message::Err { code: 3 }
                }
            }
            msg @ (Message::FailDisk { .. } | Message::RepairDisk { .. }) => {
                let node = match msg {
                    Message::FailDisk { node, .. } | Message::RepairDisk { node, .. } => {
                        node as usize
                    }
                    _ => unreachable!(),
                };
                let mut state = lock(&shared.state);
                if node < state.links.len() && state.node_up[node] {
                    state.rpc(node, &msg).unwrap_or(Message::Err { code: 2 })
                } else {
                    Message::Err { code: 3 }
                }
            }
            Message::ReviveNode { node, port } => {
                let n = node as usize;
                let mut state = lock(&shared.state);
                if n < state.links.len() {
                    match state.revive(n, port) {
                        Ok(()) => Message::Ok,
                        Err(_) => Message::Err { code: 2 },
                    }
                } else {
                    Message::Err { code: 3 }
                }
            }
            Message::Register { node, port } => {
                let n = node as usize;
                let mut state = lock(&shared.state);
                if n < state.links.len() {
                    match state.register(n, port) {
                        Ok(()) => Message::Ok,
                        Err(_) => Message::Err { code: 2 },
                    }
                } else {
                    Message::Err { code: 3 }
                }
            }
            Message::Shutdown => {
                shared.shutting_down.store(true, Ordering::SeqCst);
                lock(&shared.state).shutdown_nodes();
                let _ = write_message(&mut stream, &Message::Shutdown);
                // Unblock the accept loop so the daemon thread exits.
                let _ = TcpStream::connect(self_addr);
                return;
            }
            _ => Message::Err { code: 3 },
        };
        if write_message(&mut stream, &reply).is_err() {
            break;
        }
    }
}

/// Step 5 under the overload control plane: admission, hop-by-hop
/// deadline shrinking, brownout broadcast, routing, and the
/// admitted-side ledger classification of the reply.
fn route_admitted(shared: &SharedServer, msg: Message, arrived: Instant) -> Message {
    let req_id = msg.req_id().unwrap_or(0);
    let priority = match &msg {
        Message::Get { priority, .. } | Message::Put { priority, .. } => *priority,
        _ => 3,
    };
    let level = {
        let mut gate = lock(&shared.gate);
        match gate.try_admit(priority) {
            Ok(()) => gate.level(),
            Err(AdmitError::Busy) => {
                return Message::Busy {
                    retry_after_us: SERVER_RETRY_AFTER_US,
                    level: gate.level(),
                }
            }
            Err(AdmitError::PriorityShed) => {
                return Message::Shed {
                    req_id,
                    code: shed_code::PRIORITY,
                    level: gate.level(),
                }
            }
        }
    };
    let reply = {
        let mut state = lock(&shared.state);
        state.sync_brownout(level);
        match shrink_deadline(msg, arrived) {
            Err(req_id) => {
                // The budget drained while queued for the routing lock.
                state.deadline_misses += 1;
                state.node_shed += 1;
                Message::Shed {
                    req_id,
                    code: shed_code::DEADLINE,
                    level,
                }
            }
            Ok(msg) => match state.route(msg) {
                // A node refusing under brownout becomes a typed Shed so
                // the client can tell "degraded, don't retry here" from
                // "server full, back off and retry".
                Message::Busy {
                    level: node_level, ..
                } => {
                    state.node_shed += 1;
                    Message::Shed {
                        req_id,
                        code: shed_code::DOWNSTREAM,
                        level: node_level,
                    }
                }
                reply @ Message::Shed { .. } => {
                    state.node_shed += 1;
                    reply
                }
                reply @ Message::Err { .. } => {
                    state.request_errors += 1;
                    reply
                }
                reply => {
                    state.completed += 1;
                    reply
                }
            },
        }
    };
    lock(&shared.gate).release();
    reply
}

/// Shrinks a request's deadline budget by the time it has already spent
/// inside this server (admission plus routing-lock wait). `Err` carries
/// the request id of an already-expired budget. At least 1 us is always
/// charged: truncating a sub-microsecond hop to zero would let a 1 us
/// budget ride through for free on a fast enough machine, making the
/// shed/serve outcome depend on host speed instead of the budget.
fn shrink_deadline(msg: Message, arrived: Instant) -> Result<Message, u64> {
    let elapsed = (arrived.elapsed().as_micros() as u64).max(1);
    match msg {
        Message::Get {
            req_id,
            file,
            client_port,
            deadline_us,
            priority,
        } if deadline_us > 0 => {
            if elapsed >= deadline_us {
                Err(req_id)
            } else {
                Ok(Message::Get {
                    req_id,
                    file,
                    client_port,
                    deadline_us: deadline_us - elapsed,
                    priority,
                })
            }
        }
        Message::Put {
            req_id,
            file,
            client_port,
            deadline_us,
            priority,
        } if deadline_us > 0 => {
            if elapsed >= deadline_us {
                Err(req_id)
            } else {
                Ok(Message::Put {
                    req_id,
                    file,
                    client_port,
                    deadline_us: deadline_us - elapsed,
                    priority,
                })
            }
        }
        other => Ok(other),
    }
}

/// Splits a trace record time into the form hints carry.
pub fn hint_time(t: SimTime) -> u64 {
    t.as_micros()
}
