//! Storage-node daemon.
//!
//! One thread per node, serving its control connection sequentially (the
//! node side of the paper's per-node server thread). The node owns:
//!
//! * a [`FileStore`] — real files under `disk*/` and `buffer/`,
//! * one `disk_model::Disk` per drive — the same power/energy state
//!   machine the simulator uses, driven here in virtual time,
//! * a buffer catalog (reusing `eevfs::buffer::BufferCatalog`),
//! * retroactive idle-window power management: when a physical request
//!   arrives after a gap longer than the idle threshold, the disk is
//!   accounted as having spun down at `last_touch + threshold` and the
//!   request *really waits* the (scaled) spin-up time — so wake penalties
//!   show up in measured response times, like the paper's §VI-C.
//!
//! Power management engages only once the node has been told to prefetch
//! (the prediction-driven policy from §III-C: without buffer coverage the
//! node does not trust any idle window).
//!
//! ## Crash recovery
//!
//! Every metadata mutation (file created, file prefetched, write absorbed
//! by the buffer) is appended to a journal file under the node root —
//! the runtime analogue of the simulator's buffer-disk WAL. A daemon
//! spawned over an existing root replays the journal (truncating any torn
//! or corrupt tail) and recovers its file map, buffer catalog, and
//! power-management arming without any help from the server; the server
//! only needs to re-send the soft-state hints (see `Message::Register`).

use crate::admission::shed_code;
use crate::clock::VirtualClock;
use crate::proto::{read_message, write_message, CodecError, Message, StatsCounters};
use crate::store::FileStore;
use bytes::Bytes;
use disk_model::perf::AccessKind;
use disk_model::{Disk, DiskSpec};
use eevfs::buffer::BufferCatalog;
use eevfs::journal::{self, Journal, JournalRecord};
use sim_core::{SimDuration, SimTime};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::thread::JoinHandle;

/// Configuration for one node daemon.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Node directory for the file store.
    pub root: std::path::PathBuf,
    /// Number of data disks.
    pub data_disks: usize,
    /// Drive model for power accounting.
    pub disk_spec: DiskSpec,
    /// Idle threshold in virtual time.
    pub idle_threshold: SimDuration,
    /// Shared virtual clock.
    pub clock: VirtualClock,
}

struct NodeState {
    store: FileStore,
    clock: VirtualClock,
    idle_threshold: SimDuration,
    disk_of_file: HashMap<u32, usize>,
    size_of_file: HashMap<u32, u64>,
    catalog: BufferCatalog,
    data_disks: Vec<Disk>,
    buffer_disk: Disk,
    /// Virtual completion time of each data disk's last request.
    last_touch: Vec<SimTime>,
    /// Power management engages once prefetching has populated the buffer.
    power_enabled: bool,
    /// Fault injection: physical accesses to a failed disk return io
    /// errors until it is repaired. Buffered copies keep serving.
    failed_disks: Vec<bool>,
    /// In-memory mirror of the on-disk journal (append order preserved).
    journal: Journal,
    /// Journal file under the node root (the buffer disk's WAL).
    journal_path: PathBuf,
    /// 1 when this daemon recovered state by replaying a journal at boot.
    journal_replays: u64,
    /// Checksum mismatches caught on data-disk reads and prefetches.
    corruptions_detected: u64,
    /// Cluster brownout level pushed by the server. At level ≥ 1 the node
    /// serves buffer-disk content only: a `Get` that would have to wake a
    /// data disk is refused with `Busy` instead.
    brownout: u8,
}

impl NodeState {
    fn new(cfg: &NodeConfig) -> std::io::Result<NodeState> {
        let store = FileStore::create(&cfg.root, cfg.data_disks)?;
        let journal_path = cfg.root.join("journal.log");
        let mut state = NodeState {
            store,
            clock: cfg.clock.clone(),
            idle_threshold: cfg.idle_threshold,
            disk_of_file: HashMap::new(),
            size_of_file: HashMap::new(),
            catalog: BufferCatalog::new(cfg.disk_spec.capacity_bytes),
            data_disks: (0..cfg.data_disks)
                .map(|_| Disk::new(cfg.disk_spec.clone()))
                .collect(),
            buffer_disk: Disk::new(cfg.disk_spec.clone()),
            last_touch: vec![SimTime::ZERO; cfg.data_disks],
            power_enabled: false,
            failed_disks: vec![false; cfg.data_disks],
            journal: Journal::new(),
            journal_path,
            journal_replays: 0,
            corruptions_detected: 0,
            brownout: 0,
        };
        if let Ok(bytes) = std::fs::read(&state.journal_path) {
            state.replay_journal(&bytes)?;
        }
        Ok(state)
    }

    /// Recovers metadata from journal bytes found at boot: file map,
    /// buffer catalog, and power-management arming. The journal is
    /// rewritten with only its intact prefix, so a torn tail from the
    /// crash cannot confuse the *next* replay either.
    fn replay_journal(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let replayed = journal::replay(bytes);
        for rec in &replayed.records {
            match *rec {
                JournalRecord::Create { file, size, disk } => {
                    self.disk_of_file.insert(file, disk as usize);
                    self.size_of_file.insert(file, size);
                }
                JournalRecord::Prefetch { file } => {
                    let size = self.size_of_file.get(&file).copied().unwrap_or(0);
                    // Same capacity as before the crash, so this cannot
                    // fail; if it somehow does, the file just degrades to
                    // data-disk reads.
                    let _ = self
                        .catalog
                        .insert_pinned(workload::record::FileId(file), size);
                    self.power_enabled = true;
                }
                JournalRecord::BufferWrite { file } => {
                    let size = self.size_of_file.get(&file).copied().unwrap_or(0);
                    let _ = self
                        .catalog
                        .buffer_write(workload::record::FileId(file), size);
                }
                // Placement records are server-side; a node journal never
                // holds them, and one in a damaged journal is ignored.
                JournalRecord::Placement { .. } => {}
            }
            self.journal.append(rec);
        }
        self.journal.mark_fsync();
        if !replayed.clean {
            std::fs::write(&self.journal_path, self.journal.bytes())?;
        }
        self.journal_replays = 1;
        Ok(())
    }

    /// Appends one record to the journal — in memory and durably on disk
    /// — after the action it describes has completed (a redo log: replay
    /// never references files that were not yet materialised).
    fn journal_append(&mut self, rec: JournalRecord) -> std::io::Result<()> {
        self.journal.append(&rec);
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.journal_path)?;
        f.write_all(&journal::encode(&[rec]))?;
        f.sync_data()?;
        self.journal.mark_fsync();
        Ok(())
    }

    /// Funnels a store error into a reply code, counting checksum
    /// mismatches (`InvalidData` from the CRC sidecar check) on the way.
    fn store_error(&mut self, e: &std::io::Error) -> Message {
        if e.kind() == std::io::ErrorKind::InvalidData {
            self.corruptions_detected += 1;
        }
        Message::Err { code: 2 }
    }

    /// Accounts a physical access on a data disk, applying the
    /// retroactive idle-window sleep, and *really waits* out the scaled
    /// service (and any spin-up).
    fn access_data_disk(&mut self, disk: usize, bytes: u64) -> bool {
        let now = self.clock.now();
        if self.power_enabled {
            let sleep_at = self.last_touch[disk] + self.idle_threshold;
            if now > sleep_at && (now - sleep_at) > SimDuration::ZERO {
                // The disk would have been spun down at the threshold;
                // record it (no-op if it was busy or already down).
                self.data_disks[disk].sleep(sleep_at);
            }
        }
        let comp = self.data_disks[disk].submit(now, bytes, AccessKind::Random);
        self.last_touch[disk] = comp.finish;
        self.clock.sleep_virtual(comp.finish - now);
        comp.spun_up
    }

    /// Accounts a buffer-disk access and waits out the scaled service.
    fn access_buffer_disk(&mut self, bytes: u64, kind: AccessKind) {
        let now = self.clock.now();
        let comp = self.buffer_disk.submit(now, bytes, kind);
        self.clock.sleep_virtual(comp.finish - now);
    }

    /// Retry hint quoted in `Busy` replies: long enough for a brownout
    /// observation window to elapse at the server, short enough that a
    /// polite client retries within the same campaign.
    const RETRY_AFTER_US: u64 = 10_000;

    fn handle(&mut self, msg: Message, arrived: std::time::Instant) -> Result<Message, CodecError> {
        match msg {
            Message::CreateFile { file, size, disk } => {
                let disk = disk as usize;
                if disk >= self.store.data_disks() {
                    return Ok(Message::Err { code: 3 });
                }
                match self.store.create_file(disk, file, size) {
                    Ok(()) => {
                        self.disk_of_file.insert(file, disk);
                        self.size_of_file.insert(file, size);
                        if self
                            .journal_append(JournalRecord::Create {
                                file,
                                size,
                                disk: disk as u32,
                            })
                            .is_err()
                        {
                            return Ok(Message::Err { code: 2 });
                        }
                        let now = self.clock.now();
                        let comp = self.data_disks[disk].submit(now, size, AccessKind::Sequential);
                        self.last_touch[disk] = comp.finish;
                        Ok(Message::Ok)
                    }
                    Err(_) => Ok(Message::Err { code: 2 }),
                }
            }
            Message::Prefetch { files } => {
                for file in files {
                    let Some(&disk) = self.disk_of_file.get(&file) else {
                        return Ok(Message::Err { code: 1 });
                    };
                    let size = self.size_of_file[&file];
                    if self.failed_disks[disk] {
                        return Ok(Message::Err { code: 2 });
                    }
                    if let Err(e) = self.store.prefetch(disk, file) {
                        return Ok(self.store_error(&e));
                    }
                    // Read off the data disk, append to the buffer log.
                    let now = self.clock.now();
                    let comp = self.data_disks[disk].submit(now, size, AccessKind::Random);
                    self.last_touch[disk] = comp.finish;
                    self.access_buffer_disk(size, AccessKind::Sequential);
                    if self
                        .catalog
                        .insert_pinned(workload::record::FileId(file), size)
                        .is_err()
                        || self
                            .journal_append(JournalRecord::Prefetch { file })
                            .is_err()
                    {
                        return Ok(Message::Err { code: 2 });
                    }
                    self.power_enabled = true;
                }
                Ok(Message::Ok)
            }
            Message::Hints { pattern } => {
                // Disks with no expected physical accesses can be slept
                // immediately (the paper's step-4 conservatism in reverse:
                // hints *create* the trust needed to sleep right away).
                if self.power_enabled {
                    let mut touched = vec![false; self.data_disks.len()];
                    for (_, file) in &pattern {
                        if let Some(&d) = self.disk_of_file.get(file) {
                            if !self.catalog.contains(workload::record::FileId(*file)) {
                                touched[d] = true;
                            }
                        }
                    }
                    let now = self.clock.now();
                    for (d, t) in touched.iter().enumerate() {
                        if !t {
                            self.data_disks[d].sleep(now);
                        }
                    }
                }
                Ok(Message::Ok)
            }
            Message::Get {
                req_id,
                file,
                client_port,
                deadline_us,
                priority: _,
            } => {
                // Pre-service deadline check: the budget the server
                // forwarded is what remains after its own hops; if it has
                // already drained by the time this node gets to the frame,
                // serving would only waste a disk access on a reply the
                // client will discard.
                if deadline_us > 0 && arrived.elapsed().as_micros() as u64 >= deadline_us {
                    return Ok(Message::Shed {
                        req_id,
                        code: shed_code::DEADLINE,
                        level: self.brownout,
                    });
                }
                let fid = workload::record::FileId(file);
                let Some(&disk) = self.disk_of_file.get(&file) else {
                    return Ok(Message::Err { code: 1 });
                };
                let size = self.size_of_file[&file];
                let data = if self.catalog.lookup(fid) {
                    self.access_buffer_disk(size, AccessKind::Random);
                    self.store.read_buffer(file)
                } else if self.brownout >= 1 {
                    // Brownout L1+: buffer-disk-only serving. A miss would
                    // spin up a data disk — exactly the energy spike the
                    // ladder exists to suppress — so refuse it instead.
                    return Ok(Message::Busy {
                        retry_after_us: Self::RETRY_AFTER_US,
                        level: self.brownout,
                    });
                } else if self.failed_disks[disk] {
                    return Ok(Message::Err { code: 2 });
                } else {
                    self.access_data_disk(disk, size);
                    self.store.read_data(disk, file)
                };
                let data = match data {
                    Ok(d) => d,
                    Err(e) => return Ok(self.store_error(&e)),
                };
                // Step 6: push the data to the client. A callback failure
                // (listener gone — e.g. the client already took a hedged
                // copy from another node) must not tear down the control
                // connection, so it is contained as an io-error reply.
                let addr = SocketAddr::from(([127, 0, 0, 1], client_port));
                let Ok(mut conn) = TcpStream::connect(addr) else {
                    return Ok(Message::Err { code: 2 });
                };
                match write_message(
                    &mut conn,
                    &Message::FileData {
                        req_id,
                        file,
                        data: Bytes::from(data),
                    },
                ) {
                    Ok(()) => Ok(Message::Ok),
                    Err(_) => Ok(Message::Err { code: 2 }),
                }
            }
            Message::Put {
                req_id,
                file,
                client_port,
                deadline_us,
                priority: _,
            } => {
                if deadline_us > 0 && arrived.elapsed().as_micros() as u64 >= deadline_us {
                    return Ok(Message::Shed {
                        req_id,
                        code: shed_code::DEADLINE,
                        level: self.brownout,
                    });
                }
                let fid = workload::record::FileId(file);
                let Some(&disk) = self.disk_of_file.get(&file) else {
                    return Ok(Message::Err { code: 1 });
                };
                let size = self.size_of_file[&file];
                // Pull the payload from the client (reverse push). Like
                // the Get push, callback failures are contained as error
                // replies rather than control-connection teardown.
                let addr = SocketAddr::from(([127, 0, 0, 1], client_port));
                let Ok(mut conn) = TcpStream::connect(addr) else {
                    return Ok(Message::Err { code: 2 });
                };
                let data = match read_message(&mut conn) {
                    Ok(Message::FileData {
                        req_id: got_id,
                        file: got,
                        data,
                    }) if got == file && got_id == req_id => data,
                    Ok(_) => return Ok(Message::Err { code: 3 }),
                    Err(_) => return Ok(Message::Err { code: 2 }),
                };
                if data.len() as u64 != size {
                    return Ok(Message::Err { code: 3 });
                }
                // §III-C: absorb the write in the buffer area when it fits;
                // it stays dirty there (the prototype does not destage).
                if self.catalog.buffer_write(fid, size).is_ok() {
                    if self.store.write_buffer_file(file, &data).is_err()
                        || self
                            .journal_append(JournalRecord::BufferWrite { file })
                            .is_err()
                    {
                        return Ok(Message::Err { code: 2 });
                    }
                    self.access_buffer_disk(size, AccessKind::Sequential);
                } else {
                    if self.failed_disks[disk] || self.store.write_data(disk, file, &data).is_err()
                    {
                        return Ok(Message::Err { code: 2 });
                    }
                    self.access_data_disk(disk, size);
                }
                Ok(Message::Ok)
            }
            Message::StatsRequest => {
                let now = self.clock.now();
                let mut joules = 0.0;
                let mut ups = 0;
                let mut downs = 0;
                for (d, disk) in self.data_disks.iter_mut().enumerate() {
                    if self.power_enabled {
                        // Trailing idleness beyond the threshold counts as
                        // standby too.
                        let sleep_at = self.last_touch[d] + self.idle_threshold;
                        if now > sleep_at {
                            disk.sleep(sleep_at);
                        }
                    }
                    disk.finalize(now);
                    joules += disk.total_joules();
                    ups += disk.transitions().spin_ups;
                    downs += disk.transitions().spin_downs;
                }
                self.buffer_disk.finalize(now);
                joules += self.buffer_disk.total_joules();
                // The resilience and overload-ledger counters are
                // server-side; nodes report zeros and the server adds its
                // own when aggregating.
                Ok(Message::Stats {
                    counters: StatsCounters {
                        disk_joules: joules,
                        spin_ups: ups,
                        spin_downs: downs,
                        hits: self.catalog.hits(),
                        misses: self.catalog.misses(),
                        journal_replays: self.journal_replays,
                        corruptions_detected: self.corruptions_detected,
                        ..StatsCounters::default()
                    },
                })
            }
            Message::Brownout { level } => {
                self.brownout = level;
                Ok(Message::Ok)
            }
            Message::FailDisk { disk, .. } => {
                let disk = disk as usize;
                if disk >= self.failed_disks.len() {
                    return Ok(Message::Err { code: 3 });
                }
                self.failed_disks[disk] = true;
                Ok(Message::Ok)
            }
            Message::RepairDisk { disk, .. } => {
                let disk = disk as usize;
                if disk >= self.failed_disks.len() {
                    return Ok(Message::Err { code: 3 });
                }
                self.failed_disks[disk] = false;
                Ok(Message::Ok)
            }
            Message::Shutdown => Ok(Message::Shutdown),
            other => {
                let _ = other;
                Ok(Message::Err { code: 3 })
            }
        }
    }
}

/// A running node daemon.
pub struct NodeDaemon {
    /// Address the control listener is bound to.
    pub addr: SocketAddr,
    handle: JoinHandle<()>,
}

impl NodeDaemon {
    /// Spawns the daemon; returns once its listener is bound.
    pub fn spawn(cfg: NodeConfig) -> std::io::Result<NodeDaemon> {
        let mut state = NodeState::new(&cfg)?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let handle = std::thread::Builder::new()
            .name(format!("eevfs-node-{}", addr.port()))
            .spawn(move || {
                // Serve control connections sequentially until Shutdown.
                'outer: for stream in listener.incoming() {
                    let Ok(mut stream) = stream else { continue };
                    // A read error means the peer closed; await next conn.
                    while let Ok(msg) = read_message(&mut stream) {
                        // Deadline budgets are measured from the moment the
                        // frame left the wire, so queueing inside handle()
                        // counts against the remaining budget.
                        let arrived = std::time::Instant::now();
                        let is_shutdown = matches!(msg, Message::Shutdown);
                        match state.handle(msg, arrived) {
                            Ok(reply) => {
                                if write_message(&mut stream, &reply).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                        if is_shutdown {
                            break 'outer;
                        }
                    }
                }
            })?;
        Ok(NodeDaemon { addr, handle })
    }

    /// True once the daemon thread has exited (e.g. after a Shutdown).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Waits for the daemon thread to exit (after a Shutdown message).
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::verify_pattern;

    fn test_cfg(name: &str) -> NodeConfig {
        let root =
            std::env::temp_dir().join(format!("eevfs-node-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        NodeConfig {
            root,
            data_disks: 2,
            disk_spec: DiskSpec::ata133_type1(),
            idle_threshold: SimDuration::from_secs(5),
            clock: VirtualClock::start(10_000.0),
        }
    }

    fn rpc(stream: &mut TcpStream, msg: &Message) -> Message {
        write_message(stream, msg).expect("write");
        read_message(stream).expect("read")
    }

    #[test]
    fn create_prefetch_get_end_to_end() {
        let cfg = test_cfg("e2e");
        let root = cfg.root.clone();
        let node = NodeDaemon::spawn(cfg).expect("spawn");
        let mut ctl = TcpStream::connect(node.addr).expect("connect");

        assert_eq!(
            rpc(
                &mut ctl,
                &Message::CreateFile {
                    file: 1,
                    size: 4096,
                    disk: 0
                }
            ),
            Message::Ok
        );
        assert_eq!(
            rpc(
                &mut ctl,
                &Message::CreateFile {
                    file: 2,
                    size: 2048,
                    disk: 1
                }
            ),
            Message::Ok
        );
        assert_eq!(
            rpc(&mut ctl, &Message::Prefetch { files: vec![1] }),
            Message::Ok
        );

        // Fetch file 2 (a data-disk miss) via the push-to-client path.
        let client = TcpListener::bind("127.0.0.1:0").expect("client listener");
        let port = client.local_addr().expect("addr").port();
        write_message(
            &mut ctl,
            &Message::Get {
                req_id: 31,
                file: 2,
                client_port: port,
                deadline_us: 0,
                priority: 3,
            },
        )
        .expect("send");
        let (mut push, _) = client.accept().expect("accept push");
        let fd = read_message(&mut push)
            .expect("read push")
            .into_file_data()
            .expect("push frame");
        assert_eq!(fd.req_id, 31, "node must echo the request id");
        assert_eq!(fd.file, 2);
        assert_eq!(fd.data.len(), 2048);
        assert!(verify_pattern(2, &fd.data));
        assert_eq!(read_message(&mut ctl).expect("ack"), Message::Ok);

        // Stats reflect the buffer state: one prefetch, one miss.
        let stats = rpc(&mut ctl, &Message::StatsRequest)
            .into_stats()
            .expect("stats reply");
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 1);
        assert!(stats.disk_joules > 0.0);

        assert_eq!(rpc(&mut ctl, &Message::Shutdown), Message::Shutdown);
        node.join();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn buffer_hit_after_prefetch() {
        let cfg = test_cfg("hit");
        let root = cfg.root.clone();
        let node = NodeDaemon::spawn(cfg).expect("spawn");
        let mut ctl = TcpStream::connect(node.addr).expect("connect");
        rpc(
            &mut ctl,
            &Message::CreateFile {
                file: 9,
                size: 1000,
                disk: 0,
            },
        );
        rpc(&mut ctl, &Message::Prefetch { files: vec![9] });

        let client = TcpListener::bind("127.0.0.1:0").expect("listener");
        let port = client.local_addr().expect("addr").port();
        write_message(
            &mut ctl,
            &Message::Get {
                req_id: 1,
                file: 9,
                client_port: port,
                deadline_us: 0,
                priority: 3,
            },
        )
        .expect("send");
        let (mut push, _) = client.accept().expect("accept");
        assert!(matches!(
            read_message(&mut push).expect("data"),
            Message::FileData { file: 9, .. }
        ));
        read_message(&mut ctl).expect("ack");

        let stats = rpc(&mut ctl, &Message::StatsRequest)
            .into_stats()
            .expect("stats reply");
        assert_eq!((stats.hits, stats.misses), (1, 0));
        rpc(&mut ctl, &Message::Shutdown);
        node.join();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn restart_replays_the_journal() {
        let cfg = test_cfg("journal");
        let root = cfg.root.clone();
        let node = NodeDaemon::spawn(cfg.clone()).expect("spawn");
        let mut ctl = TcpStream::connect(node.addr).expect("connect");
        for (file, disk) in [(1u32, 0u32), (2, 1)] {
            assert_eq!(
                rpc(
                    &mut ctl,
                    &Message::CreateFile {
                        file,
                        size: 1024,
                        disk
                    }
                ),
                Message::Ok
            );
        }
        assert_eq!(
            rpc(&mut ctl, &Message::Prefetch { files: vec![1] }),
            Message::Ok
        );
        rpc(&mut ctl, &Message::Shutdown);
        node.join();

        // A fresh daemon over the same root learns everything from the
        // journal: no CreateFile/Prefetch is re-sent, yet both files
        // serve — file 1 from the recovered buffer catalog, file 2 from
        // its (checksum-verified) data disk.
        let node = NodeDaemon::spawn(cfg).expect("respawn");
        let mut ctl = TcpStream::connect(node.addr).expect("reconnect");
        let client = TcpListener::bind("127.0.0.1:0").expect("listener");
        let port = client.local_addr().expect("addr").port();
        for file in [1u32, 2] {
            write_message(
                &mut ctl,
                &Message::Get {
                    req_id: u64::from(file),
                    file,
                    client_port: port,
                    deadline_us: 0,
                    priority: 3,
                },
            )
            .expect("send");
            let (mut push, _) = client.accept().expect("accept");
            let fd = read_message(&mut push)
                .expect("data")
                .into_file_data()
                .expect("push frame");
            assert_eq!(fd.file, file);
            assert!(verify_pattern(file, &fd.data));
            assert_eq!(read_message(&mut ctl).expect("ack"), Message::Ok);
        }
        let stats = rpc(&mut ctl, &Message::StatsRequest)
            .into_stats()
            .expect("stats reply");
        assert_eq!(stats.journal_replays, 1, "boot over a journal replays once");
        assert_eq!(
            (stats.hits, stats.misses),
            (1, 1),
            "catalog recovered from journal"
        );
        assert_eq!(stats.corruptions_detected, 0);
        rpc(&mut ctl, &Message::Shutdown);
        node.join();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn brownout_serves_buffer_hits_but_refuses_misses() {
        let cfg = test_cfg("brownout");
        let root = cfg.root.clone();
        let node = NodeDaemon::spawn(cfg).expect("spawn");
        let mut ctl = TcpStream::connect(node.addr).expect("connect");
        for (file, disk) in [(1u32, 0u32), (2, 1)] {
            rpc(
                &mut ctl,
                &Message::CreateFile {
                    file,
                    size: 512,
                    disk,
                },
            );
        }
        rpc(&mut ctl, &Message::Prefetch { files: vec![1] });
        assert_eq!(rpc(&mut ctl, &Message::Brownout { level: 1 }), Message::Ok);

        // A miss would wake a data disk: refused with Busy, not served.
        assert!(matches!(
            rpc(
                &mut ctl,
                &Message::Get {
                    req_id: 1,
                    file: 2,
                    client_port: 1,
                    deadline_us: 0,
                    priority: 3,
                }
            ),
            Message::Busy { level: 1, .. }
        ));
        // A buffer hit still serves under brownout.
        let client = TcpListener::bind("127.0.0.1:0").expect("listener");
        let port = client.local_addr().expect("addr").port();
        write_message(
            &mut ctl,
            &Message::Get {
                req_id: 2,
                file: 1,
                client_port: port,
                deadline_us: 0,
                priority: 3,
            },
        )
        .expect("send");
        let (mut push, _) = client.accept().expect("accept");
        assert!(matches!(
            read_message(&mut push).expect("data"),
            Message::FileData { file: 1, .. }
        ));
        assert_eq!(read_message(&mut ctl).expect("ack"), Message::Ok);

        // Level 0 restores miss serving.
        assert_eq!(rpc(&mut ctl, &Message::Brownout { level: 0 }), Message::Ok);
        write_message(
            &mut ctl,
            &Message::Get {
                req_id: 3,
                file: 2,
                client_port: port,
                deadline_us: 0,
                priority: 3,
            },
        )
        .expect("send");
        let (mut push, _) = client.accept().expect("accept");
        assert!(matches!(
            read_message(&mut push).expect("data"),
            Message::FileData { file: 2, .. }
        ));
        assert_eq!(read_message(&mut ctl).expect("ack"), Message::Ok);
        rpc(&mut ctl, &Message::Shutdown);
        node.join();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn unknown_file_yields_error() {
        let cfg = test_cfg("err");
        let root = cfg.root.clone();
        let node = NodeDaemon::spawn(cfg).expect("spawn");
        let mut ctl = TcpStream::connect(node.addr).expect("connect");
        assert_eq!(
            rpc(
                &mut ctl,
                &Message::Get {
                    req_id: 1,
                    file: 404,
                    client_port: 1,
                    deadline_us: 0,
                    priority: 3,
                }
            ),
            Message::Err { code: 1 }
        );
        assert_eq!(
            rpc(&mut ctl, &Message::Prefetch { files: vec![404] }),
            Message::Err { code: 1 }
        );
        assert_eq!(
            rpc(
                &mut ctl,
                &Message::CreateFile {
                    file: 1,
                    size: 10,
                    disk: 99
                }
            ),
            Message::Err { code: 3 }
        );
        rpc(&mut ctl, &Message::Shutdown);
        node.join();
        let _ = std::fs::remove_dir_all(root);
    }
}
