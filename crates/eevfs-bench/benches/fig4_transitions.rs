//! Criterion bench for the Fig 4 power-state-transition experiments.
//!
//! Prints the transition counts per swept parameter (the Fig 4 series) and
//! times the simulation. The interesting invariants — transitions fall
//! with data size and inter-arrival delay, collapse to ~0 for small MU and
//! large K, peak at K=10 — are asserted in the integration tests; here we
//! regenerate the raw series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eevfs::config::{ClusterSpec, EevfsConfig};
use eevfs::driver::run_cluster;
use sim_core::SimDuration;
use workload::synthetic::{generate, SyntheticSpec};

const BENCH_REQUESTS: u32 = 300;

fn spec() -> SyntheticSpec {
    SyntheticSpec {
        requests: BENCH_REQUESTS,
        ..SyntheticSpec::paper_default()
    }
}

fn transitions_vs_everything(c: &mut Criterion) {
    let cluster = ClusterSpec::paper_testbed();
    let mut group = c.benchmark_group("fig4_transitions");

    for mb in [1u64, 10, 25, 50] {
        let trace = generate(&SyntheticSpec {
            mean_size_bytes: mb * 1_000_000,
            ..spec()
        });
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
        println!("fig4a size={mb}MB: transitions={}", pf.transitions.total());
        group.bench_with_input(BenchmarkId::new("size_mb", mb), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(70), t).transitions)
        });
    }

    for mu in [1u64, 10, 100, 1000] {
        let trace = generate(&SyntheticSpec {
            mu: mu as f64,
            ..spec()
        });
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
        println!("fig4b mu={mu}: transitions={}", pf.transitions.total());
        group.bench_with_input(BenchmarkId::new("mu", mu), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(70), t).transitions)
        });
    }

    for ms in [0u64, 350, 700, 1000] {
        let trace = generate(&SyntheticSpec {
            inter_arrival: SimDuration::from_millis(ms),
            ..spec()
        });
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
        println!("fig4c delay={ms}ms: transitions={}", pf.transitions.total());
        group.bench_with_input(BenchmarkId::new("delay_ms", ms), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(70), t).transitions)
        });
    }

    let trace = generate(&spec());
    for k in [10u32, 40, 70, 100] {
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(k), &trace);
        println!("fig4d k={k}: transitions={}", pf.transitions.total());
        group.bench_with_input(BenchmarkId::new("prefetch_k", k), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(k), t).transitions)
        });
    }

    group.finish();
}

criterion_group!(
    name = fig4;
    config = Criterion::default().sample_size(10);
    targets = transitions_vs_everything
);
criterion_main!(fig4);
