//! Criterion bench for the Fig 3 energy experiments.
//!
//! Each benchmark runs one full PF/NPF cluster replay at a swept parameter
//! value and reports the simulated energy figures through Criterion's
//! timing of the simulation itself. `cargo bench --bench fig3_energy`
//! regenerates the Fig 3 series (printed once per configuration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eevfs::config::{ClusterSpec, EevfsConfig};
use eevfs::driver::run_cluster;
use sim_core::SimDuration;
use workload::synthetic::{generate, SyntheticSpec};

const BENCH_REQUESTS: u32 = 300;

fn spec() -> SyntheticSpec {
    SyntheticSpec {
        requests: BENCH_REQUESTS,
        ..SyntheticSpec::paper_default()
    }
}

fn bench_panel_a_data_size(c: &mut Criterion) {
    let cluster = ClusterSpec::paper_testbed();
    let mut group = c.benchmark_group("fig3a_energy_vs_data_size");
    for mb in [1u64, 10, 25, 50] {
        let trace = generate(&SyntheticSpec {
            mean_size_bytes: mb * 1_000_000,
            ..spec()
        });
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
        let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
        println!(
            "fig3a size={mb}MB: PF={:.0} J NPF={:.0} J savings={:.1}%",
            pf.total_energy_j,
            npf.total_energy_j,
            pf.savings_vs(&npf) * 100.0
        );
        group.bench_with_input(BenchmarkId::new("pf", mb), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(70), t))
        });
        group.bench_with_input(BenchmarkId::new("npf", mb), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_npf(), t))
        });
    }
    group.finish();
}

fn bench_panel_b_mu(c: &mut Criterion) {
    let cluster = ClusterSpec::paper_testbed();
    let mut group = c.benchmark_group("fig3b_energy_vs_mu");
    for mu in [1u64, 10, 100, 1000] {
        let trace = generate(&SyntheticSpec {
            mu: mu as f64,
            ..spec()
        });
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
        let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
        println!(
            "fig3b mu={mu}: PF={:.0} J NPF={:.0} J savings={:.1}%",
            pf.total_energy_j,
            npf.total_energy_j,
            pf.savings_vs(&npf) * 100.0
        );
        group.bench_with_input(BenchmarkId::new("pf", mu), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(70), t))
        });
    }
    group.finish();
}

fn bench_panel_c_inter_arrival(c: &mut Criterion) {
    let cluster = ClusterSpec::paper_testbed();
    let mut group = c.benchmark_group("fig3c_energy_vs_inter_arrival");
    for ms in [0u64, 350, 700, 1000] {
        let trace = generate(&SyntheticSpec {
            inter_arrival: SimDuration::from_millis(ms),
            ..spec()
        });
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
        let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
        println!(
            "fig3c delay={ms}ms: PF={:.0} J NPF={:.0} J savings={:.1}%",
            pf.total_energy_j,
            npf.total_energy_j,
            pf.savings_vs(&npf) * 100.0
        );
        group.bench_with_input(BenchmarkId::new("pf", ms), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(70), t))
        });
    }
    group.finish();
}

fn bench_panel_d_prefetch_k(c: &mut Criterion) {
    let cluster = ClusterSpec::paper_testbed();
    let trace = generate(&spec());
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    let mut group = c.benchmark_group("fig3d_energy_vs_prefetch_k");
    for k in [10u32, 40, 70, 100] {
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(k), &trace);
        println!(
            "fig3d k={k}: PF={:.0} J NPF={:.0} J savings={:.1}%",
            pf.total_energy_j,
            npf.total_energy_j,
            pf.savings_vs(&npf) * 100.0
        );
        group.bench_with_input(BenchmarkId::new("pf", k), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(k), t))
        });
    }
    group.finish();
}

criterion_group!(
    name = fig3;
    config = Criterion::default().sample_size(10);
    targets = bench_panel_a_data_size,
        bench_panel_b_mu,
        bench_panel_c_inter_arrival,
        bench_panel_d_prefetch_k
);
criterion_main!(fig3);
