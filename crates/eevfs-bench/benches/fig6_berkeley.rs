//! Criterion bench for the Fig 6 Berkeley-web-trace experiment.
//!
//! Prints the PF/NPF energy under the web-trace substitute — the paper's
//! headline "17% energy efficiency improvement ... able to place all of
//! the data disks in the standby for the entirety" — and times the run.

use criterion::{criterion_group, criterion_main, Criterion};
use eevfs::config::{ClusterSpec, EevfsConfig};
use eevfs::driver::run_cluster;
use workload::berkeley::{berkeley_web_trace, BerkeleySpec};

fn berkeley(c: &mut Criterion) {
    let cluster = ClusterSpec::paper_testbed();
    let trace = berkeley_web_trace(&BerkeleySpec {
        requests: 300,
        ..BerkeleySpec::paper_default()
    });
    let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    println!(
        "fig6 berkeley: PF={:.0} J NPF={:.0} J savings={:.1}% spin_ups={}",
        pf.total_energy_j,
        npf.total_energy_j,
        pf.savings_vs(&npf) * 100.0,
        pf.transitions.spin_ups
    );

    let mut group = c.benchmark_group("fig6_berkeley");
    group.sample_size(10);
    group.bench_function("pf", |b| {
        b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace))
    });
    group.bench_function("npf", |b| {
        b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace))
    });
    group.finish();
}

criterion_group!(fig6, berkeley);
criterion_main!(fig6);
