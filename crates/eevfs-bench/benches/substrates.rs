//! Performance benches for the simulation substrates themselves — the
//! design-choice ablations DESIGN.md calls out at the engine level: the
//! stable-FIFO event queue, the O(mu) Poisson sampler, the lazy energy
//! meter, whole-trace generation, placement planning, and a full cluster
//! replay per second of simulated time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disk_model::perf::AccessKind;
use disk_model::{Disk, DiskSpec};
use eevfs::config::{ClusterSpec, EevfsConfig, PlacementPolicy};
use eevfs::placement::place;
use sim_core::{EventQueue, SimRng, SimTime};
use workload::popularity::PopularityTable;
use workload::synthetic::{generate, SyntheticSpec};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_core_event_queue");
    for n in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_drain", n), &n, |b, &n| {
            // Pre-generate pseudo-random times so only queue work is timed.
            let mut rng = SimRng::seed_from_u64(1);
            let times: Vec<u64> = (0..n).map(|_| rng.uniform_range(0, 1_000_000)).collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_micros(t), i);
                }
                let mut count = 0;
                while q.pop().is_some() {
                    count += 1;
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_poisson(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_core_poisson");
    for mu in [1.0f64, 100.0, 1000.0] {
        group.bench_with_input(BenchmarkId::new("sample", mu as u64), &mu, |b, &mu| {
            let mut rng = SimRng::seed_from_u64(2);
            b.iter(|| rng.poisson(mu))
        });
    }
    group.finish();
}

fn bench_disk_model(c: &mut Criterion) {
    c.bench_function("disk_model_submit_sleep_cycle", |b| {
        b.iter(|| {
            let mut d = Disk::new(DiskSpec::ata133_type1());
            let mut t = SimTime::ZERO;
            for i in 0..100u64 {
                let comp = d.submit(t, 10_000_000, AccessKind::Random);
                t = comp.finish + sim_core::SimDuration::from_secs(10);
                if i % 2 == 0 {
                    d.sleep(comp.finish + sim_core::SimDuration::from_secs(1));
                }
            }
            d.finalize(t);
            d.total_joules()
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("workload_generate_paper_default", |b| {
        b.iter(|| generate(&SyntheticSpec::paper_default()))
    });
}

fn bench_placement(c: &mut Criterion) {
    let trace = generate(&SyntheticSpec::paper_default());
    let pop = PopularityTable::from_trace(&trace);
    let mut group = c.benchmark_group("eevfs_placement");
    for policy in [
        PlacementPolicy::PopularityRoundRobin,
        PlacementPolicy::PlainRoundRobin,
        PlacementPolicy::PdcConcentration,
    ] {
        group.bench_with_input(
            BenchmarkId::new("place_1000_files", format!("{policy:?}")),
            &policy,
            |b, &policy| b.iter(|| place(policy, &pop, &[2; 8])),
        );
    }
    group.finish();
}

fn bench_full_replay(c: &mut Criterion) {
    let trace = generate(&SyntheticSpec {
        requests: 1000,
        ..SyntheticSpec::paper_default()
    });
    let cluster = ClusterSpec::paper_testbed();
    let mut group = c.benchmark_group("eevfs_full_replay");
    group.sample_size(10);
    group.bench_function("pf70_1000_requests", |b| {
        b.iter(|| eevfs::driver::run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace))
    });
    group.bench_function("npf_1000_requests", |b| {
        b.iter(|| eevfs::driver::run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace))
    });
    group.finish();
}

criterion_group!(
    substrates,
    bench_event_queue,
    bench_poisson,
    bench_disk_model,
    bench_trace_generation,
    bench_placement,
    bench_full_replay
);
criterion_main!(substrates);
