//! Criterion bench for the Fig 5 response-time experiments.
//!
//! Prints mean PF/NPF response time per swept parameter — the paper's
//! penalty analysis ("121% increase in response time [at 1 MB], ... only a
//! 4% increase [at 25 MB]") — and times the simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eevfs::config::{ClusterSpec, EevfsConfig};
use eevfs::driver::run_cluster;
use sim_core::SimDuration;
use workload::synthetic::{generate, SyntheticSpec};

const BENCH_REQUESTS: u32 = 300;

fn spec() -> SyntheticSpec {
    SyntheticSpec {
        requests: BENCH_REQUESTS,
        ..SyntheticSpec::paper_default()
    }
}

fn response_vs_everything(c: &mut Criterion) {
    let cluster = ClusterSpec::paper_testbed();
    let mut group = c.benchmark_group("fig5_response");

    for mb in [1u64, 10, 25] {
        // The paper omits 50 MB here for the same queueing reason.
        let trace = generate(&SyntheticSpec {
            mean_size_bytes: mb * 1_000_000,
            ..spec()
        });
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
        let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
        println!(
            "fig5a size={mb}MB: rt_pf={:.3}s rt_npf={:.3}s penalty={:+.1}%",
            pf.response.mean_s,
            npf.response.mean_s,
            pf.response_penalty_vs(&npf) * 100.0
        );
        group.bench_with_input(BenchmarkId::new("size_mb", mb), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(70), t).response)
        });
    }

    for mu in [1u64, 10, 100, 1000] {
        let trace = generate(&SyntheticSpec {
            mu: mu as f64,
            ..spec()
        });
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
        let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
        println!(
            "fig5b mu={mu}: rt_pf={:.3}s rt_npf={:.3}s penalty={:+.1}%",
            pf.response.mean_s,
            npf.response.mean_s,
            pf.response_penalty_vs(&npf) * 100.0
        );
        group.bench_with_input(BenchmarkId::new("mu", mu), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(70), t).response)
        });
    }

    for ms in [0u64, 350, 700, 1000] {
        let trace = generate(&SyntheticSpec {
            inter_arrival: SimDuration::from_millis(ms),
            ..spec()
        });
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
        let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
        println!(
            "fig5c delay={ms}ms: rt_pf={:.3}s rt_npf={:.3}s penalty={:+.1}%",
            pf.response.mean_s,
            npf.response.mean_s,
            pf.response_penalty_vs(&npf) * 100.0
        );
        group.bench_with_input(BenchmarkId::new("delay_ms", ms), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(70), t).response)
        });
    }

    let trace = generate(&spec());
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    for k in [10u32, 40, 70, 100] {
        let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(k), &trace);
        println!(
            "fig5d k={k}: rt_pf={:.3}s rt_npf={:.3}s penalty={:+.1}%",
            pf.response.mean_s,
            npf.response.mean_s,
            pf.response_penalty_vs(&npf) * 100.0
        );
        group.bench_with_input(BenchmarkId::new("prefetch_k", k), &trace, |b, t| {
            b.iter(|| run_cluster(&cluster, &EevfsConfig::paper_pf(k), t).response)
        });
    }

    group.finish();
}

criterion_group!(
    name = fig5;
    config = Criterion::default().sample_size(10);
    targets = response_vs_everything
);
criterion_main!(fig5);
