//! CLI-level acceptance tests for the `harness` binary: error paths must
//! exit non-zero (CI pipelines gate on exit codes, not log scraping), and
//! the `trace` subcommand must be a pure function of its seed.

use std::path::PathBuf;
use std::process::{Command, Output};

fn harness(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_harness"))
        .args(args)
        .output()
        .expect("spawn harness")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eevfs-harness-cli-{}-{name}", std::process::id()))
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = harness(&["frobnicate"]);
    assert!(!out.status.success(), "unknown command must fail the run");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "stderr: {err}");
}

#[test]
fn bad_flag_exits_nonzero() {
    let out = harness(&["--bogus", "trace"]);
    assert!(!out.status.success(), "unknown flag must fail the run");
    let out = harness(&["--requests"]);
    assert!(!out.status.success(), "missing flag value must fail");
    let out = harness(&["--requests", "many", "trace"]);
    assert!(!out.status.success(), "unparsable value must fail");
}

#[test]
fn unwritable_trace_out_exits_nonzero() {
    let out = harness(&[
        "--requests",
        "40",
        "--trace-out",
        "/nonexistent-dir/trace.jsonl",
        "trace",
    ]);
    assert!(!out.status.success(), "unwritable output must fail the run");
}

#[test]
fn trace_is_bit_identical_across_same_seed_runs() {
    let (p1, p2) = (temp_path("t1.jsonl"), temp_path("t2.jsonl"));
    let run = |p: &PathBuf| {
        let out = harness(&[
            "--requests",
            "150",
            "--seed",
            "7",
            "--trace-out",
            p.to_str().expect("utf8 path"),
            "trace",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let (stdout1, stdout2) = (run(&p1), run(&p2));
    let (j1, j2) = (
        std::fs::read(&p1).expect("read t1"),
        std::fs::read(&p2).expect("read t2"),
    );
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
    assert!(!j1.is_empty(), "trace JSONL must not be empty");
    assert_eq!(j1, j2, "same-seed JSONL traces must be byte-identical");
    assert_eq!(stdout1, stdout2, "same-seed reports must be byte-identical");
    let text = String::from_utf8(stdout1).expect("utf8 report");
    // The report carries all three promised views: the timeline, the
    // prediction score, and a followable request.
    assert!(text.contains("power/state timeline"), "{text}");
    assert!(text.contains("prediction accuracy:"), "{text}");
    assert!(text.contains("RequestArrive"), "{text}");
    assert!(text.contains("RequestComplete"), "{text}");
    let jsonl = String::from_utf8(j1).expect("utf8 jsonl");
    assert!(jsonl.contains("DiskTransition"), "trace must cover disks");
}
