//! CLI-level acceptance tests for the `harness` binary: error paths must
//! exit non-zero (CI pipelines gate on exit codes, not log scraping), and
//! the `trace` subcommand must be a pure function of its seed.

use std::path::PathBuf;
use std::process::{Command, Output};

fn harness(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_harness"))
        .args(args)
        .output()
        .expect("spawn harness")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eevfs-harness-cli-{}-{name}", std::process::id()))
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = harness(&["frobnicate"]);
    assert!(!out.status.success(), "unknown command must fail the run");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "stderr: {err}");
}

#[test]
fn bad_flag_exits_nonzero() {
    let out = harness(&["--bogus", "trace"]);
    assert!(!out.status.success(), "unknown flag must fail the run");
    let out = harness(&["--requests"]);
    assert!(!out.status.success(), "missing flag value must fail");
    let out = harness(&["--requests", "many", "trace"]);
    assert!(!out.status.success(), "unparsable value must fail");
}

#[test]
fn unwritable_trace_out_exits_nonzero() {
    let out = harness(&[
        "--requests",
        "40",
        "--trace-out",
        "/nonexistent-dir/trace.jsonl",
        "trace",
    ]);
    assert!(!out.status.success(), "unwritable output must fail the run");
}

#[test]
fn report_is_byte_identical_across_jobs_and_gates_regressions() {
    let (p1, p4) = (temp_path("r1.json"), temp_path("r4.json"));
    let run = |path: &PathBuf, jobs: &str, extra: &[&str]| {
        let mut args = vec![
            "--requests",
            "60",
            "--seed",
            "7",
            "--jobs",
            jobs,
            "--json",
            path.to_str().expect("utf8 path"),
        ];
        args.extend_from_slice(extra);
        args.push("report");
        harness(&args)
    };
    let out1 = run(&p1, "1", &[]);
    assert!(
        out1.status.success(),
        "{}",
        String::from_utf8_lossy(&out1.stderr)
    );
    let out4 = run(&p4, "4", &[]);
    assert!(
        out4.status.success(),
        "{}",
        String::from_utf8_lossy(&out4.stderr)
    );
    let (j1, j4) = (
        std::fs::read(&p1).expect("read r1"),
        std::fs::read(&p4).expect("read r4"),
    );
    assert!(!j1.is_empty(), "REPORT json must not be empty");
    assert_eq!(
        j1, j4,
        "--jobs 1 and --jobs 4 reports must be byte-identical"
    );
    let text = String::from_utf8(out1.stdout).expect("utf8 report");
    for needle in [
        "energy component tree",
        "joules per request",
        "per-file energy vs hotness",
        "per-disk residency",
        "byte-identical: true",
    ] {
        assert!(text.contains(needle), "missing {needle}: {text}");
    }

    // Gate against our own report: identical ⇒ pass.
    let base = p1.to_str().expect("utf8 path").to_string();
    let gate = run(&p4, "2", &["--baseline", &base]);
    assert!(
        gate.status.success(),
        "identical baseline must pass: {}",
        String::from_utf8_lossy(&gate.stderr)
    );
    // An injected energy regression must trip the gate.
    let tripped = run(&p4, "2", &["--baseline", &base, "--inject-regression", "5"]);
    assert!(!tripped.status.success(), "injected regression must fail");
    let err = String::from_utf8_lossy(&tripped.stderr);
    assert!(
        err.contains("REGRESSION") && err.contains("energy_per_request_j"),
        "stderr: {err}"
    );
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p4);
}

#[test]
fn bench_gate_flags_must_come_in_pairs() {
    let out = harness(&["--bench-baseline", "/nonexistent.json", "report"]);
    assert!(!out.status.success(), "half a bench-gate pair must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--bench-current"), "stderr: {err}");
}

#[test]
fn trace_is_bit_identical_across_same_seed_runs() {
    let (p1, p2) = (temp_path("t1.jsonl"), temp_path("t2.jsonl"));
    let run = |p: &PathBuf| {
        let out = harness(&[
            "--requests",
            "150",
            "--seed",
            "7",
            "--trace-out",
            p.to_str().expect("utf8 path"),
            "trace",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let (stdout1, stdout2) = (run(&p1), run(&p2));
    let (j1, j2) = (
        std::fs::read(&p1).expect("read t1"),
        std::fs::read(&p2).expect("read t2"),
    );
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
    assert!(!j1.is_empty(), "trace JSONL must not be empty");
    assert_eq!(j1, j2, "same-seed JSONL traces must be byte-identical");
    assert_eq!(stdout1, stdout2, "same-seed reports must be byte-identical");
    let text = String::from_utf8(stdout1).expect("utf8 report");
    // The report carries all three promised views: the timeline, the
    // prediction score, and a followable request.
    assert!(text.contains("power/state timeline"), "{text}");
    assert!(text.contains("prediction accuracy:"), "{text}");
    assert!(text.contains("RequestArrive"), "{text}");
    assert!(text.contains("RequestComplete"), "{text}");
    let jsonl = String::from_utf8(j1).expect("utf8 jsonl");
    assert!(jsonl.contains("DiskTransition"), "trace must cover disks");
}

#[test]
fn load_is_byte_identical_across_jobs() {
    let (p1, p4) = (temp_path("l1.json"), temp_path("l4.json"));
    let run = |path: &PathBuf, jobs: &str| {
        harness(&[
            "--requests",
            "120",
            "--seed",
            "9",
            "--jobs",
            jobs,
            "--sim-only",
            "--json",
            path.to_str().expect("utf8 path"),
            "load",
        ])
    };
    let out1 = run(&p1, "1");
    assert!(
        out1.status.success(),
        "{}",
        String::from_utf8_lossy(&out1.stderr)
    );
    let out4 = run(&p4, "4");
    assert!(
        out4.status.success(),
        "{}",
        String::from_utf8_lossy(&out4.stderr)
    );
    let (j1, j4) = (
        std::fs::read(&p1).expect("read l1"),
        std::fs::read(&p4).expect("read l4"),
    );
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p4);
    assert!(!j1.is_empty(), "BENCH_runtime json must not be empty");
    assert_eq!(
        j1, j4,
        "--jobs 1 and --jobs 4 load snapshots must be byte-identical"
    );
    let text = String::from_utf8(out1.stdout).expect("utf8 report");
    for needle in [
        "saturation curve",
        "deviation cells",
        "byte-identical: true",
        "saturation gate passed",
    ] {
        assert!(text.contains(needle), "missing {needle}: {text}");
    }
}

#[test]
fn load_saturation_gate_trips_on_impossible_p99_bound() {
    let path = temp_path("lgate.json");
    // A 0 ms p99 bound is unsatisfiable: the gate must trip and the run
    // must exit non-zero, because CI consumes exit codes, not tables.
    let out = harness(&[
        "--requests",
        "120",
        "--seed",
        "9",
        "--sim-only",
        "--gate-p99-ms",
        "0",
        "--json",
        path.to_str().expect("utf8 path"),
        "load",
    ]);
    let _ = std::fs::remove_file(&path);
    assert!(!out.status.success(), "0 ms p99 bound must trip the gate");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("saturation gate"), "stderr: {err}");
}
