//! # eevfs-bench
//!
//! Experiment harness reproducing every figure in the EEVFS paper's
//! evaluation (§VI), plus the ablations DESIGN.md calls out.
//!
//! * [`sweeps`] — the Table II parameter sweeps. One sweep produces the
//!   inputs for three figures at once, exactly like the paper: Fig 3
//!   (energy), Fig 4 (power-state transitions) and Fig 5 (response time)
//!   are three views of the same runs.
//! * [`figures`] — named entry points, one per paper figure.
//! * [`ablate`] — ablations over the design choices (idle threshold,
//!   hints, write buffer, placement policy, MAID/PDC baselines, disks per
//!   node, the paper's §VII scale-out prediction).
//! * [`power`] — the `eevfs-power` policy-plane sweep: idle predictors ×
//!   cache tiers × workloads, scored against the fixed-threshold
//!   baseline (`harness power`).
//! * [`runner`] — the deterministic parallel engine: fans independent
//!   (grid-point, seed) cells across cores with results byte-identical to
//!   the serial path (DESIGN.md §11).
//! * [`report`] — text tables and JSON dumps for EXPERIMENTS.md.
//! * [`attribution`] — the `harness report` energy-attribution cells:
//!   observed runs folded through `eevfs-audit` into the versioned
//!   `REPORT_sim.json` plus ASCII top-K tables, gated in CI against a
//!   committed baseline.
//!
//! The `harness` binary drives all of it:
//!
//! ```text
//! harness all                  # every figure + ablation, text tables
//! harness fig3a                # one figure
//! harness --jobs 8 sweeps      # fan grid points across 8 workers
//! harness bench                # time the reference grid, serial vs parallel
//! harness --json out.json all
//! ```

#![warn(missing_docs)]
// The fault-path audit (DESIGN.md §13): no bare unwraps outside tests.
#![warn(clippy::unwrap_used)]

pub mod ablate;
pub mod attribution;
pub mod figures;
pub mod load;
pub mod power;
pub mod report;
pub mod runner;
pub mod sweeps;

pub use attribution::build_attribution_report;
pub use figures::{fig3, fig4, fig5, fig6};
pub use load::{run_load_grid, LoadSnapshot};
pub use power::{run_power_grid, PowerPoint};
pub use runner::{GridError, Runner};
pub use sweeps::{ExperimentPoint, SweepParams};
