//! One entry point per paper figure.
//!
//! Fig 3/4/5 are three views of the same sweep runs (energy, transitions,
//! response time), so each `figN` call re-runs the sweep it needs; the
//! harness's `all` mode runs each sweep once and renders all three views
//! from it.

use crate::runner::Runner;
use crate::sweeps::{
    berkeley_experiment, sweep_data_size_on, sweep_inter_arrival_on, sweep_mu_on,
    sweep_prefetch_k_on, ExperimentPoint, SweepParams,
};
use serde::{Deserialize, Serialize};

/// Which sub-figure (which swept parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Panel {
    /// (a) data size.
    DataSize,
    /// (b) the MU value.
    Mu,
    /// (c) inter-arrival delay.
    InterArrival,
    /// (d) number of files to prefetch.
    PrefetchK,
}

impl Panel {
    /// All four panels in paper order.
    pub const ALL: [Panel; 4] = [
        Panel::DataSize,
        Panel::Mu,
        Panel::InterArrival,
        Panel::PrefetchK,
    ];

    /// The x-axis label the paper uses.
    pub fn xlabel(self) -> &'static str {
        match self {
            Panel::DataSize => "Data Size (MB)",
            Panel::Mu => "MU",
            Panel::InterArrival => "Inter-arrival delay (ms)",
            Panel::PrefetchK => "# of files to prefetch",
        }
    }

    /// Runs the underlying sweep serially.
    pub fn run(self, p: &SweepParams) -> Vec<ExperimentPoint> {
        self.run_on(&Runner::serial(), p)
    }

    /// Runs the underlying sweep with its points fanned out on `runner`.
    pub fn run_on(self, runner: &Runner, p: &SweepParams) -> Vec<ExperimentPoint> {
        match self {
            Panel::DataSize => sweep_data_size_on(runner, p),
            Panel::Mu => sweep_mu_on(runner, p),
            Panel::InterArrival => sweep_inter_arrival_on(runner, p),
            Panel::PrefetchK => sweep_prefetch_k_on(runner, p),
        }
    }
}

/// A rendered figure: one row per x value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// Figure id ("Fig 3(a)", ...).
    pub id: String,
    /// What the y axis is.
    pub ylabel: String,
    /// What the x axis is.
    pub xlabel: String,
    /// `(x label, PF value, NPF value)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

impl Figure {
    fn from_points(
        id: &str,
        ylabel: &str,
        xlabel: &str,
        pts: &[ExperimentPoint],
        f: impl Fn(&eevfs::metrics::RunMetrics) -> f64,
    ) -> Figure {
        Figure {
            id: id.into(),
            ylabel: ylabel.into(),
            xlabel: xlabel.into(),
            rows: pts
                .iter()
                .map(|p| (p.label.clone(), f(&p.pf), f(&p.npf)))
                .collect(),
        }
    }
}

/// Fig 3: energy consumption (J) as a function of the panel's parameter.
pub fn fig3(panel: Panel, p: &SweepParams) -> Figure {
    let pts = panel.run(p);
    fig3_view(panel, &pts)
}

/// Fig 3 as a view over already-run sweep points.
pub fn fig3_view(panel: Panel, pts: &[ExperimentPoint]) -> Figure {
    Figure::from_points(
        &format!("Fig 3 ({})", panel.xlabel()),
        "Energy (J)",
        panel.xlabel(),
        pts,
        |m| m.total_energy_j,
    )
}

/// Fig 4: total power-state transitions (PF runs; the paper's NPF column
/// is implicitly zero and is included for completeness).
pub fn fig4(panel: Panel, p: &SweepParams) -> Figure {
    let pts = panel.run(p);
    fig4_view(panel, &pts)
}

/// Fig 4 as a view over already-run sweep points.
pub fn fig4_view(panel: Panel, pts: &[ExperimentPoint]) -> Figure {
    Figure::from_points(
        &format!("Fig 4 ({})", panel.xlabel()),
        "Total state transitions",
        panel.xlabel(),
        pts,
        |m| m.transitions.total() as f64,
    )
}

/// Fig 5: mean file-request response time (s).
pub fn fig5(panel: Panel, p: &SweepParams) -> Figure {
    let pts = panel.run(p);
    fig5_view(panel, &pts)
}

/// Fig 5 as a view over already-run sweep points.
pub fn fig5_view(panel: Panel, pts: &[ExperimentPoint]) -> Figure {
    Figure::from_points(
        &format!("Fig 5 ({})", panel.xlabel()),
        "Response time (s)",
        panel.xlabel(),
        pts,
        |m| m.response.mean_s,
    )
}

/// Fig 6: energy under the Berkeley web trace, PF vs NPF.
pub fn fig6(p: &SweepParams) -> Figure {
    let pt = berkeley_experiment(p);
    Figure {
        id: "Fig 6 (Berkeley web trace)".into(),
        ylabel: "Energy (J)".into(),
        xlabel: "configuration".into(),
        rows: vec![(
            pt.label.clone(),
            pt.pf.total_energy_j,
            pt.npf.total_energy_j,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepParams {
        SweepParams {
            requests: 120,
            ..SweepParams::default()
        }
    }

    #[test]
    fn fig3_rows_are_pf_under_npf() {
        let f = fig3(Panel::Mu, &quick());
        assert_eq!(f.rows.len(), 4);
        for (label, pf, npf) in &f.rows {
            assert!(pf <= npf, "{label}: PF {pf} > NPF {npf}");
        }
    }

    #[test]
    fn fig4_npf_column_is_zero() {
        let f = fig4(Panel::PrefetchK, &quick());
        for (_, _, npf) in &f.rows {
            assert_eq!(*npf, 0.0);
        }
    }

    #[test]
    fn fig6_single_row() {
        let f = fig6(&quick());
        assert_eq!(f.rows.len(), 1);
        let (_, pf, npf) = &f.rows[0];
        assert!(pf < npf);
    }

    #[test]
    fn views_reuse_sweep_points() {
        let pts = Panel::Mu.run(&quick());
        let e = fig3_view(Panel::Mu, &pts);
        let t = fig4_view(Panel::Mu, &pts);
        let r = fig5_view(Panel::Mu, &pts);
        assert_eq!(e.rows.len(), t.rows.len());
        assert_eq!(t.rows.len(), r.rows.len());
        assert!(r.rows.iter().all(|(_, pf, npf)| *pf > 0.0 && *npf > 0.0));
    }

    #[test]
    fn panel_labels_match_paper() {
        assert_eq!(Panel::DataSize.xlabel(), "Data Size (MB)");
        assert_eq!(Panel::Mu.xlabel(), "MU");
        assert_eq!(Panel::ALL.len(), 4);
    }
}
