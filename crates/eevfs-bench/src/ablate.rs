//! Ablations over EEVFS design choices (DESIGN.md §5).
//!
//! These go beyond the paper's own figures: they quantify the individual
//! contributions of the mechanisms (§III/§IV) and run the §II baselines
//! the paper only discusses qualitatively, plus the §VII scale-out
//! prediction ("we believe this number will increase as more disks are
//! added to each EEVFS storage node").

use crate::runner::{GridError, Runner};
use crate::sweeps::SweepParams;
use eevfs::baselines;
use eevfs::config::{ClusterSpec, EevfsConfig};
use eevfs::driver::{run_cluster, run_cluster_resilient, ResilienceSetup};
use eevfs::metrics::RunMetrics;
use fault_model::{FaultPlan, LinkFaultProfile, NetFaultPlan, RpcPolicy};
use serde::{Deserialize, Serialize};
use sim_core::SimDuration;
use workload::synthetic::{generate, SyntheticSpec};

/// A named configuration's run, compared against the NPF baseline on the
/// same trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Configuration name.
    pub name: String,
    /// The run under test.
    pub run: RunMetrics,
    /// Savings vs the sweep's NPF run.
    pub savings: f64,
    /// Response penalty vs NPF.
    pub penalty: f64,
}

/// An ablation: baseline + variants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablation {
    /// What is being ablated.
    pub title: String,
    /// Rows, baseline first.
    pub rows: Vec<AblationRow>,
}

fn trace_default(p: &SweepParams, mu: f64) -> workload::record::Trace {
    generate(&SyntheticSpec {
        requests: p.requests,
        seed: p.seed,
        mu,
        ..SyntheticSpec::paper_default()
    })
}

fn row(
    name: &str,
    cluster: &ClusterSpec,
    cfg: &EevfsConfig,
    trace: &workload::record::Trace,
    npf: &RunMetrics,
) -> AblationRow {
    let run = run_cluster(cluster, cfg, trace);
    AblationRow {
        name: name.into(),
        savings: run.savings_vs(npf),
        penalty: run.response_penalty_vs(npf),
        run,
    }
}

/// Idle threshold sweep (§VI-B: raising the threshold trades savings for
/// fewer transitions).
pub fn ablate_threshold(p: &SweepParams) -> Ablation {
    let cluster = ClusterSpec::paper_testbed();
    let trace = trace_default(p, 1000.0);
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    let mut rows = vec![AblationRow {
        name: "NPF".into(),
        savings: 0.0,
        penalty: 0.0,
        run: npf.clone(),
    }];
    for secs in [1u64, 5, 15, 30, 60] {
        let cfg = baselines::pf_with_threshold(70, SimDuration::from_secs(secs));
        rows.push(row(
            &format!("PF threshold={secs}s"),
            &cluster,
            &cfg,
            &trace,
            &npf,
        ));
    }
    Ablation {
        title: "Disk idle threshold".into(),
        rows,
    }
}

/// Application hints on/off (§IV-C).
pub fn ablate_hints(p: &SweepParams) -> Ablation {
    let cluster = ClusterSpec::paper_testbed();
    let trace = trace_default(p, 1000.0);
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    let rows = vec![
        AblationRow {
            name: "NPF".into(),
            savings: 0.0,
            penalty: 0.0,
            run: npf.clone(),
        },
        row(
            "PF with hints",
            &cluster,
            &EevfsConfig::paper_pf(70),
            &trace,
            &npf,
        ),
        row(
            "PF without hints (timer)",
            &cluster,
            &baselines::pf_without_hints(70),
            &trace,
            &npf,
        ),
    ];
    Ablation {
        title: "Application hints".into(),
        rows,
    }
}

/// Write-buffer area on/off (§III-C) under a mixed read/write workload.
pub fn ablate_write_buffer(p: &SweepParams) -> Ablation {
    let cluster = ClusterSpec::paper_testbed();
    let trace = generate(&SyntheticSpec {
        requests: p.requests,
        seed: p.seed,
        mu: 100.0,
        write_fraction: 0.3,
        ..SyntheticSpec::paper_default()
    });
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    let mut no_wb = EevfsConfig::paper_pf(70);
    no_wb.write_buffer = false;
    let rows = vec![
        AblationRow {
            name: "NPF".into(),
            savings: 0.0,
            penalty: 0.0,
            run: npf.clone(),
        },
        row(
            "PF + write buffer",
            &cluster,
            &EevfsConfig::paper_pf(70),
            &trace,
            &npf,
        ),
        row("PF, writes to data disks", &cluster, &no_wb, &trace, &npf),
    ];
    Ablation {
        title: "Buffer-disk write area (30% writes)".into(),
        rows,
    }
}

/// Placement policies (§III-B vs naive vs PDC).
pub fn ablate_placement(p: &SweepParams) -> Ablation {
    let cluster = ClusterSpec::paper_testbed();
    let trace = trace_default(p, 1000.0);
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    let mut plain = EevfsConfig::paper_pf(70);
    plain.placement = eevfs::config::PlacementPolicy::PlainRoundRobin;
    let rows = vec![
        AblationRow {
            name: "NPF".into(),
            savings: 0.0,
            penalty: 0.0,
            run: npf.clone(),
        },
        row(
            "PF + popularity round-robin",
            &cluster,
            &EevfsConfig::paper_pf(70),
            &trace,
            &npf,
        ),
        row("PF + plain round-robin", &cluster, &plain, &trace, &npf),
        row(
            "PDC concentration + timers",
            &cluster,
            &baselines::pdc(),
            &trace,
            &npf,
        ),
    ];
    Ablation {
        title: "Placement policy".into(),
        rows,
    }
}

/// EEVFS prefetching vs MAID-style on-demand caching (§II "Disk as cache").
pub fn ablate_maid(p: &SweepParams) -> Ablation {
    let cluster = ClusterSpec::paper_testbed();
    let trace = trace_default(p, 100.0);
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    let rows = vec![
        AblationRow {
            name: "NPF".into(),
            savings: 0.0,
            penalty: 0.0,
            run: npf.clone(),
        },
        row(
            "EEVFS PF (look-ahead)",
            &cluster,
            &EevfsConfig::paper_pf(70),
            &trace,
            &npf,
        ),
        row(
            "MAID (on-demand LRU)",
            &cluster,
            &baselines::maid(80_000_000_000),
            &trace,
            &npf,
        ),
        row(
            "Energy-oblivious (PVFS-like)",
            &cluster,
            &baselines::energy_oblivious(),
            &trace,
            &npf,
        ),
    ];
    Ablation {
        title: "Caching strategy".into(),
        rows,
    }
}

/// Disks per node (§VII: savings should grow with more disks per node).
pub fn ablate_scale(p: &SweepParams) -> Ablation {
    let trace = trace_default(p, 1000.0);
    let mut rows = Vec::new();
    for disks in [1usize, 2, 4, 8] {
        let cluster = ClusterSpec::paper_testbed_with(disks);
        let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
        let mut r = row(
            &format!("{disks} data disk(s) per node"),
            &cluster,
            &EevfsConfig::paper_pf(70),
            &trace,
            &npf,
        );
        r.name = format!("{disks} data disk(s)/node (PF vs own NPF)");
        rows.push(r);
    }
    Ablation {
        title: "Scale-out: data disks per node (§VII prediction)".into(),
        rows,
    }
}

/// Striping on/off (§VII future work: performance without losing the
/// savings).
pub fn ablate_striping(p: &SweepParams) -> Ablation {
    let cluster = ClusterSpec::paper_testbed();
    let trace = trace_default(p, 1000.0);
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    let rows = vec![
        AblationRow {
            name: "NPF".into(),
            savings: 0.0,
            penalty: 0.0,
            run: npf.clone(),
        },
        row(
            "PF, whole-file placement",
            &cluster,
            &EevfsConfig::paper_pf(70),
            &trace,
            &npf,
        ),
        row(
            "PF + intra-node striping",
            &cluster,
            &baselines::pf_striped(70),
            &trace,
            &npf,
        ),
    ];
    Ablation {
        title: "Striping (§VII)".into(),
        rows,
    }
}

/// Drive technology (§II related work): stock ATA vs a multi-speed
/// (DRPM-emulated) drive vs a modern nearline drive, all under EEVFS-PF.
pub fn ablate_disk_technology(p: &SweepParams) -> Ablation {
    use disk_model::DiskSpec;
    let trace = trace_default(p, 1000.0);
    let mut rows = Vec::new();
    for (name, spec) in [
        ("stock ATA/133 (the paper's)", DiskSpec::ata133_type1()),
        (
            "multi-speed DRPM emulation",
            DiskSpec::multispeed_emulated(),
        ),
        ("modern nearline SATA", DiskSpec::nearline_sata()),
    ] {
        let mut cluster = ClusterSpec::paper_testbed();
        for node in &mut cluster.nodes {
            node.buffer_disk = spec.clone();
            node.data_disks = vec![spec.clone(); node.data_disks.len()];
        }
        let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
        let mut r = row(name, &cluster, &EevfsConfig::paper_pf(70), &trace, &npf);
        r.name = format!("{name} (PF vs own NPF)");
        rows.push(r);
    }
    Ablation {
        title: "Drive technology (§II): break-even vs savings".into(),
        rows,
    }
}

/// Open-loop vs closed-loop replay (the prototype's replayer feeds
/// response time back into arrival times; the load generator does not).
pub fn ablate_arrival_mode(p: &SweepParams) -> Ablation {
    use eevfs::config::ArrivalMode;
    let cluster = ClusterSpec::paper_testbed();
    let mut rows = Vec::new();
    for (name, mu) in [
        ("MU=100 (full coverage)", 100.0),
        ("MU=1000 (23% misses)", 1000.0),
    ] {
        let trace = trace_default(p, mu);
        for (mode_name, mode) in [
            ("open loop", ArrivalMode::OpenLoop),
            ("closed loop x4", ArrivalMode::ClosedLoop { streams: 4 }),
        ] {
            let mut pf_cfg = EevfsConfig::paper_pf(70);
            pf_cfg.arrival = mode;
            let mut npf_cfg = EevfsConfig::paper_npf();
            npf_cfg.arrival = mode;
            let npf = run_cluster(&cluster, &npf_cfg, &trace);
            let mut r = row(name, &cluster, &pf_cfg, &trace, &npf);
            r.name = format!("{name}, {mode_name}");
            rows.push(r);
        }
    }
    Ablation {
        title: "Replay discipline: open vs closed loop".into(),
        rows,
    }
}

/// Fault injection × replication: the energy/availability trade-off.
///
/// Sweeps the replication factor over a failure-rate grid. Extra copies
/// cost creation-time energy and spread load over more spindles, but they
/// are what keeps `failed_requests` at zero once nodes and disks start
/// dying; the energy-aware selector claws some of the cost back by
/// steering reads to already-spinning replicas.
pub fn ablate_faults(p: &SweepParams) -> Ablation {
    try_ablate_faults_on(&Runner::serial(), p).unwrap_or_else(|e| panic!("{e}"))
}

/// [`ablate_faults`] with the rate × R grid fanned out on `runner`.
/// A cell that dies comes back as a [`GridError`] naming the grid point.
pub fn try_ablate_faults_on(runner: &Runner, p: &SweepParams) -> Result<Ablation, GridError> {
    use eevfs::config::ReplicaSelection;
    use eevfs::driver::run_cluster_faulted;
    use fault_model::FaultSpec;

    let cluster = ClusterSpec::paper_testbed();
    let trace = trace_default(p, 1000.0);
    let horizon = trace
        .records
        .last()
        .map_or(SimDuration::from_secs(600), |r| {
            SimDuration::from_micros(r.at.as_micros()) + SimDuration::from_secs(120)
        });
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    let mut rows = vec![AblationRow {
        name: "NPF healthy".into(),
        savings: 0.0,
        penalty: 0.0,
        run: npf.clone(),
    }];
    // Flattened rate × R grid. Each cell regenerates its rate's plan —
    // plan generation is seeded and cheap next to the simulation, and
    // owning the plan is what makes cells independent of each other.
    let cells: Vec<(f64, u32)> = [0.0f64, 2.0, 8.0]
        .iter()
        .flat_map(|&rate| [1u32, 2, 3].map(|r| (rate, r)))
        .collect();
    rows.extend(runner.try_map(
        &cells,
        |_, &(rate, r)| format!("R={r}, fail rate={rate}/h"),
        |_, &(rate, r)| {
            let plan = if rate == 0.0 {
                FaultPlan::none()
            } else {
                FaultPlan::generate(&FaultSpec {
                    seed: p.seed,
                    horizon,
                    nodes: cluster.node_count() as u32,
                    disks_per_node: 2,
                    disk_fail_per_hour: rate,
                    mean_repair: SimDuration::from_secs(60),
                    node_crash_per_hour: rate / 2.0,
                    mean_restart: SimDuration::from_secs(30),
                    spin_up_fail_per_hour: rate,
                })
            };
            let cfg = EevfsConfig::paper_pf_replicated(70, r);
            let run = run_cluster_faulted(&cluster, &cfg, &trace, &plan);
            AblationRow {
                name: format!("R={r}, fail rate={rate}/h"),
                savings: run.savings_vs(&npf),
                penalty: run.response_penalty_vs(&npf),
                run,
            }
        },
    )?);
    // The selector ablation: random-healthy vs energy-aware at R=2.
    let mut random = EevfsConfig::paper_pf_replicated(70, 2);
    random.replica_selection = ReplicaSelection::RandomHealthy;
    let run = run_cluster(&cluster, &random, &trace);
    rows.push(AblationRow {
        name: "R=2 healthy, random selector".into(),
        savings: run.savings_vs(&npf),
        penalty: run.response_penalty_vs(&npf),
        run,
    });
    Ok(Ablation {
        title: "Fault injection × replication (degraded mode)".into(),
        rows,
    })
}

/// Every ablation in DESIGN.md order.
/// Network resilience grid: drop-rate × retry-policy at R=2 (ISSUE 2).
///
/// Sweeps injected packet-loss profiles against three RPC policies —
/// fail-fast, bounded retries, retries + hedged reads — and records the
/// energy/response-time trade-off of each cell. Hedged reads race a second
/// replica, so their duplicate disk activations show up as extra joules:
/// availability bought with energy, the paper's currency.
pub fn ablate_resilience(p: &SweepParams) -> Ablation {
    try_ablate_resilience_on(&Runner::serial(), p).unwrap_or_else(|e| panic!("{e}"))
}

/// [`ablate_resilience`] with the policy × drop-rate grid fanned out on
/// `runner`. A cell that dies comes back as a [`GridError`] naming the
/// grid point.
pub fn try_ablate_resilience_on(runner: &Runner, p: &SweepParams) -> Result<Ablation, GridError> {
    let cluster = ClusterSpec::paper_testbed();
    let trace = trace_default(p, 1000.0);
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    let cfg = EevfsConfig::paper_pf_replicated(70, 2);
    let mut rows = vec![AblationRow {
        name: "NPF healthy".into(),
        savings: 0.0,
        penalty: 0.0,
        run: npf.clone(),
    }];
    let cells: Vec<(&'static str, RpcPolicy, f64)> = resilience_policies(p.seed)
        .into_iter()
        .flat_map(|(name, policy)| [0.0f64, 0.05, 0.2].map(|drop| (name, policy.clone(), drop)))
        .collect();
    rows.extend(runner.try_map(
        &cells,
        |_, (name, _, drop)| format!("drop={:.0}%, policy={name}", drop * 100.0),
        |_, (policy_name, policy, drop)| {
            let profile = if *drop == 0.0 {
                LinkFaultProfile::none()
            } else {
                LinkFaultProfile::lossy(p.seed, *drop)
            };
            let run = run_cluster_resilient(
                &cluster,
                &cfg,
                &trace,
                &FaultPlan::none(),
                ResilienceSetup {
                    net_plan: &NetFaultPlan::none(),
                    profile: &profile,
                    policy,
                },
            );
            AblationRow {
                name: format!("drop={:.0}%, policy={policy_name}", drop * 100.0),
                savings: run.savings_vs(&npf),
                penalty: run.response_penalty_vs(&npf),
                run,
            }
        },
    )?);
    Ok(Ablation {
        title: "Network drop rate × RPC policy (resilience)".into(),
        rows,
    })
}

/// Corruption rate × replication × scrub policy: the integrity grid
/// (ISSUE 4).
///
/// Injects seeded latent sector errors and bit flips at two rates and
/// runs each rate against R ∈ {1, 2} with scrubbing off and on. What the
/// grid shows: checksum-on-read alone leaves blocks latent, piggyback
/// scrubbing converts latent damage into detections while the disk is
/// already spinning, and a second replica is what turns a detection into
/// a repair instead of data loss — at R ≥ 2 with scrubbing the
/// unrecoverable count is zero. The last row crashes a node mid-run so
/// the journal-replay counters appear in the same report.
pub fn ablate_scrub(p: &SweepParams) -> Ablation {
    try_ablate_scrub_on(&Runner::serial(), p).unwrap_or_else(|e| panic!("{e}"))
}

/// [`ablate_scrub`] with the rate × R × scrub grid fanned out on
/// `runner`. A cell that dies comes back as a [`GridError`] naming the
/// grid point.
pub fn try_ablate_scrub_on(runner: &Runner, p: &SweepParams) -> Result<Ablation, GridError> {
    use eevfs::driver::{run_cluster_durable, DurabilitySetup};
    use eevfs::scrub::ScrubPolicy;
    use fault_model::{CorruptionPlan, CorruptionSpec, CrashPlan};
    use sim_core::SimTime;

    let cluster = ClusterSpec::paper_testbed();
    let trace = trace_default(p, 1000.0);
    let horizon = trace
        .records
        .last()
        .map_or(SimDuration::from_secs(600), |r| {
            SimDuration::from_micros(r.at.as_micros()) + SimDuration::from_secs(120)
        });
    // Small enough that a 256-block piggyback pass covers a meaningful
    // slice of each disk within one run.
    let blocks_per_disk = 2048u32;
    let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
    let mut rows = vec![AblationRow {
        name: "NPF healthy".into(),
        savings: 0.0,
        penalty: 0.0,
        run: npf.clone(),
    }];
    // Flattened rate × R × scrub grid; each cell regenerates its rate's
    // seeded corruption plan so cells own their inputs outright.
    let cells: Vec<(f64, u32, &'static str, ScrubPolicy)> = [2.0f64, 10.0]
        .iter()
        .flat_map(|&rate| {
            [1u32, 2].into_iter().flat_map(move |r| {
                [
                    ("scrub=off", ScrubPolicy::Off),
                    ("scrub=piggyback", ScrubPolicy::piggyback_default()),
                ]
                .map(|(scrub_name, scrub)| (rate, r, scrub_name, scrub))
            })
        })
        .collect();
    rows.extend(runner.try_map(
        &cells,
        |_, &(rate, r, scrub_name, _)| format!("R={r}, rot={rate}/disk-h, {scrub_name}"),
        |_, &(rate, r, scrub_name, scrub)| {
            let corruption = CorruptionPlan::generate(&CorruptionSpec {
                seed: p.seed,
                horizon,
                nodes: cluster.node_count() as u32,
                disks_per_node: 2,
                blocks_per_disk,
                lse_per_disk_hour: rate,
                flip_per_disk_hour: rate,
            });
            let cfg = EevfsConfig::paper_pf_replicated(70, r);
            let run = run_cluster_durable(
                &cluster,
                &cfg,
                &trace,
                &FaultPlan::none(),
                DurabilitySetup {
                    corruption: &corruption,
                    crashes: &CrashPlan::none(),
                    scrub,
                    blocks_per_disk,
                },
            );
            AblationRow {
                name: format!("R={r}, rot={rate}/disk-h, {scrub_name}"),
                savings: run.savings_vs(&npf),
                penalty: run.response_penalty_vs(&npf),
                run,
            }
        },
    )?);
    // Crash cell: kill a node mid-run under the heavy-rot scrubbed R=2
    // config; its restart replays the buffer-disk journal.
    let corruption = CorruptionPlan::generate(&CorruptionSpec {
        seed: p.seed,
        horizon,
        nodes: cluster.node_count() as u32,
        disks_per_node: 2,
        blocks_per_disk,
        lse_per_disk_hour: 10.0,
        flip_per_disk_hour: 10.0,
    });
    let mid = SimTime::ZERO + SimDuration::from_micros(horizon.as_micros() / 2);
    let crashes = CrashPlan::one(2, mid, mid + SimDuration::from_secs(30));
    let run = run_cluster_durable(
        &cluster,
        &EevfsConfig::paper_pf_replicated(70, 2),
        &trace,
        &FaultPlan::none(),
        DurabilitySetup {
            corruption: &corruption,
            crashes: &crashes,
            scrub: ScrubPolicy::piggyback_default(),
            blocks_per_disk,
        },
    );
    rows.push(AblationRow {
        name: "R=2, rot=10/disk-h, scrub=piggyback, node crash mid-run".into(),
        savings: run.savings_vs(&npf),
        penalty: run.response_penalty_vs(&npf),
        run,
    });
    Ok(Ablation {
        title: "Corruption rate × replication × scrub (integrity)".into(),
        rows,
    })
}

/// The three retry policies the resilience grid compares.
pub fn resilience_policies(seed: u64) -> Vec<(&'static str, RpcPolicy)> {
    let deadline = SimDuration::from_secs(60);
    let per_try = SimDuration::from_secs(3);
    vec![
        (
            "no-retry",
            RpcPolicy {
                seed,
                ..RpcPolicy::no_retry(deadline)
            },
        ),
        (
            "retry",
            RpcPolicy {
                seed,
                ..RpcPolicy::retrying(deadline, per_try, 4)
            },
        ),
        (
            "retry+hedge",
            RpcPolicy {
                seed,
                ..RpcPolicy::hedged(deadline, per_try, 4, SimDuration::from_secs(4))
            },
        ),
    ]
}

/// Every ablation study, in report order.
pub fn all_ablations(p: &SweepParams) -> Vec<Ablation> {
    all_ablations_on(&Runner::serial(), p)
}

/// [`all_ablations`] with whole studies fanned out on `runner` (each
/// study is one work item; the studies are mutually independent).
pub fn all_ablations_on(runner: &Runner, p: &SweepParams) -> Vec<Ablation> {
    let studies: [fn(&SweepParams) -> Ablation; 12] = [
        ablate_threshold,
        ablate_hints,
        ablate_write_buffer,
        ablate_placement,
        ablate_maid,
        ablate_scale,
        ablate_striping,
        ablate_disk_technology,
        ablate_arrival_mode,
        ablate_faults,
        ablate_resilience,
        ablate_scrub,
    ];
    runner.map(&studies, |_, study| study(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepParams {
        SweepParams {
            requests: 120,
            ..SweepParams::default()
        }
    }

    #[test]
    fn threshold_ablation_trades_transitions_for_savings() {
        let a = ablate_threshold(&quick());
        assert_eq!(a.rows.len(), 6);
        // Transitions at 1 s threshold >= transitions at 60 s threshold.
        let t1 = a.rows[1].run.transitions.total();
        let t60 = a.rows[5].run.transitions.total();
        assert!(t1 >= t60, "t1={t1} t60={t60}");
    }

    #[test]
    fn scale_ablation_savings_grow_with_disks() {
        let a = ablate_scale(&quick());
        let s: Vec<f64> = a.rows.iter().map(|r| r.savings).collect();
        assert!(
            s[3] > s[0],
            "8 disks/node should save a larger fraction than 1: {s:?}"
        );
    }

    #[test]
    fn resilience_ablation_has_full_grid() {
        let a = ablate_resilience(&quick());
        // NPF baseline + 3 policies × 3 drop rates.
        assert_eq!(a.rows.len(), 10);
        // Clean-network cells inject nothing.
        let clean = &a.rows[1];
        assert_eq!(clean.run.resilience.rpc_drops, 0);
        // Lossy cells with retries recover what fail-fast loses.
        let lossy_noretry = a
            .rows
            .iter()
            .find(|r| r.name.contains("drop=20%") && r.name.contains("no-retry"))
            .expect("grid cell present");
        let lossy_retry = a
            .rows
            .iter()
            .find(|r| r.name.contains("drop=20%") && r.name.ends_with("policy=retry"))
            .expect("grid cell present");
        assert!(lossy_noretry.run.failed_requests > 0);
        assert!(lossy_retry.run.failed_requests < lossy_noretry.run.failed_requests);
        assert!(lossy_retry.run.resilience.rpc_retries > 0);
        // The hedged cell actually hedges under loss.
        let hedged = a
            .rows
            .iter()
            .find(|r| r.name.contains("drop=20%") && r.name.contains("retry+hedge"))
            .expect("grid cell present");
        assert!(hedged.run.resilience.hedges > 0);
    }

    #[test]
    fn maid_ablation_runs_all_configs() {
        let a = ablate_maid(&quick());
        assert_eq!(a.rows.len(), 4);
        // Energy-oblivious config saves nothing (same energy as NPF, which
        // also never sleeps — modulo placement differences).
        let oblivious = &a.rows[3];
        assert!(
            oblivious.savings.abs() < 0.05,
            "savings {}",
            oblivious.savings
        );
        // EEVFS prefetching beats on-demand MAID on a skewed read trace.
        assert!(a.rows[1].savings >= a.rows[2].savings - 0.02);
    }

    #[test]
    fn arrival_mode_ablation_shows_the_feedback() {
        let a = ablate_arrival_mode(&quick());
        assert_eq!(a.rows.len(), 4);
        // Full coverage saves under both disciplines.
        assert!(a.rows[0].savings > 0.08, "{:?}", a.rows[0].savings);
        assert!(a.rows[1].savings > 0.08, "{:?}", a.rows[1].savings);
        // With misses, closed loop erodes the open-loop savings.
        assert!(a.rows[3].savings < a.rows[2].savings, "{a:?}");
    }

    #[test]
    fn multispeed_drive_saves_at_least_as_much() {
        let a = ablate_disk_technology(&quick());
        // Smaller break-even means the same windows save no less energy
        // relative to that drive's own NPF... except the DRPM "standby"
        // draws more than a true standby; what must hold is that all
        // configurations save something and the run completes.
        for r in &a.rows {
            assert!(r.savings > 0.0, "{}: {}", r.name, r.savings);
        }
    }

    #[test]
    fn striping_ablation_is_not_slower() {
        let a = ablate_striping(&quick());
        let plain = &a.rows[1];
        let striped = &a.rows[2];
        assert!(striped.penalty <= plain.penalty + 0.10, "{a:?}");
        assert!(striped.savings > 0.0);
    }

    #[test]
    fn faults_ablation_shows_replication_absorbing_failures() {
        let a = ablate_faults(&quick());
        assert_eq!(a.rows.len(), 11, "{a:?}");
        // Healthy grid (rows 1..=3): no faults fire, nothing is lost.
        for r in &a.rows[1..=3] {
            assert_eq!(r.run.fault_events, 0, "{}", r.name);
            assert_eq!(r.run.failed_requests, 0, "{}", r.name);
        }
        // Heavy grid (rows 7..=9): faults fire; replication absorbs at
        // least as many requests as the unreplicated layout loses.
        let (r1, r2, r3) = (&a.rows[7], &a.rows[8], &a.rows[9]);
        assert!(r1.run.fault_events > 0, "{r1:?}");
        assert!(r2.run.failed_requests <= r1.run.failed_requests, "{a:?}");
        assert_eq!(
            r3.run.failed_requests, 0,
            "three copies over eight nodes: {r3:?}"
        );
    }

    #[test]
    fn scrub_ablation_shows_replication_repairing_detections() {
        // 120 requests leave the buffer unmissed — the piggyback scrubber
        // rides physical data-disk accesses, so give it some.
        let a = ablate_scrub(&SweepParams {
            requests: 300,
            ..SweepParams::default()
        });
        // NPF baseline + 2 rates × 2 R × 2 scrub policies + crash row.
        assert_eq!(a.rows.len(), 10, "{a:?}");
        for r in &a.rows[1..] {
            let d = &r.run.durability;
            assert!(d.corruptions_landed > 0, "{}: {d:?}", r.name);
            // Whatever was detected was either repaired or counted lost.
            assert_eq!(
                d.detected_on_read + d.detected_by_scrub,
                d.repaired_blocks + d.unrecoverable_blocks,
                "{}: {d:?}",
                r.name
            );
            // Two healthy copies cover every detection. (The crash row is
            // exempt: a detection while the replica's node is down has no
            // repair source.)
            if r.name.contains("R=2") && !r.name.contains("crash") {
                assert_eq!(d.unrecoverable_blocks, 0, "{}: {d:?}", r.name);
            }
            if r.name.contains("scrub=piggyback") {
                assert!(d.scrub_passes > 0, "{}: {d:?}", r.name);
                assert!(d.scrubbed_blocks > 0, "{}: {d:?}", r.name);
                assert!(r.run.scrub_energy_j > 0.0, "{}", r.name);
            } else {
                assert_eq!(d.scrub_passes, 0, "{}: {d:?}", r.name);
            }
        }
        // Scrubbing surfaces latent damage the read path alone missed.
        let off = &a.rows[7].run.durability; // R=2, rot=10, scrub=off
        let on = &a.rows[8].run.durability; // R=2, rot=10, scrub=piggyback
        assert!(on.detected_by_scrub > 0, "{on:?}");
        assert!(on.latent_at_end < off.latent_at_end, "{off:?} vs {on:?}");
        // The crash row replayed the buffer-disk journal.
        let crash = &a.rows[9].run.durability;
        assert!(crash.journal_replays >= 1, "{crash:?}");
        assert!(crash.journal_bytes_replayed > 0, "{crash:?}");
    }

    #[test]
    fn write_buffer_ablation_buffers_writes() {
        let a = ablate_write_buffer(&quick());
        assert!(a.rows[1].run.writes_buffered > 0);
        assert_eq!(a.rows[2].run.writes_buffered, 0);
    }
}
