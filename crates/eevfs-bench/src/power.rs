//! The `harness power` experiment: idle-predictor × cache-tier sweep.
//!
//! Every other experiment in this crate drives the legacy static power
//! manager. This module sweeps the `eevfs-power` policy plane instead:
//! each grid cell runs one workload under one
//! [`PredictorConfig`] × [`TierConfig`] combination via
//! [`run_cluster_powered`], and the report compares energy, response
//! time, and sleep-prediction accuracy against the paper's fixed
//! 5-second threshold with no cache tier (the `fixed/none` row, which
//! reproduces the static baseline).
//!
//! The grid fans out on the deterministic [`Runner`], so results are
//! byte-identical at any `--jobs` count — `harness power` verifies this
//! on every invocation, the same contract `harness bench` enforces.

use crate::runner::Runner;
use crate::sweeps::SweepParams;
use eevfs::config::{ClusterSpec, EevfsConfig};
use eevfs::driver::run_cluster_powered;
use eevfs::metrics::RunMetrics;
use eevfs_power::{EvictionPolicy, PowerPolicy, PredictorConfig, TierConfig};
use serde::{Deserialize, Serialize};
use workload::berkeley::{berkeley_web_trace, BerkeleySpec};
use workload::record::Trace;
use workload::synthetic::{generate, SyntheticSpec};

/// One grid cell: a workload under one predictor × tier policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerPoint {
    /// Workload name ("synthetic" or "berkeley").
    pub workload: String,
    /// Predictor label ([`PredictorConfig::label`]).
    pub predictor: String,
    /// Tier label ([`TierConfig::label`]).
    pub tier: String,
    /// The full run under this policy (tier counters in
    /// [`RunMetrics::tier`], sleep scoring in [`RunMetrics::prediction`]).
    pub run: RunMetrics,
}

impl PowerPoint {
    /// Energy saved vs `baseline`, as a fraction (positive = cheaper).
    pub fn savings_vs(&self, baseline: &PowerPoint) -> f64 {
        if baseline.run.total_energy_j <= 0.0 {
            return 0.0;
        }
        1.0 - self.run.total_energy_j / baseline.run.total_energy_j
    }
}

/// The predictors every sweep exercises: the paper's fixed threshold,
/// the EWMA idle-window estimator, and the epsilon-greedy bandit.
pub fn predictor_grid() -> Vec<PredictorConfig> {
    vec![
        PredictorConfig::FixedThreshold { threshold_s: 5.0 },
        PredictorConfig::EwmaIdleWindow {
            alpha: 0.25,
            margin: 1.5,
        },
        PredictorConfig::BanditThreshold { epsilon: 0.1 },
    ]
}

/// The tier configurations every sweep exercises: no tier (the
/// baseline), a generous per-node DRAM LRU, and a small DRAM in front
/// of a large SSD tier under sampled-LFU (the small DRAM evicts often,
/// so reuse traffic actually reaches the SSD).
pub fn tier_grid() -> Vec<TierConfig> {
    vec![
        TierConfig::none(),
        TierConfig {
            dram_bytes: 256 << 20,
            ssd_bytes: 0,
            policy: EvictionPolicy::Lru,
        },
        TierConfig {
            dram_bytes: 64 << 20,
            ssd_bytes: 4 << 30,
            policy: EvictionPolicy::SampledLfu { sample: 5 },
        },
    ]
}

/// The two reference workloads: the paper-default synthetic trace and
/// the Berkeley web trace (both scaled to `p.requests`).
fn workloads(p: &SweepParams) -> Vec<(String, Trace)> {
    vec![
        (
            "synthetic".into(),
            generate(&SyntheticSpec {
                requests: p.requests,
                seed: p.seed,
                ..SyntheticSpec::paper_default()
            }),
        ),
        (
            "berkeley".into(),
            berkeley_web_trace(&BerkeleySpec {
                requests: p.requests,
                seed: p.seed,
                ..BerkeleySpec::paper_default()
            }),
        ),
    ]
}

/// Runs the full predictor × tier × workload grid serially.
pub fn run_power_grid(p: &SweepParams) -> Vec<PowerPoint> {
    run_power_grid_on(&Runner::serial(), p)
}

/// [`run_power_grid`] with cells fanned out on `runner`. Cell order (and
/// therefore output order) is fixed regardless of job count.
pub fn run_power_grid_on(runner: &Runner, p: &SweepParams) -> Vec<PowerPoint> {
    let cluster = ClusterSpec::paper_testbed();
    let mut cells = Vec::new();
    for (wname, trace) in workloads(p) {
        for pred in predictor_grid() {
            for tier in tier_grid() {
                cells.push((wname.clone(), trace.clone(), pred.clone(), tier));
            }
        }
    }
    runner.map(&cells, |_, (wname, trace, pred, tier)| {
        let policy = PowerPolicy {
            predictor: pred.clone(),
            tier: *tier,
            ..PowerPolicy::paper_fixed()
        };
        let run = run_cluster_powered(&cluster, &EevfsConfig::paper_pf(70), trace, &policy);
        PowerPoint {
            workload: wname.clone(),
            predictor: pred.label().to_string(),
            tier: tier.label(),
            run,
        }
    })
}

/// Renders the sweep as one table per workload, each row scored against
/// that workload's `fixed/none` baseline.
pub fn render_power_report(points: &[PowerPoint]) -> String {
    let mut out = String::new();
    let mut workloads: Vec<&str> = Vec::new();
    for pt in points {
        if !workloads.contains(&pt.workload.as_str()) {
            workloads.push(&pt.workload);
        }
    }
    for w in workloads {
        let rows: Vec<&PowerPoint> = points.iter().filter(|pt| pt.workload == w).collect();
        let baseline = rows
            .iter()
            .find(|pt| pt.predictor == "fixed" && pt.tier == "none")
            .copied();
        out.push_str(&format!("power sweep: {w} workload\n"));
        out.push_str(&format!(
            "{:>8} {:>18} {:>10} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>8} {:>7}\n",
            "pred",
            "tier",
            "energy J",
            "save %",
            "mean s",
            "acc %",
            "sleeps",
            "denied",
            "dram hit",
            "ssd hit",
            "cycles"
        ));
        for pt in &rows {
            let savings = baseline
                .map(|b| pt.savings_vs(b) * 100.0)
                .unwrap_or_default();
            let pred = &pt.run.prediction;
            out.push_str(&format!(
                "{:>8} {:>18} {:>10.0} {:>8.1} {:>8.3} {:>7.1} {:>7} {:>7} {:>9} {:>8} {:>7}\n",
                pt.predictor,
                pt.tier,
                pt.run.total_energy_j,
                savings,
                pt.run.response.mean_s,
                pred.accuracy() * 100.0,
                pred.sleeps,
                pt.run.tier.sleeps_denied,
                pt.run.tier.dram_hits,
                pt.run.tier.ssd_hits,
                pt.run.tier.spin_cycles,
            ));
        }
        out.push('\n');
    }
    out
}

/// True when at least one adaptive predictor (anything but `fixed`)
/// beats the `fixed` row on energy at equal-or-better mean response
/// time, compared tier-for-tier on the same workload. This is the
/// acceptance gate EXPERIMENTS.md records.
pub fn adaptive_beats_fixed(points: &[PowerPoint]) -> bool {
    points.iter().any(|pt| {
        if pt.predictor == "fixed" {
            return false;
        }
        points
            .iter()
            .find(|b| b.predictor == "fixed" && b.tier == pt.tier && b.workload == pt.workload)
            .is_some_and(|b| {
                pt.run.total_energy_j < b.run.total_energy_j
                    && pt.run.response.mean_s <= b.run.response.mean_s
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> SweepParams {
        SweepParams {
            requests: 120,
            ..SweepParams::default()
        }
    }

    #[test]
    fn grid_covers_every_combination_once() {
        let pts = run_power_grid(&small_params());
        assert_eq!(pts.len(), 2 * 3 * 3);
        for pred in ["fixed", "ewma", "bandit"] {
            for w in ["synthetic", "berkeley"] {
                assert_eq!(
                    pts.iter()
                        .filter(|pt| pt.predictor == pred && pt.workload == w)
                        .count(),
                    3,
                    "{pred} on {w}"
                );
            }
        }
    }

    #[test]
    fn parallel_grid_is_byte_identical_to_serial() {
        let p = small_params();
        let serial = run_power_grid_on(&Runner::serial(), &p);
        let parallel = run_power_grid_on(&Runner::new(2), &p);
        let a = serde_json::to_string(&serial).expect("serialise");
        let b = serde_json::to_string(&parallel).expect("serialise");
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_grid_replay_is_bit_identical() {
        let p = small_params();
        let a = serde_json::to_string(&run_power_grid(&p)).expect("serialise");
        let b = serde_json::to_string(&run_power_grid(&p)).expect("serialise");
        assert_eq!(a, b, "same-seed power grid must replay bit-identically");
    }

    #[test]
    fn tiers_absorb_reads_and_report_hits() {
        let pts = run_power_grid(&small_params());
        let tiered = pts
            .iter()
            .find(|pt| pt.tier != "none" && pt.workload == "berkeley")
            .expect("tiered berkeley row");
        assert!(
            tiered.run.tier.dram_hits > 0,
            "zipf reuse should hit the DRAM tier: {:?}",
            tiered.run.tier
        );
    }

    #[test]
    fn report_names_every_row() {
        let pts = run_power_grid(&small_params());
        let report = render_power_report(&pts);
        for label in ["fixed", "ewma", "bandit", "none"] {
            assert!(report.contains(label), "missing {label} in:\n{report}");
        }
    }
}
