//! The overload plane's measurement side: closed-loop load sweeps,
//! throughput-vs-offered-load saturation curves, and the versioned
//! `BENCH_runtime.json` snapshot behind `harness load`.
//!
//! Two halves:
//!
//! * **Sim grid** — a closed-loop offered-load sweep over the DES
//!   (stream counts × gated/ungated), fanned across the [`Runner`] and
//!   byte-identical at any `--jobs` count, plus the four "known
//!   deviation" figure cells re-run closed-loop (DESIGN.md §2 blamed all
//!   four on the open-loop client; these cells measure what survives).
//! * **Runtime campaign** — the loopback TCP prototype driven past its
//!   admission capacity by the closed-loop load generator
//!   (`eevfs_runtime::loadgen`), reporting percentiles, throughput, and
//!   the shed ledger. Wall-clock timings vary run to run; the *ledger*
//!   must close exactly every time.

use crate::runner::Runner;
use crate::sweeps::SweepParams;
use eevfs::config::{ArrivalMode, ClusterSpec, EevfsConfig, OverloadConfig};
use eevfs::driver::run_cluster;
use eevfs::metrics::{OverloadStats, RunMetrics};
use serde::{Deserialize, Serialize};
use sim_core::SimDuration;
use workload::synthetic::{generate, SizeDist, SyntheticSpec};

/// `BENCH_runtime.json` schema version; bump on incompatible change.
pub const LOAD_SNAPSHOT_VERSION: u32 = 1;
/// Admission cap used by every gated grid point and the runtime campaign.
pub const GRID_MAX_INFLIGHT: u32 = 8;
/// Closed-loop stream counts swept by the sim grid (the offered-load
/// axis; the server serialises requests, so streams ≫ the admission cap
/// is deep saturation).
pub const GRID_STREAMS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// One point on the sim-side throughput-vs-offered-load curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Human-readable cell name ("8 streams, gated", ...).
    pub label: String,
    /// Closed-loop streams (offered concurrency).
    pub streams: u32,
    /// Whether the bounded admission gate was armed.
    pub gated: bool,
    /// Requests that finished with a latency sample (admitted and not
    /// shed; the throughput numerator).
    pub completed: u64,
    /// Completed requests per second of simulated replay time.
    pub throughput_rps: f64,
    /// Median response time, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile response time, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile response time, milliseconds.
    pub p99_ms: f64,
    /// Replay energy per completed request.
    pub joules_per_request: f64,
    /// The run's full shed ledger.
    pub overload: OverloadStats,
}

/// One figure cell re-run closed-loop next to its open-loop original —
/// the measurement behind the EXPERIMENTS.md "Known deviations" rewrite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviationCell {
    /// Which deviation the cell probes ("fig3a-savings", ...).
    pub name: String,
    /// The x value ("10 MB", "350 ms", ...).
    pub label: String,
    /// The metric under the paper's open-loop replay.
    pub open: f64,
    /// The same metric with a 4-stream closed-loop client.
    pub closed: f64,
}

/// One point of the runtime campaign: the prototype under `clients`
/// closed-loop workers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimePoint {
    /// Closed-loop client workers.
    pub clients: usize,
    /// Requests sent across all workers.
    pub sent: u64,
    /// Requests served with data.
    pub completed: u64,
    /// Requests refused `Busy` at admission.
    pub busy: u64,
    /// Requests shed by the control plane.
    pub shed: u64,
    /// Client-side errors/timeouts.
    pub errors: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Median completed-request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Server-side: gate rejections (`Busy`).
    pub rejected: u64,
    /// Server-side: node-level sheds (deadline/brownout/downstream).
    pub node_shed: u64,
    /// Brownout-ladder transitions over the campaign.
    pub brownout_transitions: u64,
    /// Peak admitted-inflight the gate ever saw.
    pub queue_peak: u64,
    /// Disk joules per completed request (virtual power meters).
    pub joules_per_request: f64,
    /// Client ledger AND both server ledger equations closed exactly.
    pub ledger_closed: bool,
}

/// The versioned `BENCH_runtime.json` artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadSnapshot {
    /// [`LOAD_SNAPSHOT_VERSION`].
    pub version: u32,
    /// Requests per sim run.
    pub requests: u32,
    /// Workload seed.
    pub seed: u64,
    /// Admission cap of the gated cells.
    pub max_inflight: u32,
    /// The sim-side saturation curve.
    pub sim: Vec<LoadPoint>,
    /// The four deviation cells, open vs closed loop.
    pub deviations: Vec<DeviationCell>,
    /// The runtime campaign (empty under `--sim-only`).
    pub runtime: Vec<RuntimePoint>,
}

/// The workload behind the saturation curve: paper-shaped popularity,
/// zero think time so offered load is exactly the stream count.
fn load_spec(p: &SweepParams) -> SyntheticSpec {
    SyntheticSpec {
        requests: p.requests,
        seed: p.seed,
        inter_arrival: SimDuration::ZERO,
        ..SyntheticSpec::paper_default()
    }
}

fn point_from_run(label: String, streams: u32, gated: bool, m: &RunMetrics) -> LoadPoint {
    LoadPoint {
        label,
        streams,
        gated,
        completed: m.response.count,
        throughput_rps: m.response.count as f64 / m.duration_s.max(1e-9),
        p50_ms: m.response.p50_s * 1e3,
        p95_ms: m.response.p95_s * 1e3,
        p99_ms: m.response.p99_s * 1e3,
        joules_per_request: m.total_energy_j / (m.response.count.max(1)) as f64,
        overload: m.overload,
    }
}

/// Runs the closed-loop offered-load grid serially.
pub fn run_load_grid(p: &SweepParams) -> Vec<LoadPoint> {
    run_load_grid_on(&Runner::serial(), p)
}

/// [`run_load_grid`] with its cells fanned out on `runner`. Cells are
/// pure functions of `(streams, gated, p)`, so any `--jobs` count yields
/// byte-identical results.
pub fn run_load_grid_on(runner: &Runner, p: &SweepParams) -> Vec<LoadPoint> {
    let cells: Vec<(u32, bool)> = GRID_STREAMS
        .iter()
        .flat_map(|&s| [(s, false), (s, true)])
        .collect();
    let cluster = ClusterSpec::paper_testbed();
    runner.map(&cells, |_, &(streams, gated)| {
        let trace = generate(&load_spec(p));
        let mut cfg = EevfsConfig::paper_pf(70);
        cfg.arrival = ArrivalMode::ClosedLoop { streams };
        if gated {
            cfg.overload = Some(OverloadConfig::bounded(GRID_MAX_INFLIGHT));
        }
        let m = run_cluster(&cluster, &cfg, &trace);
        let label = format!(
            "{streams} stream{}, {}",
            if streams == 1 { "" } else { "s" },
            if gated { "gated" } else { "ungated" }
        );
        point_from_run(label, streams, gated, &m)
    })
}

/// The saturation gate `harness load` enforces on the sim grid. Returns
/// one description per violated property (empty = gate passed):
///
/// * every ledger closes exactly, gated or not;
/// * ungated cells keep the overload ledger untouched;
/// * gated cells never exceed the admission cap and keep p99 under
///   `p99_ms` (bounded tail instead of unbounded queueing);
/// * at ≥ 2× the admission cap the gate must actually shed.
pub fn saturation_gate(points: &[LoadPoint], p99_ms: f64) -> Vec<String> {
    let mut bad = Vec::new();
    for pt in points {
        let o = &pt.overload;
        if !o.ledger_closes() {
            bad.push(format!("{}: shed ledger does not close: {o:?}", pt.label));
        }
        if !pt.gated && *o != OverloadStats::default() {
            bad.push(format!(
                "{}: overload counters moved ungated: {o:?}",
                pt.label
            ));
        }
        if pt.gated {
            if o.queue_peak > GRID_MAX_INFLIGHT as u64 {
                bad.push(format!(
                    "{}: queue peak {} exceeds cap {GRID_MAX_INFLIGHT}",
                    pt.label, o.queue_peak
                ));
            }
            if pt.p99_ms > p99_ms {
                bad.push(format!(
                    "{}: p99 {:.1} ms exceeds the {p99_ms:.0} ms gate",
                    pt.label, pt.p99_ms
                ));
            }
            if pt.streams >= 2 * GRID_MAX_INFLIGHT && o.rejected + o.shed + o.node_shed == 0 {
                bad.push(format!(
                    "{}: {}x saturation refused nothing",
                    pt.label,
                    pt.streams / GRID_MAX_INFLIGHT
                ));
            }
        }
    }
    bad
}

fn pf_npf_closed(
    cluster: &ClusterSpec,
    trace: &workload::record::Trace,
    closed: bool,
) -> (RunMetrics, RunMetrics) {
    let mut pf = EevfsConfig::paper_pf(70);
    let mut npf = EevfsConfig::paper_npf();
    if closed {
        pf.arrival = ArrivalMode::ClosedLoop { streams: 4 };
        npf.arrival = ArrivalMode::ClosedLoop { streams: 4 };
    }
    (
        run_cluster(cluster, &pf, trace),
        run_cluster(cluster, &npf, trace),
    )
}

/// Re-runs the four "known deviation" cells of EXPERIMENTS.md with a
/// 4-stream closed-loop client next to the open-loop original:
///
/// 1. `fig3a-savings` — energy savings vs data size (1/10/25/50 MB);
/// 2. `fig3a-penalty` — the 1 MB response-penalty cell rides along;
/// 3. `fig4c-transitions` — PF transition counts vs inter-arrival delay;
/// 4. `fig5c-penalty` — response penalty vs delay, including the
///    0 ms savings cell (`fig3c-0ms-savings`).
pub fn deviation_cells_on(runner: &Runner, p: &SweepParams) -> Vec<DeviationCell> {
    let cluster = ClusterSpec::paper_testbed();
    let base = SyntheticSpec {
        requests: p.requests,
        seed: p.seed,
        ..SyntheticSpec::paper_default()
    };

    let sizes = runner.map(&[1u64, 10, 25, 50], |_, &mb| {
        let trace = generate(&SyntheticSpec {
            mean_size_bytes: mb * 1_000_000,
            size_dist: SizeDist::Exponential,
            ..base
        });
        let (pf_o, npf_o) = pf_npf_closed(&cluster, &trace, false);
        let (pf_c, npf_c) = pf_npf_closed(&cluster, &trace, true);
        (mb, pf_o, npf_o, pf_c, npf_c)
    });
    let delays = runner.map(&[0u64, 350, 700, 1000], |_, &ms| {
        let trace = generate(&SyntheticSpec {
            inter_arrival: SimDuration::from_millis(ms),
            ..base
        });
        let (pf_o, npf_o) = pf_npf_closed(&cluster, &trace, false);
        let (pf_c, npf_c) = pf_npf_closed(&cluster, &trace, true);
        (ms, pf_o, npf_o, pf_c, npf_c)
    });

    let mut cells = Vec::new();
    for (mb, pf_o, npf_o, pf_c, npf_c) in &sizes {
        cells.push(DeviationCell {
            name: "fig3a-savings".into(),
            label: format!("{mb} MB"),
            open: pf_o.savings_vs(npf_o) * 100.0,
            closed: pf_c.savings_vs(npf_c) * 100.0,
        });
    }
    if let Some((_, pf_o, npf_o, pf_c, npf_c)) = sizes.iter().find(|(mb, ..)| *mb == 1) {
        cells.push(DeviationCell {
            name: "fig3a-penalty".into(),
            label: "1 MB".into(),
            open: pf_o.response_penalty_vs(npf_o) * 100.0,
            closed: pf_c.response_penalty_vs(npf_c) * 100.0,
        });
    }
    for (ms, pf_o, _, pf_c, _) in &delays {
        cells.push(DeviationCell {
            name: "fig4c-transitions".into(),
            label: format!("{ms} ms"),
            open: pf_o.transitions.total() as f64,
            closed: pf_c.transitions.total() as f64,
        });
    }
    for (ms, pf_o, npf_o, pf_c, npf_c) in &delays {
        cells.push(DeviationCell {
            name: "fig5c-penalty".into(),
            label: format!("{ms} ms"),
            open: pf_o.response_penalty_vs(npf_o) * 100.0,
            closed: pf_c.response_penalty_vs(npf_c) * 100.0,
        });
    }
    if let Some((_, pf_o, npf_o, pf_c, npf_c)) = delays.iter().find(|(ms, ..)| *ms == 0) {
        cells.push(DeviationCell {
            name: "fig3c-0ms-savings".into(),
            label: "0 ms".into(),
            open: pf_o.savings_vs(npf_o) * 100.0,
            closed: pf_c.savings_vs(npf_c) * 100.0,
        });
    }
    cells
}

/// Client counts the runtime campaign sweeps; the cap is
/// [`RUNTIME_MAX_INFLIGHT`], so the top step is 4× saturation.
pub const RUNTIME_CLIENTS: [usize; 3] = [2, 4, 8];
/// Admission cap of the runtime campaign's cluster.
pub const RUNTIME_MAX_INFLIGHT: usize = 2;

/// Drives the loopback prototype with the closed-loop load generator at
/// each client count in [`RUNTIME_CLIENTS`], a fresh cluster per point.
/// Wall-clock numbers are measurements, not replays — only the ledgers
/// are deterministic.
pub fn run_runtime_campaign(requests_per_client: usize) -> Result<Vec<RuntimePoint>, String> {
    use eevfs_runtime::{loadgen, ClusterHandle, LoadConfig, OverloadOptions, RuntimeConfig};

    let trace = generate(&SyntheticSpec {
        files: 16,
        requests: 8,
        mu: 4.0,
        mean_size_bytes: 32 * 1024,
        size_dist: SizeDist::Fixed,
        inter_arrival: SimDuration::from_millis(700),
        ..SyntheticSpec::paper_default()
    });
    let mut points = Vec::new();
    for (i, &clients) in RUNTIME_CLIENTS.iter().enumerate() {
        let mut cfg = RuntimeConfig::small(&format!("load-campaign-{i}"));
        cfg.resilience.overload = OverloadOptions::bounded(RUNTIME_MAX_INFLIGHT);
        let mut cluster =
            ClusterHandle::start(cfg, &trace).map_err(|e| format!("start cluster: {e}"))?;
        let addr = cluster.server_addr().map_err(|e| format!("addr: {e}"))?;
        let report = loadgen::run(
            addr,
            &LoadConfig {
                clients,
                requests_per_client,
                think: std::time::Duration::ZERO,
                deadline_us: 0,
                files: 16,
                seed: 29 + i as u64,
                request_timeout: std::time::Duration::from_secs(30),
            },
        );
        let stats = cluster.stats().map_err(|e| format!("stats: {e}"))?;
        let ledger_closed = report.ledger_closes()
            && stats.offered == stats.admitted + stats.rejected + stats.shed
            && stats.admitted == stats.completed + stats.node_shed + stats.request_errors;
        points.push(RuntimePoint {
            clients,
            sent: report.sent,
            completed: report.completed,
            busy: report.busy,
            shed: report.shed,
            errors: report.errors,
            throughput_rps: report.throughput_rps(),
            p50_ms: report.percentile(0.50).as_secs_f64() * 1e3,
            p95_ms: report.percentile(0.95).as_secs_f64() * 1e3,
            p99_ms: report.percentile(0.99).as_secs_f64() * 1e3,
            rejected: stats.rejected,
            node_shed: stats.node_shed,
            brownout_transitions: stats.brownout_transitions,
            queue_peak: stats.queue_peak,
            joules_per_request: stats.disk_joules / (report.completed.max(1)) as f64,
            ledger_closed,
        });
        cluster.shutdown();
    }
    Ok(points)
}

/// The runtime campaign's own gate: every point must terminate with a
/// closed ledger, no client-side errors, and a bounded queue.
pub fn runtime_gate(points: &[RuntimePoint]) -> Vec<String> {
    let mut bad = Vec::new();
    for pt in points {
        if !pt.ledger_closed {
            bad.push(format!("{} clients: ledger open", pt.clients));
        }
        if pt.errors > 0 {
            bad.push(format!(
                "{} clients: {} request errors",
                pt.clients, pt.errors
            ));
        }
        if pt.queue_peak > RUNTIME_MAX_INFLIGHT as u64 {
            bad.push(format!(
                "{} clients: queue peak {} exceeds cap {RUNTIME_MAX_INFLIGHT}",
                pt.clients, pt.queue_peak
            ));
        }
    }
    bad
}

/// ASCII rendering of the saturation curve and deviation cells.
pub fn render_load_report(snapshot: &LoadSnapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# closed-loop saturation curve, cap {} ({} requests/run)",
        snapshot.max_inflight, snapshot.requests
    );
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>6} {:>6}",
        "cell", "rps", "p50 ms", "p95 ms", "p99 ms", "J/req", "rejected", "shed", "node", "peak"
    );
    for pt in &snapshot.sim {
        let _ = writeln!(
            out,
            "{:<22} {:>9.1} {:>9.2} {:>9.2} {:>9.2} {:>8.2} {:>8} {:>8} {:>6} {:>6}",
            pt.label,
            pt.throughput_rps,
            pt.p50_ms,
            pt.p95_ms,
            pt.p99_ms,
            pt.joules_per_request,
            pt.overload.rejected,
            pt.overload.shed,
            pt.overload.node_shed,
            pt.overload.queue_peak,
        );
    }
    let _ = writeln!(out, "\n# deviation cells, open vs 4-stream closed loop");
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>10} {:>10}",
        "cell", "x", "open", "closed"
    );
    for c in &snapshot.deviations {
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>10.2} {:>10.2}",
            c.name, c.label, c.open, c.closed
        );
    }
    if !snapshot.runtime.is_empty() {
        let _ = writeln!(
            out,
            "\n# runtime campaign, cap {RUNTIME_MAX_INFLIGHT} (wall-clock, loopback TCP)"
        );
        let _ = writeln!(
            out,
            "{:>7} {:>6} {:>9} {:>6} {:>6} {:>7} {:>9} {:>9} {:>9} {:>6}",
            "clients", "sent", "rps", "busy", "shed", "errors", "p50 ms", "p99 ms", "J/req", "peak"
        );
        for pt in &snapshot.runtime {
            let _ = writeln!(
                out,
                "{:>7} {:>6} {:>9.1} {:>6} {:>6} {:>7} {:>9.2} {:>9.2} {:>9.3} {:>6}",
                pt.clients,
                pt.sent,
                pt.throughput_rps,
                pt.busy,
                pt.shed,
                pt.errors,
                pt.p50_ms,
                pt.p99_ms,
                pt.joules_per_request,
                pt.queue_peak,
            );
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn small_params() -> SweepParams {
        SweepParams {
            requests: 120,
            seed: 9,
        }
    }

    #[test]
    fn load_grid_saturates_and_passes_its_own_gate() {
        let pts = run_load_grid(&small_params());
        assert_eq!(pts.len(), GRID_STREAMS.len() * 2);
        let gate = saturation_gate(&pts, 60_000.0);
        assert!(gate.is_empty(), "gate tripped: {gate:?}");
        // Deep saturation really sheds on the gated side.
        let deep = pts
            .iter()
            .find(|p| p.gated && p.streams == 32)
            .expect("32-stream gated cell");
        let o = &deep.overload;
        assert!(o.rejected + o.shed + o.node_shed > 0, "{o:?}");
        // An absurd p99 bound must trip the gate (the CI proof hook).
        assert!(!saturation_gate(&pts, 0.0).is_empty());
    }

    #[test]
    fn load_grid_is_byte_identical_across_jobs() {
        let p = small_params();
        let serial = run_load_grid(&p);
        let parallel = run_load_grid_on(&Runner::new(4), &p);
        let a = serde_json::to_string(&serial).unwrap();
        let b = serde_json::to_string(&parallel).unwrap();
        assert_eq!(a, b, "--jobs must not change the curve");
    }

    #[test]
    fn deviation_cells_cover_all_four_deviations() {
        let cells = deviation_cells_on(&Runner::serial(), &small_params());
        for name in [
            "fig3a-savings",
            "fig3a-penalty",
            "fig4c-transitions",
            "fig5c-penalty",
            "fig3c-0ms-savings",
        ] {
            assert!(
                cells.iter().any(|c| c.name == name),
                "missing deviation cell {name}"
            );
        }
        for c in &cells {
            assert!(c.open.is_finite() && c.closed.is_finite(), "{c:?}");
        }
    }
}
