//! The `harness report` cells: observed runs folded through the
//! `eevfs-audit` plane into the versioned `REPORT_sim.json` payload plus
//! its ASCII tables.
//!
//! Each cell is a pure function of `(SweepParams, cell descriptor)`, so
//! the [`Runner`] can fan cells across workers with the report —
//! serialized bytes included — identical at any `--jobs` count; the
//! harness proves that with the same serial-vs-parallel byte compare the
//! other subcommands use. Every cell's ledger is verified closed
//! ([`EnergyLedger::verify_closure`]) before it enters the report: a
//! report that fails closure is a bug, not an artifact.

use crate::runner::Runner;
use crate::sweeps::SweepParams;
use eevfs::config::{ClusterSpec, EevfsConfig};
use eevfs::driver::run_cluster_observed;
use eevfs_audit::{
    build_ledger, reconstruct_spans, render_cell_tables, AttributionCell, AttributionModel,
    AuditReport, EnergyLedger, ResidencyTable, REPORT_VERSION,
};
use eevfs_obs::{Recorder, TraceEvent};
use fault_model::FaultPlan;
use workload::berkeley::{berkeley_web_trace, BerkeleySpec};
use workload::synthetic::{generate, SyntheticSpec};
use workload::Trace;

/// Top-K rows kept per table in the report.
const TOP_K: usize = 8;

/// The fixed cell grid of `harness report`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellKind {
    /// The paper's synthetic workload mix under PF(70).
    PaperPf,
    /// The paper's synthetic mix with prefetching disabled (NPF) — the
    /// energy-per-request contrast the paper's Fig 3 argues from.
    PaperNpf,
    /// The Berkeley web-trace substitute under PF(70).
    BerkeleyPf,
}

const CELLS: [CellKind; 3] = [CellKind::PaperPf, CellKind::PaperNpf, CellKind::BerkeleyPf];

fn cell_trace(kind: CellKind, p: &SweepParams) -> Trace {
    match kind {
        CellKind::PaperPf | CellKind::PaperNpf => generate(&SyntheticSpec {
            requests: p.requests,
            seed: p.seed,
            ..SyntheticSpec::paper_default()
        }),
        CellKind::BerkeleyPf => berkeley_web_trace(&BerkeleySpec {
            requests: p.requests,
            seed: p.seed,
            ..BerkeleySpec::paper_default()
        }),
    }
}

fn cell_meta(kind: CellKind) -> (&'static str, &'static str, &'static str, EevfsConfig) {
    match kind {
        CellKind::PaperPf => (
            "paper-pf70",
            "synthetic paper mix",
            "PF(70)",
            EevfsConfig::paper_pf(70),
        ),
        CellKind::PaperNpf => (
            "paper-npf",
            "synthetic paper mix",
            "NPF",
            EevfsConfig::paper_npf(),
        ),
        CellKind::BerkeleyPf => (
            "berkeley-pf70",
            "Berkeley web trace",
            "PF(70)",
            EevfsConfig::paper_pf(70),
        ),
    }
}

/// One observed run folded into a report cell plus its rendered tables.
fn build_cell(kind: CellKind, p: &SweepParams) -> Result<(AttributionCell, String), String> {
    let (name, workload, config, cfg) = cell_meta(kind);
    let trace = cell_trace(kind, p);
    let cluster = ClusterSpec::paper_testbed();
    let (metrics, report) = run_cluster_observed(
        &cluster,
        &cfg,
        &trace,
        &FaultPlan::none(),
        None,
        Recorder::default(),
    );
    let events: Vec<TraceEvent> = report.recorder.events().cloned().collect();
    let spans = reconstruct_spans(&events);
    if spans.len() as u32 != p.requests {
        return Err(format!(
            "cell {name}: {} spans for {} requests",
            spans.len(),
            p.requests
        ));
    }
    let warmup_us = metrics.prefetch.warmup_us;
    let end_us = warmup_us + (metrics.duration_s * 1e6).round() as u64;
    let residency = ResidencyTable::from_events(&events, warmup_us, end_us);
    let model = AttributionModel::from_cluster(&cluster);
    let ledger: EnergyLedger = build_ledger(&metrics, &spans, &residency, &model);
    ledger
        .verify_closure(&metrics)
        .map_err(|e| format!("cell {name}: ledger failed closure: {e}"))?;
    let cell = AttributionCell::build(
        name, workload, config, &metrics, &spans, &ledger, &residency, TOP_K,
    );
    let tables = render_cell_tables(&cell, &ledger);
    Ok((cell, tables))
}

/// Builds the full attribution report over the fixed cell grid, fanning
/// cells across the runner's workers. Returns the report and the
/// concatenated ASCII tables. Deterministic and jobs-independent: the
/// serialized report is byte-identical for any worker count.
pub fn build_attribution_report(
    runner: &Runner,
    p: &SweepParams,
) -> Result<(AuditReport, String), String> {
    let results = runner
        .try_map(
            &CELLS,
            |_, kind| format!("report cell {:?}", kind),
            |_, kind| build_cell(*kind, p),
        )
        .map_err(|e| e.to_string())?;
    let mut cells = Vec::with_capacity(results.len());
    let mut tables = String::new();
    for r in results {
        let (cell, t) = r?;
        cells.push(cell);
        tables.push_str(&t);
        tables.push('\n');
    }
    Ok((
        AuditReport {
            version: REPORT_VERSION,
            requests: p.requests,
            seed: p.seed,
            cells,
        },
        tables,
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn quick() -> SweepParams {
        SweepParams {
            requests: 60,
            seed: 11,
        }
    }

    #[test]
    fn report_is_byte_identical_across_jobs() {
        let p = quick();
        let (serial, t1) = build_attribution_report(&Runner::serial(), &p).unwrap();
        let (parallel, t4) = build_attribution_report(&Runner::new(4), &p).unwrap();
        let a = serde_json::to_string_pretty(&serial).unwrap();
        let b = serde_json::to_string_pretty(&parallel).unwrap();
        assert_eq!(a, b, "report must not depend on worker count");
        assert_eq!(t1, t4, "tables must not depend on worker count");
    }

    #[test]
    fn pf_beats_npf_on_energy_per_request() {
        // The paper's headline claim, visible straight from the report:
        // prefetching onto the buffer disk lets data disks sleep, so
        // PF(70) spends fewer joules per request than NPF.
        let (report, _) = build_attribution_report(&Runner::serial(), &quick()).unwrap();
        let cell = |n: &str| {
            report
                .cells
                .iter()
                .find(|c| c.name == n)
                .unwrap_or_else(|| panic!("missing cell {n}"))
        };
        assert!(
            cell("paper-pf70").energy_per_request_j < cell("paper-npf").energy_per_request_j,
            "PF should beat NPF"
        );
    }

    #[test]
    fn every_cell_attributes_some_energy() {
        let (report, tables) = build_attribution_report(&Runner::serial(), &quick()).unwrap();
        assert_eq!(report.cells.len(), CELLS.len());
        for c in &report.cells {
            assert!(
                c.ledger.attributed_j > 0.0,
                "cell {} attributed nothing",
                c.name
            );
            assert!(
                !c.top_requests.is_empty(),
                "cell {} has no top requests",
                c.name
            );
            assert!(
                !c.residency.is_empty(),
                "cell {} has no residency rows",
                c.name
            );
        }
        assert!(tables.contains("paper-pf70"));
        assert!(tables.contains("berkeley-pf70"));
    }
}
