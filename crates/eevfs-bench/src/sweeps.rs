//! The paper's Table II parameter sweeps.
//!
//! Defaults (each experiment varies one knob, the rest pinned, §VI):
//! data size 10 MB, MU 1000, inter-arrival 700 ms, 70 files to prefetch,
//! idle threshold 5 s, 1000 files, 1000 requests.

use crate::runner::Runner;
use eevfs::config::{ClusterSpec, EevfsConfig};
use eevfs::driver::run_cluster;
use eevfs::metrics::RunMetrics;
use serde::{Deserialize, Serialize};
use sim_core::SimDuration;
use workload::berkeley::{berkeley_web_trace, BerkeleySpec};
use workload::synthetic::{generate, SyntheticSpec};

/// One sweep point: the PF and NPF runs for a parameter value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// Human-readable x value ("10 MB", "MU=100", ...).
    pub label: String,
    /// Numeric x value for series output.
    pub x: f64,
    /// EEVFS with prefetching.
    pub pf: RunMetrics,
    /// EEVFS without prefetching.
    pub npf: RunMetrics,
}

impl ExperimentPoint {
    /// Energy-efficiency gain, the number the paper quotes ("11 %", ...).
    pub fn savings(&self) -> f64 {
        self.pf.savings_vs(&self.npf)
    }

    /// Response-time degradation PF vs NPF.
    pub fn penalty(&self) -> f64 {
        self.pf.response_penalty_vs(&self.npf)
    }
}

/// Sweep-wide knobs. `requests` scales run length (the paper used 1000);
/// lower it for quick smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepParams {
    /// Requests per run.
    pub requests: u32,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for SweepParams {
    fn default() -> Self {
        SweepParams {
            requests: 1000,
            seed: 0x5EED_EEF5,
        }
    }
}

/// Paper-default synthetic spec under these sweep params.
fn base_spec(p: &SweepParams) -> SyntheticSpec {
    SyntheticSpec {
        requests: p.requests,
        seed: p.seed,
        ..SyntheticSpec::paper_default()
    }
}

/// Runs PF(k=70) and NPF on one trace.
fn pf_npf(
    cluster: &ClusterSpec,
    trace: &workload::record::Trace,
    k: u32,
) -> (RunMetrics, RunMetrics) {
    let pf = run_cluster(cluster, &EevfsConfig::paper_pf(k), trace);
    let npf = run_cluster(cluster, &EevfsConfig::paper_npf(), trace);
    (pf, npf)
}

/// Fig 3(a)/4(a)/5(a): data size ∈ {1, 10, 25, 50} MB.
pub fn sweep_data_size(p: &SweepParams) -> Vec<ExperimentPoint> {
    sweep_data_size_on(&Runner::serial(), p)
}

/// [`sweep_data_size`] with its grid points fanned out on `runner`.
pub fn sweep_data_size_on(runner: &Runner, p: &SweepParams) -> Vec<ExperimentPoint> {
    let cluster = ClusterSpec::paper_testbed();
    runner.map(&[1u64, 10, 25, 50], |_, &mb| {
        let trace = generate(&SyntheticSpec {
            mean_size_bytes: mb * 1_000_000,
            ..base_spec(p)
        });
        let (pf, npf) = pf_npf(&cluster, &trace, 70);
        ExperimentPoint {
            label: format!("{mb} MB"),
            x: mb as f64,
            pf,
            npf,
        }
    })
}

/// Fig 3(b)/4(b)/5(b): MU ∈ {1, 10, 100, 1000}.
pub fn sweep_mu(p: &SweepParams) -> Vec<ExperimentPoint> {
    sweep_mu_on(&Runner::serial(), p)
}

/// [`sweep_mu`] with its grid points fanned out on `runner`.
pub fn sweep_mu_on(runner: &Runner, p: &SweepParams) -> Vec<ExperimentPoint> {
    let cluster = ClusterSpec::paper_testbed();
    runner.map(&[1.0f64, 10.0, 100.0, 1000.0], |_, &mu| {
        let trace = generate(&SyntheticSpec { mu, ..base_spec(p) });
        let (pf, npf) = pf_npf(&cluster, &trace, 70);
        ExperimentPoint {
            label: format!("MU={mu}"),
            x: mu,
            pf,
            npf,
        }
    })
}

/// Fig 3(c)/4(c)/5(c): inter-arrival delay ∈ {0, 350, 700, 1000} ms.
pub fn sweep_inter_arrival(p: &SweepParams) -> Vec<ExperimentPoint> {
    sweep_inter_arrival_on(&Runner::serial(), p)
}

/// [`sweep_inter_arrival`] with its grid points fanned out on `runner`.
pub fn sweep_inter_arrival_on(runner: &Runner, p: &SweepParams) -> Vec<ExperimentPoint> {
    let cluster = ClusterSpec::paper_testbed();
    runner.map(&[0u64, 350, 700, 1000], |_, &ms| {
        let trace = generate(&SyntheticSpec {
            inter_arrival: SimDuration::from_millis(ms),
            ..base_spec(p)
        });
        let (pf, npf) = pf_npf(&cluster, &trace, 70);
        ExperimentPoint {
            label: format!("{ms} ms"),
            x: ms as f64,
            pf,
            npf,
        }
    })
}

/// Fig 3(d)/4(d)/5(d): files to prefetch ∈ {10, 40, 70, 100}.
pub fn sweep_prefetch_k(p: &SweepParams) -> Vec<ExperimentPoint> {
    sweep_prefetch_k_on(&Runner::serial(), p)
}

/// [`sweep_prefetch_k`] with its grid points fanned out on `runner`.
/// All four K values replay the same trace, so it is generated once and
/// borrowed by every worker.
pub fn sweep_prefetch_k_on(runner: &Runner, p: &SweepParams) -> Vec<ExperimentPoint> {
    let cluster = ClusterSpec::paper_testbed();
    let trace = generate(&base_spec(p));
    runner.map(&[10u32, 40, 70, 100], |_, &k| {
        let (pf, npf) = pf_npf(&cluster, &trace, k);
        ExperimentPoint {
            label: format!("K={k}"),
            x: k as f64,
            pf,
            npf,
        }
    })
}

/// Fig 6: the Berkeley web-trace substitute (10 MB data size, K=70).
pub fn berkeley_experiment(p: &SweepParams) -> ExperimentPoint {
    let cluster = ClusterSpec::paper_testbed();
    let trace = berkeley_web_trace(&BerkeleySpec {
        requests: p.requests,
        seed: p.seed,
        ..BerkeleySpec::paper_default()
    });
    let (pf, npf) = pf_npf(&cluster, &trace, 70);
    ExperimentPoint {
        label: "Berkeley web trace".into(),
        x: 0.0,
        pf,
        npf,
    }
}

/// One cell of the fixed reference grid `harness bench` times.
///
/// The four Table II sweeps are flattened into a single list so the
/// runner's work-stealing cursor can balance mixed-cost cells (a 50 MB
/// data-size cell costs far more than a 1 MB one) across workers instead
/// of serialising sweep-by-sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GridCell {
    /// A data-size sweep cell (mean file size, MB).
    DataSize(u64),
    /// An MU sweep cell.
    Mu(u32),
    /// An inter-arrival sweep cell (delay, ms).
    InterArrival(u64),
    /// A prefetch-K sweep cell.
    PrefetchK(u32),
}

impl GridCell {
    /// The cell's human-readable grid-point name.
    pub fn label(&self) -> String {
        match *self {
            GridCell::DataSize(mb) => format!("data size {mb} MB"),
            GridCell::Mu(mu) => format!("MU={mu}"),
            GridCell::InterArrival(ms) => format!("inter-arrival {ms} ms"),
            GridCell::PrefetchK(k) => format!("K={k}"),
        }
    }
}

/// The 16 cells of the reference grid, in Table II order.
pub fn reference_grid() -> Vec<GridCell> {
    let mut cells = Vec::with_capacity(16);
    cells.extend([1u64, 10, 25, 50].map(GridCell::DataSize));
    cells.extend([1u32, 10, 100, 1000].map(GridCell::Mu));
    cells.extend([0u64, 350, 700, 1000].map(GridCell::InterArrival));
    cells.extend([10u32, 40, 70, 100].map(GridCell::PrefetchK));
    cells
}

/// Runs one reference-grid cell: trace generation plus the PF and NPF
/// simulations. Pure in `(cell, p)`, which is what lets the runner fan
/// cells out in any order.
pub fn run_grid_cell(cell: &GridCell, p: &SweepParams) -> ExperimentPoint {
    let cluster = ClusterSpec::paper_testbed();
    let (spec, k) = match *cell {
        GridCell::DataSize(mb) => (
            SyntheticSpec {
                mean_size_bytes: mb * 1_000_000,
                ..base_spec(p)
            },
            70,
        ),
        GridCell::Mu(mu) => (
            SyntheticSpec {
                mu: mu as f64,
                ..base_spec(p)
            },
            70,
        ),
        GridCell::InterArrival(ms) => (
            SyntheticSpec {
                inter_arrival: SimDuration::from_millis(ms),
                ..base_spec(p)
            },
            70,
        ),
        GridCell::PrefetchK(k) => (base_spec(p), k),
    };
    let trace = generate(&spec);
    let (pf, npf) = pf_npf(&cluster, &trace, k);
    ExperimentPoint {
        label: cell.label(),
        x: 0.0,
        pf,
        npf,
    }
}

/// Runs the whole reference grid on `runner`, results in grid order.
pub fn run_reference_grid(runner: &Runner, p: &SweepParams) -> Vec<ExperimentPoint> {
    let cells = reference_grid();
    runner.map(&cells, |_, cell| run_grid_cell(cell, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepParams {
        SweepParams {
            requests: 150,
            ..SweepParams::default()
        }
    }

    #[test]
    fn data_size_sweep_has_four_points_and_positive_savings() {
        let pts = sweep_data_size(&quick());
        assert_eq!(pts.len(), 4);
        for pt in &pts {
            assert!(pt.savings() > 0.0, "{}: savings {}", pt.label, pt.savings());
        }
    }

    #[test]
    fn mu_sweep_savings_fall_with_mu() {
        let pts = sweep_mu(&quick());
        let s: Vec<f64> = pts.iter().map(|p| p.savings()).collect();
        // MU <= 100 all fully covered: equal (within noise); MU=1000 lower.
        assert!(s[3] < s[0], "MU=1000 should save less than MU=1: {s:?}");
        assert!(
            (s[0] - s[2]).abs() < 0.03,
            "MU=1 vs MU=100 should be close: {s:?}"
        );
    }

    #[test]
    fn prefetch_sweep_savings_rise_with_k() {
        let pts = sweep_prefetch_k(&quick());
        let s: Vec<f64> = pts.iter().map(|p| p.savings()).collect();
        assert!(s[3] > s[0], "K=100 should beat K=10: {s:?}");
        // NPF baseline identical across K (same trace).
        let e0 = pts[0].npf.total_energy_j;
        for pt in &pts {
            assert!((pt.npf.total_energy_j - e0).abs() < 1e-6);
        }
    }

    #[test]
    fn reference_grid_is_schedule_independent() {
        let p = SweepParams {
            requests: 100,
            ..SweepParams::default()
        };
        let serial = run_reference_grid(&Runner::serial(), &p);
        let parallel = run_reference_grid(&Runner::new(8), &p);
        assert_eq!(serial.len(), 16);
        for (s, q) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, q.label);
            assert_eq!(s.pf, q.pf, "{}", s.label);
            assert_eq!(s.npf, q.npf, "{}", s.label);
        }
    }

    #[test]
    fn berkeley_sleeps_everything() {
        let pt = berkeley_experiment(&quick());
        assert_eq!(pt.pf.transitions.spin_ups, 0);
        assert!(pt.savings() > 0.08, "savings {}", pt.savings());
    }
}
