//! Deterministic parallel execution of independent grid points.
//!
//! Every experiment in this crate is a pure function of its inputs: the
//! simulator threads run-local RNG streams through each run, the driver
//! shares only immutable `Arc` tables between runs, and nothing reads a
//! wall clock. A grid of (grid-point, seed) cells is therefore
//! embarrassingly parallel — and, more importantly, *deterministically*
//! so. The [`Runner`] hands cells to workers through an atomic cursor and
//! reassembles their results by cell index, so the output vector is
//! byte-identical to the serial path no matter how the OS schedules the
//! threads. `jobs = 1` does not spawn at all: it is literally the old
//! serial loop.
//!
//! DESIGN.md §11 spells out the determinism argument.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A failed grid cell, named so the harness can report *which* point of a
/// sweep or ablation grid died rather than a bare panic.
#[derive(Debug, Clone)]
pub struct GridError {
    /// Human-readable cell name ("R=2, fail rate=8/h", "25 MB", ...).
    pub point: String,
    /// The panic payload or error text.
    pub message: String,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grid point '{}' failed: {}", self.point, self.message)
    }
}

impl std::error::Error for GridError {}

/// Fans independent work items out across OS threads.
///
/// The runner is deliberately dumb: no queues that outlive a call, no
/// thread pool to shut down. Each [`map`](Runner::map) call spawns scoped
/// workers, drains one atomic cursor, and joins. Items are claimed in
/// index order and results are sorted back into index order, so callers
/// observe the same `Vec` regardless of `jobs`.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    jobs: usize,
}

impl Runner {
    /// A runner with `jobs` worker threads; `0` means one per available
    /// core ([`std::thread::available_parallelism`]).
    pub fn new(jobs: usize) -> Runner {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        Runner { jobs }
    }

    /// The single-threaded runner: `map` degenerates to an in-order loop
    /// on the calling thread, exactly the pre-parallel behaviour.
    pub fn serial() -> Runner {
        Runner { jobs: 1 }
    }

    /// Worker threads this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item and returns the results in item order.
    ///
    /// `f` must be a pure function of `(index, item)` — that is what makes
    /// the output independent of scheduling. A panicking item aborts the
    /// whole map with a panic naming the item index.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        match self.try_map(items, |i, _| format!("item {i}"), f) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`map`](Runner::map), but a panicking item becomes a
    /// [`GridError`] carrying `label(index, item)` instead of poisoning
    /// the process. Every item still runs (grids are small), and the
    /// error returned is always the *lowest-indexed* failure, so error
    /// reporting is as deterministic as success.
    pub fn try_map<T, R, L, F>(&self, items: &[T], label: L, f: F) -> Result<Vec<R>, GridError>
    where
        T: Sync,
        R: Send,
        L: Fn(usize, &T) -> String + Sync,
        F: Fn(usize, &T) -> R + Sync,
    {
        let run_one = |i: usize, item: &T| -> Result<R, GridError> {
            catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| GridError {
                point: label(i, item),
                message: panic_text(payload),
            })
        };

        if self.jobs == 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| run_one(i, item))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(items.len());
        let mut collected: Vec<(usize, Result<R, GridError>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, run_one(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("runner worker panicked outside a cell"))
                .collect()
        });
        collected.sort_by_key(|&(i, _)| i);

        let mut out = Vec::with_capacity(items.len());
        for (_, r) in collected {
            out.push(r?);
        }
        Ok(out)
    }
}

impl Default for Runner {
    /// One worker per available core.
    fn default() -> Runner {
        Runner::new(0)
    }
}

/// The chaos search fans scenarios across the same deterministic runner
/// the experiment grids use; index-order reassembly is exactly the
/// contract `eevfs-chaos` needs for `--jobs`-independent campaigns.
impl eevfs_chaos::ParallelMap for Runner {
    fn map_indexed(
        &self,
        n: usize,
        f: &(dyn Fn(usize) -> eevfs_chaos::ScenarioReport + Sync),
    ) -> Vec<eevfs_chaos::ScenarioReport> {
        let indices: Vec<usize> = (0..n).collect();
        self.map(&indices, |_, &i| f(i))
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_at_any_job_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = Runner::new(jobs).map(&items, |_, &x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert!(Runner::new(0).jobs() >= 1);
        assert_eq!(Runner::serial().jobs(), 1);
    }

    #[test]
    fn try_map_names_the_lowest_failing_point() {
        let items: Vec<u32> = (0..20).collect();
        for jobs in [1, 8] {
            let err = Runner::new(jobs)
                .try_map(
                    &items,
                    |_, &x| format!("cell {x}"),
                    |_, &x| {
                        if x == 7 || x == 13 {
                            panic!("boom at {x}");
                        }
                        x
                    },
                )
                .unwrap_err();
            assert_eq!(err.point, "cell 7", "jobs={jobs}");
            assert!(err.message.contains("boom at 7"), "{err}");
            assert!(err.to_string().contains("cell 7"));
        }
    }

    #[test]
    fn empty_and_single_item_grids_work() {
        let r = Runner::new(4);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(r.map(&empty, |_, &x| x), Vec::<u32>::new());
        assert_eq!(r.map(&[41u32], |_, &x| x + 1), vec![42]);
    }
}
