//! Experiment harness: regenerates every table/figure in the paper.
//!
//! ```text
//! harness [--requests N] [--seed S] [--jobs N] [--json PATH] [--trace-out PATH] <command>
//!
//! --jobs N fans independent grid points across N worker threads (0 or
//! omitted = one per core, 1 = the old serial path); results are
//! byte-identical at any job count (DESIGN.md §11).
//!
//! commands:
//!   all        every figure and ablation
//!   fig3a..d   energy panels        (Fig 3)
//!   fig4       transition panels    (Fig 4)
//!   fig5       response panels      (Fig 5)
//!   fig6       Berkeley web trace   (Fig 6)
//!   sweeps     the raw sweep tables behind Figs 3-5
//!   ablate     all ablations
//!   faults     fault injection × replication grid (degraded mode)
//!   resilience network drop-rate × RPC-policy grid (retries/hedging)
//!   scrub      corruption-rate × replication × scrub-policy grid
//!              (integrity: detect/repair/unrecoverable counters)
//!   power-curve  whole-cluster power over time, PF vs NPF
//!   hist         response-time distributions, PF vs NPF
//!   trace        observed PF run: JSONL trace (--trace-out), power/state
//!                timeline, prediction accuracy, one request walkthrough
//!   bench        time the fixed 16-point reference grid at --jobs vs
//!                serial, verify byte-identical results, write
//!                BENCH_sim.json (wall-clock, runs/sec, speedup)
//!   power        eevfs-power policy sweep: idle predictors × cache
//!                tiers × workloads, verified byte-identical serial vs
//!                --jobs, report + POWER_sim.json (--json overrides)
//!   chaos        deterministic chaos search: --scenarios N seeded
//!                composite fault schedules through the invariant plane
//!                (--envelope r2 for the replicated+scrubbed envelope,
//!                --envelope overloaded to gate every scenario);
//!                a violation shrinks to a reproducer JSON (in
//!                --artifact-dir) and exits non-zero. --canary arms the
//!                deliberately broken invariant; --replay FILE re-executes
//!                a reproducer and verifies it bit-for-bit.
//!   load         overload control plane: closed-loop offered-load grid
//!                (saturation curve, gated vs ungated), the four "known
//!                deviation" figure cells re-run closed-loop, and a
//!                wall-clock runtime campaign through the loadgen;
//!                writes versioned BENCH_runtime.json (--json overrides)
//!                and exits non-zero when the saturation gate trips
//!                (open ledger, unbounded queue, p99 over --gate-p99-ms,
//!                or no shedding at ≥2× the admission cap). --sim-only
//!                skips the runtime campaign (CI determinism).
//!   report       energy attribution report: per-request spans + closed
//!                joule ledger over the paper/Berkeley cells, verified
//!                byte-identical serial vs --jobs, ASCII top-K tables,
//!                writes REPORT_sim.json (--json overrides). --baseline
//!                FILE gates energy-per-request and response time against
//!                a committed report and exits non-zero on regression;
//!                --inject-regression PCT perturbs the compared copy so
//!                CI can prove the gate fails; --bench-baseline FILE
//!                --bench-current FILE gate a BENCH_sim.json pair on
//!                runs/sec instead.
//! ```

#![warn(clippy::unwrap_used)]

use eevfs_bench::ablate::all_ablations_on;
use eevfs_bench::figures::{fig3_view, fig4_view, fig5_view, fig6, Panel};
use eevfs_bench::report::{render_ablation, render_figure, render_sweep};
use eevfs_bench::runner::Runner;
use eevfs_bench::sweeps::SweepParams;
use std::process::ExitCode;

struct Args {
    params: SweepParams,
    jobs: usize,
    json_path: Option<String>,
    trace_path: Option<String>,
    command: String,
    /// `chaos`: scenarios to search.
    scenarios: u32,
    /// `chaos`: arm the deliberately broken canary invariant.
    canary: bool,
    /// `chaos`: severity envelope name ("default", "r2", "overloaded").
    envelope: String,
    /// `chaos`: replay a reproducer artifact instead of searching.
    replay_path: Option<String>,
    /// `chaos`: where reproducer artifacts are written.
    artifact_dir: String,
    /// `report`: committed baseline REPORT_sim.json to gate against.
    baseline: Option<String>,
    /// `report`: perturb energy-per-request by this percentage before
    /// the baseline comparison (CI's proof the gate can fail).
    inject_regression: Option<f64>,
    /// `report`: baseline BENCH_sim.json for the throughput gate.
    bench_baseline: Option<String>,
    /// `report`: current BENCH_sim.json for the throughput gate.
    bench_current: Option<String>,
    /// `load`: skip the wall-clock runtime campaign.
    sim_only: bool,
    /// `load`: p99 bound (ms) the gated sim cells must stay under.
    gate_p99_ms: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut params = SweepParams::default();
    let mut jobs = 0usize;
    let mut json_path = None;
    let mut trace_path = None;
    let mut command = None;
    let mut scenarios = 64u32;
    let mut canary = false;
    let mut envelope = "default".to_string();
    let mut replay_path = None;
    let mut artifact_dir = ".".to_string();
    let mut baseline = None;
    let mut inject_regression = None;
    let mut bench_baseline = None;
    let mut bench_current = None;
    let mut sim_only = false;
    let mut gate_p99_ms = 60_000.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenarios" => {
                let v = it.next().ok_or("--scenarios needs a value")?;
                scenarios = v.parse().map_err(|_| format!("bad --scenarios {v}"))?;
            }
            "--canary" => canary = true,
            "--envelope" => {
                let v = it.next().ok_or("--envelope needs a value")?;
                match v.as_str() {
                    "default" | "r2" | "overloaded" => envelope = v,
                    other => {
                        return Err(format!(
                            "bad --envelope {other}; try: default, r2, overloaded"
                        ))
                    }
                }
            }
            "--replay" => {
                replay_path = Some(it.next().ok_or("--replay needs a path")?);
            }
            "--artifact-dir" => {
                artifact_dir = it.next().ok_or("--artifact-dir needs a path")?;
            }
            "--requests" => {
                let v = it.next().ok_or("--requests needs a value")?;
                params.requests = v.parse().map_err(|_| format!("bad --requests {v}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                params.seed = v.parse().map_err(|_| format!("bad --seed {v}"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v.parse().map_err(|_| format!("bad --jobs {v}"))?;
            }
            "--json" => {
                json_path = Some(it.next().ok_or("--json needs a path")?);
            }
            "--trace-out" => {
                trace_path = Some(it.next().ok_or("--trace-out needs a path")?);
            }
            "--baseline" => {
                baseline = Some(it.next().ok_or("--baseline needs a path")?);
            }
            "--inject-regression" => {
                let v = it.next().ok_or("--inject-regression needs a percentage")?;
                inject_regression = Some(
                    v.parse()
                        .map_err(|_| format!("bad --inject-regression {v}"))?,
                );
            }
            "--bench-baseline" => {
                bench_baseline = Some(it.next().ok_or("--bench-baseline needs a path")?);
            }
            "--bench-current" => {
                bench_current = Some(it.next().ok_or("--bench-current needs a path")?);
            }
            "--sim-only" => sim_only = true,
            "--gate-p99-ms" => {
                let v = it.next().ok_or("--gate-p99-ms needs a value")?;
                gate_p99_ms = v.parse().map_err(|_| format!("bad --gate-p99-ms {v}"))?;
            }
            other if command.is_none() && !other.starts_with('-') => {
                command = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        params,
        jobs,
        json_path,
        trace_path,
        command: command.unwrap_or_else(|| "all".into()),
        scenarios,
        canary,
        envelope,
        replay_path,
        artifact_dir,
        baseline,
        inject_regression,
        bench_baseline,
        bench_current,
        sim_only,
        gate_p99_ms,
    })
}

/// The `load` subcommand: closed-loop saturation curve (byte-identical
/// at any `--jobs`), deviation cells, the runtime campaign, the
/// versioned BENCH_runtime.json artifact, and the saturation gate.
fn run_load(args: &Args, runner: &Runner) -> ExitCode {
    use eevfs_bench::load::{
        deviation_cells_on, render_load_report, run_load_grid, run_load_grid_on, runtime_gate,
        saturation_gate, LoadSnapshot, GRID_MAX_INFLIGHT, LOAD_SNAPSHOT_VERSION,
    };

    let p = &args.params;
    eprintln!(
        "load: closed-loop grid, {} requests/run, serial then --jobs {}{}",
        p.requests,
        runner.jobs(),
        if args.sim_only { " (sim only)" } else { "" }
    );
    let serial_pts = run_load_grid(p);
    let parallel_pts = run_load_grid_on(runner, p);
    let (serial_json, parallel_json) = match (
        serde_json::to_string(&serial_pts),
        serde_json::to_string(&parallel_pts),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("serialisation error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let byte_identical = serial_json == parallel_json;
    let deviations = deviation_cells_on(runner, p);
    let runtime = if args.sim_only {
        Vec::new()
    } else {
        match eevfs_bench::load::run_runtime_campaign(12) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: runtime campaign: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let snapshot = LoadSnapshot {
        version: LOAD_SNAPSHOT_VERSION,
        requests: p.requests,
        seed: p.seed,
        max_inflight: GRID_MAX_INFLIGHT,
        sim: serial_pts,
        deviations,
        runtime,
    };
    print!("{}", render_load_report(&snapshot));
    println!(
        "serial vs --jobs {} byte-identical: {byte_identical}",
        runner.jobs()
    );

    let path = args.json_path.as_deref().unwrap_or("BENCH_runtime.json");
    match serde_json::to_string_pretty(&snapshot) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("error writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        Err(e) => {
            eprintln!("serialisation error: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut failed = false;
    if !byte_identical {
        eprintln!("error: parallel results diverged from the serial path");
        failed = true;
    }
    let sim_violations = saturation_gate(&snapshot.sim, args.gate_p99_ms);
    for v in &sim_violations {
        eprintln!("saturation gate: {v}");
    }
    let runtime_violations = runtime_gate(&snapshot.runtime);
    for v in &runtime_violations {
        eprintln!("runtime gate: {v}");
    }
    if !sim_violations.is_empty() || !runtime_violations.is_empty() {
        eprintln!("error: the saturation gate tripped");
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "saturation gate passed: {} sim cells, {} runtime points, p99 bound {:.0} ms",
        snapshot.sim.len(),
        snapshot.runtime.len(),
        args.gate_p99_ms
    );
    ExitCode::SUCCESS
}

/// The `chaos` subcommand: search mode writes a reproducer and exits
/// non-zero on any violation; replay mode re-executes an artifact and
/// exits non-zero unless it reproduces bit-for-bit.
fn run_chaos(args: &Args, runner: &Runner) -> ExitCode {
    use eevfs_chaos::{replay, run_campaign, CampaignConfig, InvariantSet, Reproducer};

    if let Some(path) = &args.replay_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let rep: Reproducer = match serde_json::from_str(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error parsing {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let invariants = if rep.invariant == "canary-quiet-cluster" {
            InvariantSet::with_canary()
        } else {
            InvariantSet::standard()
        };
        let outcome = replay(&rep, &invariants);
        println!(
            "replay {path}: invariant '{}' ({} events, scenario {} of seed {})",
            rep.invariant, rep.shrunk_events, rep.scenario_index, rep.base_seed
        );
        println!(
            "  violation reproduced: {}\n  metrics digest {} == {}: {}",
            outcome.violation_reproduced,
            outcome.digest,
            rep.metrics_digest,
            outcome.digest_matches
        );
        if outcome.exact() {
            println!("  reproduced bit-for-bit");
            return ExitCode::SUCCESS;
        }
        eprintln!("error: replay did not reproduce the artifact exactly");
        return ExitCode::FAILURE;
    }

    let invariants = if args.canary {
        InvariantSet::with_canary()
    } else {
        InvariantSet::standard()
    };
    let mut cfg = CampaignConfig::new(args.scenarios, args.params.seed);
    if args.envelope == "r2" {
        cfg.envelope = eevfs_chaos::SeverityEnvelope::r2_scrubbed();
    } else if args.envelope == "overloaded" {
        cfg.envelope = eevfs_chaos::SeverityEnvelope::overloaded();
    }
    eprintln!(
        "chaos: {} scenarios from seed {} ({} envelope), {} invariants{}, --jobs {}",
        cfg.scenarios,
        cfg.base_seed,
        args.envelope,
        invariants.names().len(),
        if args.canary { " (canary armed)" } else { "" },
        runner.jobs()
    );
    let report = run_campaign(runner, &invariants, &cfg);
    if report.clean() {
        println!(
            "chaos: {} scenarios clean under {} invariants",
            report.scenarios,
            invariants.names().len()
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "chaos: {} of {} scenarios violated invariants:",
        report.violating.len(),
        report.scenarios
    );
    for r in &report.violating {
        for v in &r.violations {
            println!(
                "  scenario {:>4}: {:<24} {}",
                r.index, v.invariant, v.detail
            );
        }
    }
    let Some(rep) = &report.reproducer else {
        eprintln!("error: violations found but no reproducer built");
        return ExitCode::FAILURE;
    };
    println!(
        "shrunk scenario {} from {} to {} events in {} attempts",
        rep.scenario_index, rep.original_events, rep.shrunk_events, report.shrink_attempts
    );
    let path = format!("{}/chaos_reproducer.json", args.artifact_dir);
    match serde_json::to_string_pretty(rep) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("error writing {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
        Err(e) => eprintln!("serialisation error: {e}"),
    }
    ExitCode::FAILURE
}

/// The regression gates of `harness report`: the REPORT_sim.json
/// baseline comparison (with optional injected regression so CI can
/// prove the gate fails) and the BENCH_sim.json throughput comparison.
/// Exits non-zero on any regression.
fn run_report(args: &Args, runner: &Runner) -> ExitCode {
    use eevfs_audit::{compare_bench, compare_reports, AuditReport, BenchSnapshot};
    use eevfs_bench::attribution::build_attribution_report;

    // Bench-gate mode: compare two BENCH_sim.json snapshots and exit.
    if args.bench_baseline.is_some() || args.bench_current.is_some() {
        let (Some(base_path), Some(cur_path)) = (&args.bench_baseline, &args.bench_current) else {
            eprintln!("error: --bench-baseline and --bench-current must be given together");
            return ExitCode::FAILURE;
        };
        let read = |path: &str| -> Result<BenchSnapshot, String> {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
        };
        let (base, cur) = match (read(base_path), read(cur_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let regs = compare_bench(&cur, &base);
        if regs.is_empty() {
            println!(
                "bench gate passed: {:.1} runs/s parallel vs baseline {:.1} (floor {:.0}%)",
                cur.parallel_runs_per_sec,
                base.parallel_runs_per_sec,
                eevfs_audit::report::BENCH_FLOOR * 100.0
            );
            return ExitCode::SUCCESS;
        }
        for r in &regs {
            eprintln!("{}", r.describe());
        }
        return ExitCode::FAILURE;
    }

    let p = &args.params;
    eprintln!(
        "report: attribution cells, {} requests/run, serial then --jobs {}",
        p.requests,
        runner.jobs()
    );
    let serial = build_attribution_report(&Runner::serial(), p);
    let parallel = build_attribution_report(runner, p);
    let ((report, tables), (par_report, _)) = match (serial, parallel) {
        (Ok(s), Ok(q)) => (s, q),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (serial_json, parallel_json) = match (
        serde_json::to_string_pretty(&report),
        serde_json::to_string_pretty(&par_report),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("serialisation error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let byte_identical = serial_json == parallel_json;
    print!("{tables}");
    println!(
        "serial vs --jobs {} byte-identical: {byte_identical}",
        runner.jobs()
    );
    let path = args.json_path.as_deref().unwrap_or("REPORT_sim.json");
    if let Err(e) = std::fs::write(path, &serial_json) {
        eprintln!("error writing {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {path}");
    if !byte_identical {
        eprintln!("error: parallel results diverged from the serial path");
        return ExitCode::FAILURE;
    }

    if let Some(base_path) = &args.baseline {
        let text = match std::fs::read_to_string(base_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error reading {base_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base: AuditReport = match serde_json::from_str(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error parsing {base_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // The written artifact stays truthful; only the compared copy is
        // perturbed, so CI can prove the gate trips on a real regression.
        let mut compared = report;
        if let Some(pct) = args.inject_regression {
            for cell in &mut compared.cells {
                cell.energy_per_request_j *= 1.0 + pct / 100.0;
            }
            eprintln!("injected a {pct}% energy-per-request regression before the gate");
        }
        let regs = compare_reports(&compared, &base);
        if regs.is_empty() {
            println!("baseline gate passed against {base_path}");
            return ExitCode::SUCCESS;
        }
        for r in &regs {
            eprintln!("{}", r.describe());
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Everything the harness can emit, JSON-serialisable for EXPERIMENTS.md.
#[derive(serde::Serialize)]
struct HarnessOutput {
    requests: u32,
    seed: u64,
    sweeps: Vec<(String, Vec<eevfs_bench::sweeps::ExperimentPoint>)>,
    ablations: Vec<eevfs_bench::ablate::Ablation>,
}

fn panel_of(name: &str) -> Option<Panel> {
    match name {
        "a" => Some(Panel::DataSize),
        "b" => Some(Panel::Mu),
        "c" => Some(Panel::InterArrival),
        "d" => Some(Panel::PrefetchK),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let p = &args.params;
    let runner = Runner::new(args.jobs);
    let mut output = HarnessOutput {
        requests: p.requests,
        seed: p.seed,
        sweeps: Vec::new(),
        ablations: Vec::new(),
    };

    let cmd = args.command.as_str();
    match cmd {
        "all" => {
            for panel in Panel::ALL {
                let pts = panel.run_on(&runner, p);
                println!(
                    "{}",
                    render_sweep(&format!("sweep: {}", panel.xlabel()), &pts)
                );
                println!("{}", render_figure(&fig3_view(panel, &pts)));
                println!("{}", render_figure(&fig4_view(panel, &pts)));
                println!("{}", render_figure(&fig5_view(panel, &pts)));
                output.sweeps.push((panel.xlabel().to_string(), pts));
            }
            println!("{}", render_figure(&fig6(p)));
            for a in all_ablations_on(&runner, p) {
                println!("{}", render_ablation(&a));
                output.ablations.push(a);
            }
        }
        "sweeps" => {
            for panel in Panel::ALL {
                let pts = panel.run_on(&runner, p);
                println!(
                    "{}",
                    render_sweep(&format!("sweep: {}", panel.xlabel()), &pts)
                );
                output.sweeps.push((panel.xlabel().to_string(), pts));
            }
        }
        "fig3a" | "fig3b" | "fig3c" | "fig3d" => {
            let panel = panel_of(&cmd[4..]).expect("suffix checked");
            let pts = panel.run_on(&runner, p);
            println!("{}", render_figure(&fig3_view(panel, &pts)));
            output.sweeps.push((panel.xlabel().to_string(), pts));
        }
        "fig4" => {
            for panel in Panel::ALL {
                let pts = panel.run_on(&runner, p);
                println!("{}", render_figure(&fig4_view(panel, &pts)));
                output.sweeps.push((panel.xlabel().to_string(), pts));
            }
        }
        "fig5" => {
            for panel in Panel::ALL {
                let pts = panel.run_on(&runner, p);
                println!("{}", render_figure(&fig5_view(panel, &pts)));
                output.sweeps.push((panel.xlabel().to_string(), pts));
            }
        }
        "fig6" => {
            println!("{}", render_figure(&fig6(p)));
        }
        "power-curve" => {
            use eevfs::config::{ClusterSpec, EevfsConfig};
            use workload::synthetic::{generate, SyntheticSpec};
            let trace = generate(&SyntheticSpec {
                requests: p.requests,
                seed: p.seed,
                ..SyntheticSpec::paper_default()
            });
            let cluster = ClusterSpec::paper_testbed();
            let (_, pf) =
                eevfs::driver::run_cluster_traced(&cluster, &EevfsConfig::paper_pf(70), &trace);
            let (_, npf) =
                eevfs::driver::run_cluster_traced(&cluster, &EevfsConfig::paper_npf(), &trace);
            println!(
                "# whole-cluster power over time (W), PF(70) vs NPF, {} requests",
                p.requests
            );
            println!("{:>10} {:>10} {:>10}", "t (s)", "P_pf (W)", "P_npf (W)");
            let n = 60;
            let pf_pts = pf.resample(n + 1);
            let npf_pts = npf.resample(n + 1);
            for i in 1..=n {
                let (t1, e1) = pf_pts[i];
                let (t0, e0) = pf_pts[i - 1];
                let dt = (t1 - t0).as_secs_f64().max(1e-9);
                let p_pf = (e1 - e0) / dt;
                let (u1, f1) = npf_pts[(i * (npf_pts.len() - 1)) / n];
                let (u0, f0) = npf_pts[((i - 1) * (npf_pts.len() - 1)) / n];
                let p_npf = (f1 - f0) / (u1 - u0).as_secs_f64().max(1e-9);
                println!("{:>10.1} {:>10.1} {:>10.1}", t1.as_secs_f64(), p_pf, p_npf);
            }
        }
        "hist" => {
            use eevfs::config::{ClusterSpec, EevfsConfig};
            use eevfs_bench::report::render_response_histogram;
            use workload::synthetic::{generate, SyntheticSpec};
            let trace = generate(&SyntheticSpec {
                requests: p.requests,
                seed: p.seed,
                ..SyntheticSpec::paper_default()
            });
            let cluster = ClusterSpec::paper_testbed();
            let pf = eevfs::driver::run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
            let npf = eevfs::driver::run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
            println!("PF(70):\n{}", render_response_histogram(&pf, 16));
            println!("NPF:\n{}", render_response_histogram(&npf, 16));
        }
        "trace" => {
            use eevfs::config::{ClusterSpec, EevfsConfig};
            use eevfs::driver::run_cluster_observed;
            use eevfs_obs::{Recorder, TraceEvent};
            use fault_model::FaultPlan;
            use workload::synthetic::{generate, SyntheticSpec};
            let trace = generate(&SyntheticSpec {
                requests: p.requests,
                seed: p.seed,
                ..SyntheticSpec::paper_default()
            });
            let cluster = ClusterSpec::paper_testbed();
            let (metrics, report) = run_cluster_observed(
                &cluster,
                &EevfsConfig::paper_pf(70),
                &trace,
                &FaultPlan::none(),
                None,
                Recorder::default(),
            );
            let events: Vec<TraceEvent> = report.recorder.events().cloned().collect();
            let end_us = events.last().map(|e| e.at_us).unwrap_or(0);
            println!(
                "# observed PF(70) run: {} requests, seed {}, {} trace events",
                p.requests,
                p.seed,
                events.len()
            );
            println!("{}", eevfs_obs::render_power_timeline(&events, end_us, 72));
            println!("{}", report.registry.render_scalars());
            let pred = &metrics.prediction;
            println!(
                "prediction accuracy: {}/{} sleeps paid off ({:.1}%), \
                 mean predicted idle {:.1}s vs realised {:.1}s",
                pred.paid_off,
                pred.sleeps,
                pred.accuracy() * 100.0,
                pred.mean_predicted_s,
                pred.mean_realized_s,
            );
            println!("request 0, arrival to completion:");
            for e in report.recorder.request_history(0) {
                println!("  t={:>10.3}s  {:?}", e.at_us as f64 / 1e6, e.kind);
            }
            if let Some(path) = &args.trace_path {
                if let Err(e) = std::fs::write(path, report.recorder.to_jsonl()) {
                    eprintln!("error writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
        }
        "ablate" => {
            for a in all_ablations_on(&runner, p) {
                println!("{}", render_ablation(&a));
                output.ablations.push(a);
            }
        }
        "faults" => {
            let a = match eevfs_bench::ablate::try_ablate_faults_on(&runner, p) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", render_ablation(&a));
            println!(
                "{:>28} {:>10} {:>12} {:>8} {:>10} {:>10} {:>8}",
                "config", "energy J", "transitions", "mean s", "redirects", "failed", "events"
            );
            for r in &a.rows {
                println!(
                    "{:>28} {:>10.0} {:>12} {:>8.3} {:>10} {:>10} {:>8}",
                    r.name,
                    r.run.total_energy_j,
                    r.run.transitions.total(),
                    r.run.response.mean_s,
                    r.run.replica_redirects,
                    r.run.failed_requests,
                    r.run.fault_events,
                );
            }
            output.ablations.push(a);
        }
        "resilience" => {
            let a = match eevfs_bench::ablate::try_ablate_resilience_on(&runner, p) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", render_ablation(&a));
            // Machine-readable grid: one line per drop-rate × policy cell.
            println!(
                "{:>28} {:>10} {:>8} {:>8} {:>8} {:>7} {:>7} {:>6} {:>8} {:>7}",
                "config",
                "energy J",
                "mean s",
                "p95 s",
                "retries",
                "hedges",
                "won",
                "trips",
                "misses",
                "failed"
            );
            for r in &a.rows {
                let res = &r.run.resilience;
                println!(
                    "{:>28} {:>10.0} {:>8.3} {:>8.3} {:>8} {:>7} {:>7} {:>6} {:>8} {:>7}",
                    r.name,
                    r.run.total_energy_j,
                    r.run.response.mean_s,
                    r.run.response.p95_s,
                    res.rpc_retries,
                    res.hedges,
                    res.hedges_won,
                    res.breaker_trips,
                    res.deadline_misses,
                    r.run.failed_requests,
                );
            }
            output.ablations.push(a);
        }
        "scrub" => {
            let a = match eevfs_bench::ablate::try_ablate_scrub_on(&runner, p) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", render_ablation(&a));
            // Machine-readable grid: one line per rate × R × policy cell.
            println!(
                "{:>48} {:>10} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7} {:>8} {:>8}",
                "config",
                "energy J",
                "landed",
                "det rd",
                "det scr",
                "repaired",
                "unrecov",
                "latent",
                "passes",
                "scrub J",
                "replays"
            );
            for r in &a.rows {
                let d = &r.run.durability;
                println!(
                    "{:>48} {:>10.0} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7} {:>8.1} {:>8}",
                    r.name,
                    r.run.total_energy_j,
                    d.corruptions_landed,
                    d.detected_on_read,
                    d.detected_by_scrub,
                    d.repaired_blocks,
                    d.unrecoverable_blocks,
                    d.latent_at_end,
                    d.scrub_passes,
                    r.run.scrub_energy_j,
                    d.journal_replays,
                );
            }
            output.ablations.push(a);
        }
        "power" => {
            use eevfs_bench::power::{
                adaptive_beats_fixed, render_power_report, run_power_grid_on,
            };

            eprintln!(
                "power: predictor × tier × workload grid, {} requests/run, \
                 serial then --jobs {}",
                p.requests,
                runner.jobs()
            );
            let serial_pts = run_power_grid_on(&Runner::serial(), p);
            let parallel_pts = run_power_grid_on(&runner, p);
            let (serial_json, parallel_json) = match (
                serde_json::to_string(&serial_pts),
                serde_json::to_string(&parallel_pts),
            ) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("serialisation error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let byte_identical = serial_json == parallel_json;

            print!("{}", render_power_report(&serial_pts));
            println!(
                "adaptive predictor beats fixed (energy, ≤ response): {}",
                adaptive_beats_fixed(&serial_pts)
            );
            println!(
                "serial vs --jobs {} byte-identical: {byte_identical}",
                runner.jobs()
            );

            let path = args.json_path.as_deref().unwrap_or("POWER_sim.json");
            match serde_json::to_string_pretty(&serial_pts) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("error writing {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path}");
                }
                Err(e) => {
                    eprintln!("serialisation error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if !byte_identical {
                eprintln!("error: parallel results diverged from the serial path");
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        "bench" => {
            use eevfs_bench::sweeps::run_reference_grid;
            use std::time::Instant;

            let grid_points = eevfs_bench::sweeps::reference_grid().len();
            let runs = grid_points * 2; // PF + NPF per cell
            eprintln!(
                "bench: {grid_points}-point reference grid ({runs} simulations per pass), \
                 {} requests/run, serial then --jobs {}",
                p.requests,
                runner.jobs()
            );

            let t = Instant::now();
            let serial_pts = run_reference_grid(&Runner::serial(), p);
            let serial_s = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let parallel_pts = run_reference_grid(&runner, p);
            let parallel_s = t.elapsed().as_secs_f64();

            let (serial_json, parallel_json) = match (
                serde_json::to_string(&serial_pts),
                serde_json::to_string(&parallel_pts),
            ) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("serialisation error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let byte_identical = serial_json == parallel_json;

            let report = eevfs_audit::BenchSnapshot {
                requests: p.requests,
                seed: p.seed,
                jobs: runner.jobs(),
                grid_points,
                runs,
                serial_s,
                parallel_s,
                serial_runs_per_sec: runs as f64 / serial_s.max(1e-9),
                parallel_runs_per_sec: runs as f64 / parallel_s.max(1e-9),
                speedup: serial_s / parallel_s.max(1e-9),
                byte_identical,
            };
            println!(
                "serial:   {:>8.3} s  ({:.1} runs/s)\n\
                 parallel: {:>8.3} s  ({:.1} runs/s, --jobs {})\n\
                 speedup:  {:>8.2}x\n\
                 results byte-identical: {}",
                report.serial_s,
                report.serial_runs_per_sec,
                report.parallel_s,
                report.parallel_runs_per_sec,
                report.jobs,
                report.speedup,
                report.byte_identical,
            );
            let path = args.json_path.as_deref().unwrap_or("BENCH_sim.json");
            match serde_json::to_string_pretty(&report) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("error writing {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path}");
                }
                Err(e) => {
                    eprintln!("serialisation error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if !byte_identical {
                eprintln!("error: parallel results diverged from the serial path");
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        "chaos" => return run_chaos(&args, &runner),
        "report" => return run_report(&args, &runner),
        "load" => return run_load(&args, &runner),
        other => {
            eprintln!(
                "unknown command {other}; try: all, sweeps, fig3a-d, fig4, fig5, fig6, \
                 ablate, faults, resilience, scrub, power-curve, hist, trace, bench, power, \
                 chaos, report"
            );
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = args.json_path {
        match serde_json::to_string_pretty(&output) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("error writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            Err(e) => {
                eprintln!("serialisation error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
