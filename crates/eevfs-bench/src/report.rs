//! Text-table and JSON rendering for the harness.

use crate::ablate::Ablation;
use crate::figures::Figure;
use crate::sweeps::ExperimentPoint;
use std::fmt::Write as _;

/// Renders one figure as an aligned text table with the derived savings /
/// penalty column the paper quotes in prose.
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    writeln!(out, "{}  [{} vs {}]", fig.id, fig.ylabel, fig.xlabel).expect("write");
    writeln!(
        out,
        "{:<22} {:>14} {:>14} {:>10}",
        fig.xlabel, "PF", "NPF", "delta"
    )
    .expect("write");
    for (label, pf, npf) in &fig.rows {
        let delta = if *npf != 0.0 {
            format!("{:+.1}%", (pf / npf - 1.0) * 100.0)
        } else {
            "-".into()
        };
        writeln!(out, "{label:<22} {pf:>14.1} {npf:>14.1} {delta:>10}").expect("write");
    }
    out
}

/// Renders a full sweep (all three metric views) as the paper reports it.
pub fn render_sweep(title: &str, pts: &[ExperimentPoint]) -> String {
    let mut out = String::new();
    writeln!(out, "== {title} ==").expect("write");
    writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "x",
        "E_pf (J)",
        "E_npf (J)",
        "savings",
        "trans",
        "rt_pf(s)",
        "rt_npf(s)",
        "penalty",
        "hit%"
    )
    .expect("write");
    for p in pts {
        writeln!(
            out,
            "{:<12} {:>12.0} {:>12.0} {:>8.1}% {:>7} {:>9.3} {:>9.3} {:>8.1}% {:>7.1}%",
            p.label,
            p.pf.total_energy_j,
            p.npf.total_energy_j,
            p.savings() * 100.0,
            p.pf.transitions.total(),
            p.pf.response.mean_s,
            p.npf.response.mean_s,
            p.penalty() * 100.0,
            p.pf.hit_rate() * 100.0,
        )
        .expect("write");
    }
    out
}

/// Renders a response-time histogram as an ASCII bar chart (the paper's
/// Fig 5 reports means; the distribution shows the bimodality that spin-up
/// penalties create: a fast buffer-served mode and a slow wake mode).
pub fn render_response_histogram(m: &eevfs::metrics::RunMetrics, bins: usize) -> String {
    let mut out = String::new();
    if m.response_samples_s.is_empty() {
        return "no responses recorded\n".into();
    }
    let hi = m.response.max_s * 1.0001;
    let mut h = sim_core::Histogram::new(0.0, hi.max(1e-6), bins);
    for &x in &m.response_samples_s {
        h.record(x);
    }
    let peak = (0..h.num_bins())
        .map(|i| h.bin_count(i))
        .max()
        .unwrap_or(1)
        .max(1);
    writeln!(
        out,
        "response-time distribution ({} samples):",
        m.response_samples_s.len()
    )
    .expect("write");
    for i in 0..h.num_bins() {
        let (lo, hi) = h.bin_bounds(i);
        let count = h.bin_count(i);
        let width = (count * 50 / peak) as usize;
        writeln!(
            out,
            "{:>7.2}-{:<7.2}s {:>5} |{}",
            lo,
            hi,
            count,
            "#".repeat(width)
        )
        .expect("write");
    }
    out
}

/// Renders an ablation table.
pub fn render_ablation(a: &Ablation) -> String {
    let mut out = String::new();
    writeln!(out, "== Ablation: {} ==", a.title).expect("write");
    writeln!(
        out,
        "{:<36} {:>12} {:>9} {:>9} {:>7} {:>9}",
        "config", "energy (J)", "savings", "penalty", "trans", "standby"
    )
    .expect("write");
    for r in &a.rows {
        writeln!(
            out,
            "{:<36} {:>12.0} {:>8.1}% {:>8.1}% {:>7} {:>8.1}%",
            r.name,
            r.run.total_energy_j,
            r.savings * 100.0,
            r.penalty * 100.0,
            r.run.transitions.total(),
            r.run.mean_standby_fraction() * 100.0,
        )
        .expect("write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{fig6, Figure};
    use crate::sweeps::SweepParams;

    #[test]
    fn figure_rendering_contains_all_rows() {
        let fig = Figure {
            id: "Fig X".into(),
            ylabel: "Energy (J)".into(),
            xlabel: "MU".into(),
            rows: vec![("MU=1".into(), 90.0, 100.0), ("MU=10".into(), 95.0, 100.0)],
        };
        let text = render_figure(&fig);
        assert!(text.contains("Fig X"));
        assert!(text.contains("MU=1"));
        assert!(text.contains("-10.0%"));
        assert!(text.contains("-5.0%"));
    }

    #[test]
    fn zero_npf_column_renders_dash() {
        let fig = Figure {
            id: "Fig 4".into(),
            ylabel: "transitions".into(),
            xlabel: "K".into(),
            rows: vec![("K=10".into(), 447.0, 0.0)],
        };
        assert!(render_figure(&fig).contains('-'));
    }

    #[test]
    fn histogram_renders_bimodal_penalties() {
        use eevfs::config::{ClusterSpec, EevfsConfig};
        use eevfs::driver::run_cluster;
        use workload::synthetic::{generate, SyntheticSpec};
        let trace = generate(&SyntheticSpec {
            requests: 120,
            ..SyntheticSpec::paper_default()
        });
        let m = run_cluster(
            &ClusterSpec::paper_testbed(),
            &EevfsConfig::paper_pf(70),
            &trace,
        );
        let text = render_response_histogram(&m, 12);
        assert!(text.contains("response-time distribution"));
        assert!(text.lines().count() >= 13);
        assert!(text.contains('#'));
    }

    #[test]
    fn end_to_end_render_of_a_real_figure() {
        let p = SweepParams {
            requests: 60,
            ..SweepParams::default()
        };
        let text = render_figure(&fig6(&p));
        assert!(text.contains("Berkeley"));
    }
}
