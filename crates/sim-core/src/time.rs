//! Integer-microsecond simulated time.
//!
//! All simulation timestamps are [`SimTime`] (microseconds since the start
//! of the run) and all intervals are [`SimDuration`]. Using integers rather
//! than `f64` keeps event ordering exact: two events scheduled from the same
//! arithmetic always compare identically on every platform, which is what
//! makes whole-cluster runs reproducible byte-for-byte.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds per second, as used throughout the crate.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Microseconds per millisecond.
pub const MICROS_PER_MS: u64 = 1_000;

/// An instant in simulated time, in microseconds since run start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Builds a time from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * MICROS_PER_MS)
    }

    /// Builds a time from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// This instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This instant expressed in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration since an earlier instant. Saturates at zero rather than
    /// panicking so that racy-looking metric code stays total.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (never wraps past `SimTime::MAX`).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration; useful as a sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Builds a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MICROS_PER_MS)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let us = s * MICROS_PER_SEC as f64;
        if us >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(us.round() as u64)
        }
    }

    /// This duration in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This duration in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in whole milliseconds (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MS
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// True when the duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3_000));
        assert_eq!(SimTime::from_millis(5), SimTime::from_micros(5_000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
    }

    #[test]
    fn add_and_since() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(
            t.since(SimTime::from_secs(1)),
            SimDuration::from_millis(500)
        );
        // Saturating: earlier.since(later) is zero, not a panic.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn sub_is_since() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!(a - b, SimDuration::from_secs(6));
        assert_eq!(b - a, SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn rounding_to_nearest_microsecond() {
        // 1.4 us rounds down, 1.6 us rounds up.
        assert_eq!(SimDuration::from_secs_f64(1.4e-6).as_micros(), 1);
        assert_eq!(SimDuration::from_secs_f64(1.6e-6).as_micros(), 2);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_micros(1)), "0.000001s");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
    }
}
