//! Seeded randomness and the distributions the EEVFS workloads need.
//!
//! The paper's synthetic traces draw file indices from a Poisson
//! distribution whose mean ("the MU value") runs from 1 to 1000, so the
//! Poisson sampler must stay numerically sound for large means — the
//! classic Knuth product-of-uniforms method underflows `exp(-mu)` around
//! `mu > 700`. We instead count unit-rate exponential arrivals until their
//! sum exceeds `mu`, which is exact for any mean and costs `O(mu)` draws,
//! cheap at trace-generation scale.
//!
//! A hand-rolled Zipf sampler (inverse-CDF over a precomputed table) backs
//! the Berkeley-web-trace substitute, whose defining property in the paper
//! is a heavy skew toward a small working set.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic simulation RNG. All workload randomness flows from one of
/// these, seeded from the experiment config, so runs are reproducible.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Splits off an independent child RNG. Deriving children from draws of
    /// the parent keeps sub-streams decoupled: adding draws to one consumer
    /// does not perturb another.
    pub fn split(&mut self) -> SimRng {
        let seed = self.inner.gen::<u64>();
        SimRng::seed_from_u64(seed)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform choice of an index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() over an empty collection");
        self.inner.gen_range(0..n)
    }

    /// Exponential variate with the given mean (`mean > 0`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "bad exponential mean {mean}"
        );
        // Inverse CDF; guard the log against u == 0.
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// Poisson variate with mean `mu >= 0`.
    ///
    /// Counts unit-rate exponential inter-arrivals until the running sum
    /// passes `mu`. Exact for all `mu` (no `exp(-mu)` underflow) and costs
    /// `O(mu)` uniform draws.
    pub fn poisson(&mut self, mu: f64) -> u64 {
        assert!(mu >= 0.0 && mu.is_finite(), "bad poisson mean {mu}");
        if mu == 0.0 {
            return 0;
        }
        let mut sum = 0.0f64;
        let mut k = 0u64;
        loop {
            sum += self.exponential(1.0);
            if sum > mu {
                return k;
            }
            k += 1;
        }
    }

    /// Standard normal variate (Box–Muller, one value per call).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev {std_dev}");
        let u1: f64 = 1.0 - self.uniform();
        let u2: f64 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal variate parameterised by the *target* mean and the sigma
    /// of the underlying normal. Used for file-size distributions where the
    /// paper reports only a mean.
    pub fn log_normal_with_mean(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(mean > 0.0, "log-normal mean must be positive, got {mean}");
        // If X = exp(N(m, s)), E[X] = exp(m + s^2/2); solve m for target mean.
        let m = mean.ln() - sigma * sigma / 2.0;
        self.normal(m, sigma).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// Zipf sampler over ranks `0..n` with exponent `alpha`.
///
/// Precomputes the CDF once (`O(n)`), then samples by binary search
/// (`O(log n)`). Rank 0 is the most popular item.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler for `n > 0` ranks with skew `alpha >= 0`
    /// (`alpha = 0` is uniform; larger is more skewed).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(alpha >= 0.0 && alpha.is_finite(), "bad Zipf alpha {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against accumulated float error at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is exactly one rank (degenerate sampler).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        // partition_point: first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 produced near-identical streams");
    }

    #[test]
    fn split_streams_are_decoupled() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut child1 = parent1.split();
        let mut child2 = parent2.split();
        // Consuming extra draws from parent2 must not change child2's stream.
        for _ in 0..10 {
            parent2.next_u64();
        }
        for _ in 0..50 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn poisson_small_mean_matches_expectation() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "poisson(4) sample mean {mean}");
    }

    #[test]
    fn poisson_large_mean_no_underflow() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 2_000;
        let samples: Vec<u64> = (0..n).map(|_| rng.poisson(1000.0)).collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        assert!(
            (mean - 1000.0).abs() < 5.0,
            "poisson(1000) sample mean {mean}"
        );
        // Variance of Poisson equals its mean.
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(
            (var - 1000.0).abs() < 150.0,
            "poisson(1000) sample var {var}"
        );
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..10 {
            assert_eq!(rng.poisson(0.0), 0);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from_u64(6);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(0.7)).sum::<f64>() / n as f64;
        assert!((mean - 0.7).abs() < 0.02, "exp(0.7) sample mean {mean}");
    }

    #[test]
    fn log_normal_hits_target_mean() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| rng.log_normal_with_mean(10.0, 0.5))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "log-normal sample mean {mean}");
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SimRng::seed_from_u64(8);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[99]);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(137, 1.3);
        let sum: f64 = (0..z.len()).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_sample_always_in_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(10);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }
}
