//! Summary statistics for experiment metrics.
//!
//! The harness reports the same quantities as the paper's figures: mean
//! response time, total energy, transition counts. [`OnlineStats`] gives
//! numerically stable running moments (Welford), and [`Histogram`] gives
//! fixed-width binned counts for distribution sanity checks.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance plus min/max.
///
/// Serialisation is hand-written rather than derived: an empty accumulator
/// holds `min = +inf` / `max = -inf`, and JSON has no representation for
/// non-finite floats (the serialiser writes them as `null`, which a derived
/// deserialiser would read back as NaN). The manual impl writes non-finite
/// min/max as `null` and restores the empty-accumulator sentinels, so the
/// struct round-trips through JSON in every state.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Serialize for OnlineStats {
    fn serialize(&self) -> serde::Value {
        fn finite_or_null(x: f64) -> serde::Value {
            if x.is_finite() {
                serde::Value::F64(x)
            } else {
                serde::Value::Null
            }
        }
        serde::Value::Map(vec![
            ("count".to_string(), serde::Value::U64(self.count)),
            ("mean".to_string(), serde::Value::F64(self.mean)),
            ("m2".to_string(), serde::Value::F64(self.m2)),
            ("min".to_string(), finite_or_null(self.min)),
            ("max".to_string(), finite_or_null(self.max)),
        ])
    }
}

impl Deserialize for OnlineStats {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for OnlineStats"))?;
        let min: Option<f64> = serde::de_field(m, "min")?;
        let max: Option<f64> = serde::de_field(m, "max")?;
        Ok(OnlineStats {
            count: serde::de_field(m, "count")?,
            mean: serde::de_field(m, "mean")?,
            m2: serde::de_field(m, "m2")?,
            min: min.unwrap_or(f64::INFINITY),
            max: max.unwrap_or(f64::NEG_INFINITY),
        })
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

/// Sorts samples ascending for repeated [`percentile_sorted`] queries.
/// Panics on NaN input (percentiles over NaN are meaningless).
pub fn sorted_samples(samples: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    sorted
}

/// Percentile over *already sorted* samples via linear interpolation
/// between order statistics. `q` in `[0, 1]`. Returns `None` for an empty
/// slice. Use this (with one [`sorted_samples`] call) when extracting
/// several quantiles from the same sample set — [`percentile`] re-sorts
/// on every call.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "percentile q={q} outside [0,1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted input must be ascending"
    );
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Percentile of a sample set via linear interpolation between order
/// statistics. `q` in `[0, 1]`. Returns `None` for an empty slice.
///
/// Sorts a copy per call; for several quantiles over the same samples,
/// sort once with [`sorted_samples`] and use [`percentile_sorted`].
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    percentile_sorted(&sorted_samples(samples), q)
}

/// Ordinary-least-squares fit `y = slope * x + intercept` plus the
/// coefficient of determination `r2`. Returns `None` for fewer than two
/// points or zero x-variance.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Option<(f64, f64, f64)> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some((slope, intercept, r2))
}

/// Fixed-width histogram over `[lo, hi)` with saturating under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nan: u64,
}

impl Histogram {
    /// Creates a histogram with `bins >= 1` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range [{lo}, {hi}) is empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            nan: 0,
        }
    }

    /// Records one observation.
    ///
    /// NaN fails both range comparisons, so without its own counter it
    /// would cast to index 0 and silently inflate the first bin; it is
    /// counted separately instead.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Float edge: x just below hi can round to bins.len().
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `(lo, hi)` bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN observations (unorderable, so binned nowhere).
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Total observations recorded, including under/overflow and NaN.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow + self.nan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..313] {
            left.push(x);
        }
        for &x in &data[313..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), before);

        let mut empty = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(7.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        // Unsorted input works too.
        assert_eq!(percentile(&[4.0, 1.0, 3.0, 2.0], 0.5), Some(2.5));
    }

    #[test]
    fn percentile_sorted_matches_percentile() {
        let raw = [4.0, 1.0, 3.0, 2.0, 8.0, 0.5];
        let sorted = sorted_samples(&raw);
        for q in [0.0, 0.25, 0.5, 0.77, 0.95, 1.0] {
            assert_eq!(percentile_sorted(&sorted, q), percentile(&raw, q));
        }
        assert_eq!(percentile_sorted(&[], 0.5), None);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 0.0), Some(42.0));
        assert_eq!(percentile(&[42.0], 0.5), Some(42.0));
        assert_eq!(percentile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn regression_recovers_exact_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        let (m, b, r2) = linear_regression(&xs, &ys).expect("fit");
        assert!((m - 3.0).abs() < 1e-12);
        assert!((b - 7.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_r2_drops_with_noise() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        // Deterministic "noise" decorrelated from x.
        let ys: Vec<f64> = xs.iter().map(|x| x + 30.0 * (x * 12.9898).sin()).collect();
        let (_, _, r2) = linear_regression(&xs, &ys).expect("fit");
        assert!(r2 < 0.99 && r2 > 0.3, "r2 {r2}");
    }

    #[test]
    fn regression_degenerate_inputs() {
        assert!(linear_regression(&[], &[]).is_none());
        assert!(linear_regression(&[1.0], &[2.0]).is_none());
        assert!(
            linear_regression(&[5.0, 5.0], &[1.0, 2.0]).is_none(),
            "zero x-variance"
        );
        // Flat y: perfect fit with slope 0.
        let (m, _, r2) = linear_regression(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).expect("fit");
        assert_eq!(m, 0.0);
        assert_eq!(r2, 1.0);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-0.1); // underflow
        h.record(0.0); // bin 0
        h.record(1.999); // bin 0
        h.record(2.0); // bin 1
        h.record(9.999); // bin 4
        h.record(10.0); // overflow
        h.record(100.0); // overflow
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(1), (2.0, 4.0));
        assert_eq!(h.num_bins(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn histogram_counts_nan_separately() {
        // Regression: NaN fails both range comparisons and `NaN as usize`
        // is 0, so it used to land silently in bin 0.
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(f64::NAN);
        h.record(f64::NAN);
        h.record(1.0);
        assert_eq!(h.bin_count(0), 1, "only the real observation");
        assert_eq!(h.nan(), 2);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn empty_online_stats_roundtrip_through_json() {
        // min/max are ±inf when empty; JSON would render them as null and
        // a derived deserialiser would read NaN back. The manual impl
        // restores the sentinels.
        let empty = OnlineStats::new();
        let json = serde_json::to_string(&empty).expect("serialise");
        let back: OnlineStats = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.count(), 0);
        assert_eq!(back.min(), f64::INFINITY);
        assert_eq!(back.max(), f64::NEG_INFINITY);
        // And the restored accumulator still works.
        let mut back = back;
        back.push(3.0);
        assert_eq!(back.min(), 3.0);
        assert_eq!(back.max(), 3.0);
    }

    #[test]
    fn populated_online_stats_roundtrip_through_json() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 9.0] {
            s.push(x);
        }
        let json = serde_json::to_string(&s).expect("serialise");
        let back: OnlineStats = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.count(), s.count());
        assert_eq!(back.mean(), s.mean());
        assert_eq!(back.variance(), s.variance());
        assert_eq!(back.min(), 2.0);
        assert_eq!(back.max(), 9.0);
    }
}
