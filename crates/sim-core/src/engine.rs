//! Minimal simulation driver loop.
//!
//! A [`Model`] owns all mutable state and reacts to popped events by
//! scheduling more events. The [`Engine`] just runs the pop/dispatch loop
//! until the queue drains or a horizon is reached. Larger models (the EEVFS
//! cluster driver) embed an [`EventQueue`] directly instead; this engine is
//! the convenient path for small models, examples, and tests.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A discrete-event model: state plus an event handler.
pub trait Model {
    /// The event alphabet of the model.
    type Event;

    /// Handles one event at time `now`, scheduling follow-ups on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Callback invoked for every dispatched event, before the model handles
/// it. Observers are read-only taps for tracing/telemetry: they cannot
/// schedule events or mutate the model, so attaching one never perturbs
/// the simulated outcome.
pub type Observer<E> = Box<dyn FnMut(SimTime, &E)>;

/// Drives a [`Model`] against an [`EventQueue`].
pub struct Engine<M: Model> {
    queue: EventQueue<M::Event>,
    model: M,
    processed: u64,
    observer: Option<Observer<M::Event>>,
}

impl<M: Model> Engine<M> {
    /// Wraps a model with an empty queue.
    pub fn new(model: M) -> Self {
        Engine {
            queue: EventQueue::new(),
            model,
            processed: 0,
            observer: None,
        }
    }

    /// Wraps a model with an empty queue pre-sized for `capacity` pending
    /// events (see [`EventQueue::with_capacity`]).
    pub fn with_capacity(model: M, capacity: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(capacity),
            model,
            processed: 0,
            observer: None,
        }
    }

    /// Installs an [`Observer`] called with `(now, &event)` for every
    /// dispatch. Replaces any previous observer.
    pub fn set_observer(&mut self, f: impl FnMut(SimTime, &M::Event) + 'static) {
        self.observer = Some(Box::new(f));
    }

    /// Removes and returns the installed observer, if any — typically to
    /// recover state captured by the closure after a run.
    pub fn take_observer(&mut self) -> Option<Observer<M::Event>> {
        self.observer.take()
    }

    /// Access to the queue, e.g. to seed initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<M::Event> {
        &mut self.queue
    }

    /// Access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Runs until the queue drains. Returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`. Events at exactly `horizon` still fire.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event vanished");
            if let Some(obs) = &mut self.observer {
                obs(now, &ev);
            }
            self.model.handle(now, ev, &mut self.queue);
            self.processed += 1;
        }
        self.queue.now()
    }

    /// Consumes the engine, returning the model (for post-run inspection).
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A model that counts down: each tick schedules the next until zero.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Model for Countdown {
        type Event = ();
        fn handle(&mut self, now: SimTime, _ev: (), queue: &mut EventQueue<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.schedule(now + SimDuration::from_secs(1), ());
            }
        }
    }

    #[test]
    fn runs_to_completion() {
        let mut eng = Engine::new(Countdown {
            remaining: 3,
            fired_at: vec![],
        });
        eng.queue_mut().schedule(SimTime::ZERO, ());
        let end = eng.run();
        assert_eq!(end, SimTime::from_secs(3));
        assert_eq!(eng.processed(), 4);
        assert_eq!(
            eng.model().fired_at,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn horizon_stops_early_but_keeps_pending_events() {
        let mut eng = Engine::new(Countdown {
            remaining: 10,
            fired_at: vec![],
        });
        eng.queue_mut().schedule(SimTime::ZERO, ());
        eng.run_until(SimTime::from_secs(4));
        // Fired at 0..=4 inclusive (events at the horizon still fire).
        assert_eq!(eng.model().fired_at.len(), 5);
        assert_eq!(eng.queue_mut().len(), 1);
        // Resume to completion.
        eng.run();
        assert_eq!(eng.model().fired_at.len(), 11);
    }

    #[test]
    fn observer_sees_every_dispatch_without_perturbing_the_run() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let run = |observed: Option<Rc<RefCell<Vec<SimTime>>>>| {
            let mut eng = Engine::new(Countdown {
                remaining: 3,
                fired_at: vec![],
            });
            if let Some(log) = observed {
                eng.set_observer(move |now, _ev| log.borrow_mut().push(now));
            }
            eng.queue_mut().schedule(SimTime::ZERO, ());
            eng.run();
            eng.into_model().fired_at
        };

        let log = Rc::new(RefCell::new(Vec::new()));
        let traced = run(Some(Rc::clone(&log)));
        let plain = run(None);
        assert_eq!(traced, plain, "observer must not change the outcome");
        assert_eq!(*log.borrow(), traced, "observer sees each dispatch");
    }

    #[test]
    fn take_observer_recovers_the_closure() {
        let mut eng = Engine::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        assert!(eng.take_observer().is_none());
        eng.set_observer(|_, _| {});
        assert!(eng.take_observer().is_some());
        assert!(eng.take_observer().is_none());
    }

    #[test]
    fn empty_queue_run_is_a_noop() {
        let mut eng = Engine::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        assert_eq!(eng.run(), SimTime::ZERO);
        assert_eq!(eng.processed(), 0);
    }
}
