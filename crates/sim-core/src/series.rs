//! Append-only time series.
//!
//! The disk energy meters record `(time, cumulative joules)` samples and the
//! harness needs power-over-time curves for the figures; [`TimeSeries`]
//! stores strictly time-ordered samples and supports interpolation and
//! uniform resampling.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A time-ordered sequence of `(SimTime, f64)` samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. `t` must be `>=` the last recorded time; equal
    /// timestamps overwrite the previous value (last-writer-wins), which is
    /// what energy meters want when several state changes land on the same
    /// microsecond.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "time series went backwards: {t} after {last}");
            if t == last {
                *self.values.last_mut().expect("times/values in sync") = v;
                return;
            }
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample by index.
    pub fn get(&self, i: usize) -> (SimTime, f64) {
        (self.times[i], self.values[i])
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        match (self.times.last(), self.values.last()) {
            (Some(&t), Some(&v)) => Some((t, v)),
            _ => None,
        }
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Linear interpolation at time `t`. Clamps to the first/last value
    /// outside the recorded range. Returns `None` for an empty series.
    pub fn interpolate(&self, t: SimTime) -> Option<f64> {
        if self.times.is_empty() {
            return None;
        }
        if t <= self.times[0] {
            return Some(self.values[0]);
        }
        let n = self.times.len();
        if t >= self.times[n - 1] {
            return Some(self.values[n - 1]);
        }
        // First index with time > t; since t < last, idx is in [1, n-1].
        let idx = self.times.partition_point(|&x| x <= t);
        let (t0, v0) = (self.times[idx - 1], self.values[idx - 1]);
        let (t1, v1) = (self.times[idx], self.values[idx]);
        let span = (t1 - t0).as_micros() as f64;
        let frac = (t - t0).as_micros() as f64 / span;
        Some(v0 + (v1 - v0) * frac)
    }

    /// Resamples onto `n >= 2` uniformly spaced points across the recorded
    /// span. Returns an empty vector for an empty series.
    pub fn resample(&self, n: usize) -> Vec<(SimTime, f64)> {
        assert!(n >= 2, "resample needs at least two points");
        if self.times.is_empty() {
            return Vec::new();
        }
        let t0 = self.times[0].as_micros();
        let t1 = self.times[self.times.len() - 1].as_micros();
        (0..n)
            .map(|i| {
                let t = SimTime::from_micros(t0 + (t1 - t0) * i as u64 / (n as u64 - 1));
                (t, self.interpolate(t).expect("non-empty series"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_get() {
        let mut ts = TimeSeries::new();
        ts.push(secs(0), 0.0);
        ts.push(secs(10), 100.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.get(1), (secs(10), 100.0));
        assert_eq!(ts.last(), Some((secs(10), 100.0)));
    }

    #[test]
    fn equal_timestamp_overwrites() {
        let mut ts = TimeSeries::new();
        ts.push(secs(1), 5.0);
        ts.push(secs(1), 7.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.get(0), (secs(1), 7.0));
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.push(secs(2), 1.0);
        ts.push(secs(1), 2.0);
    }

    #[test]
    fn interpolation_midpoint_and_clamp() {
        let mut ts = TimeSeries::new();
        ts.push(secs(0), 0.0);
        ts.push(secs(10), 100.0);
        assert_eq!(ts.interpolate(secs(5)), Some(50.0));
        assert_eq!(ts.interpolate(SimTime::ZERO), Some(0.0));
        assert_eq!(ts.interpolate(secs(99)), Some(100.0));
    }

    #[test]
    fn interpolation_multi_segment() {
        let mut ts = TimeSeries::new();
        ts.push(secs(0), 0.0);
        ts.push(secs(2), 20.0);
        ts.push(secs(4), 0.0);
        assert_eq!(ts.interpolate(secs(1)), Some(10.0));
        assert_eq!(ts.interpolate(secs(3)), Some(10.0));
        assert_eq!(ts.interpolate(secs(2)), Some(20.0));
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.interpolate(secs(1)), None);
        assert!(ts.resample(5).is_empty());
        assert_eq!(ts.last(), None);
    }

    #[test]
    fn resample_endpoints_match() {
        let mut ts = TimeSeries::new();
        ts.push(secs(0), 1.0);
        ts.push(secs(3), 4.0);
        ts.push(secs(6), 7.0);
        let r = ts.resample(4);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], (secs(0), 1.0));
        assert_eq!(r[3], (secs(6), 7.0));
        // Linear ramp: interior points follow the line v = t + 1.
        assert!((r[1].1 - (r[1].0.as_secs_f64() + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn iter_yields_all() {
        let mut ts = TimeSeries::new();
        ts.push(secs(1), 1.0);
        ts.push(secs(2), 2.0);
        let all: Vec<_> = ts.iter().collect();
        assert_eq!(all, vec![(secs(1), 1.0), (secs(2), 2.0)]);
    }
}
