//! # sim-core
//!
//! Deterministic discrete-event simulation (DES) substrate for the EEVFS
//! reproduction.
//!
//! The EEVFS paper (ICPP 2010) evaluates a physical cluster; this crate
//! provides the machinery to replay the same dynamics in simulated time:
//!
//! * [`time`] — integer microsecond clock ([`SimTime`], [`SimDuration`])
//!   so that event ordering is exact and runs are bit-reproducible.
//! * [`event`] — a time-ordered event queue with stable FIFO tie-breaking.
//! * [`engine`] — a minimal driver loop for models that own their state.
//! * [`rng`] — a seeded RNG with the distributions the workloads need
//!   (Poisson with arbitrarily large mean, Zipf, exponential, log-normal).
//! * [`stats`] — online summary statistics, percentiles, and histograms.
//! * [`series`] — append-only time series used by the energy meters.
//!
//! Everything here is deliberately free of wall-clock time, threads, and
//! global state: a simulation is a pure function of its inputs and seed.

#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use engine::{Engine, Model, Observer};
pub use event::EventQueue;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{linear_regression, Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
