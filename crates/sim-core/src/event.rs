//! Time-ordered event queue with stable FIFO tie-breaking.
//!
//! `std::collections::BinaryHeap` is not stable: equal-priority items pop in
//! an unspecified order that depends on the internal sift pattern. Energy
//! accounting in the disk model is order-sensitive (a sleep decision and a
//! request arriving at the same microsecond must resolve the same way every
//! run), so [`EventQueue`] tags every push with a monotone sequence number
//! and orders by `(time, seq)`.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: a `Reverse`-style ordering on `(time, seq)` so the
/// `BinaryHeap` max-heap pops the earliest event first.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the smallest (time, seq) is the "greatest" heap element.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events with equal timestamps pop in insertion order. Scheduling an event
/// in the past is a logic error in the model and panics in debug builds; in
/// release builds the event fires "now" (at the time of the next pop) rather
/// than corrupting the clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    /// Drivers that know their event population up front (one `Issue` per
    /// trace record, one slot per fault-plan entry, ...) pre-size the heap
    /// so the hot loop never reallocates mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Drains every pending event in order; the clock ends at the last
    /// event's timestamp.
    pub fn drain_ordered(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1u32);
        q.schedule(SimTime::from_secs(3), 3u32);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Schedule relative to the advanced clock.
        q.schedule(q.now() + SimDuration::from_secs(1), 2u32);
        let rest: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(rest, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn presized_queue_behaves_identically() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        q.schedule(SimTime::from_millis(20), "b");
        q.schedule(SimTime::from_millis(10), "a");
        q.reserve(128);
        assert!(q.capacity() >= 130);
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b"]);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
