//! Seeded data-corruption and crash/restart schedules.
//!
//! The fail-stop plans in the crate root model disks that *disappear*;
//! real drives also lie: latent sector errors surface only when a block
//! is next read, and bit rot silently flips stored bits. Both are
//! invisible until something checks — which is exactly what the EEVFS
//! buffer-disk design must do opportunistically, because waking a
//! sleeping data disk just to scrub it would burn the energy the system
//! exists to save.
//!
//! [`CorruptionPlan`] places latent sector errors and bit flips on
//! `(node, disk, block)` coordinates at Poisson arrival times;
//! [`CrashPlan`] schedules whole-node crash/restart pairs as ordinary
//! [`FaultEvent`]s so they merge into the existing [`HealthTracker`].
//! Like every plan in this crate, both are a pure function of their spec:
//! same seed, same schedule, bit-identical replay.
//!
//! [`HealthTracker`]: crate::HealthTracker

use crate::{FaultEvent, FaultKind};
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng, SimTime};
use std::collections::BTreeSet;

/// One silent-data-corruption event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// A whole block becomes unreadable (medium error on next access).
    LatentSectorError {
        /// Node the affected disk lives on.
        node: u32,
        /// Local data-disk index.
        disk: u32,
        /// Block index within the disk's scrub address space.
        block: u32,
    },
    /// One bit of a stored block flips silently.
    BitFlip {
        /// Node the affected disk lives on.
        node: u32,
        /// Local data-disk index.
        disk: u32,
        /// Block index within the disk's scrub address space.
        block: u32,
        /// Bit position within the block's victim byte (0..8).
        bit: u8,
    },
}

impl CorruptionKind {
    /// The `(node, disk, block)` coordinate this corruption lands on.
    pub fn coordinate(&self) -> (u32, u32, u32) {
        match *self {
            CorruptionKind::LatentSectorError { node, disk, block }
            | CorruptionKind::BitFlip {
                node, disk, block, ..
            } => (node, disk, block),
        }
    }
}

/// A corruption at an instant of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorruptionEvent {
    /// When the corruption lands (it stays silent until read or scrubbed).
    pub at: SimTime,
    /// What happened.
    pub kind: CorruptionKind,
}

/// Parameters for seeded corruption schedules. Rates are per *disk-hour*
/// of simulated time, matching [`crate::FaultSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorruptionSpec {
    /// Schedule RNG seed; same seed, same plan.
    pub seed: u64,
    /// Horizon the schedule covers.
    pub horizon: SimDuration,
    /// Storage nodes in the cluster.
    pub nodes: u32,
    /// Data disks per node.
    pub disks_per_node: u32,
    /// Blocks per disk in the scrub address space (victim blocks are drawn
    /// uniformly from this range).
    pub blocks_per_disk: u32,
    /// Mean latent sector errors per disk-hour (Poisson process).
    pub lse_per_disk_hour: f64,
    /// Mean silent bit flips per disk-hour (Poisson process).
    pub flip_per_disk_hour: f64,
}

impl CorruptionSpec {
    /// A pristine baseline: no corruption at all.
    pub fn none(nodes: u32, disks_per_node: u32, horizon: SimDuration) -> CorruptionSpec {
        CorruptionSpec {
            seed: 0,
            horizon,
            nodes,
            disks_per_node,
            blocks_per_disk: 1 << 16,
            lse_per_disk_hour: 0.0,
            flip_per_disk_hour: 0.0,
        }
    }
}

/// A validated, time-ordered corruption schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CorruptionPlan {
    events: Vec<CorruptionEvent>,
}

impl CorruptionPlan {
    /// The empty plan (no corruption ever).
    pub fn none() -> CorruptionPlan {
        CorruptionPlan::default()
    }

    /// Builds a plan from explicit events (sorted by time, stable).
    pub fn from_trace(events: impl IntoIterator<Item = CorruptionEvent>) -> CorruptionPlan {
        let mut events: Vec<CorruptionEvent> = events.into_iter().collect();
        events.sort_by_key(|e| e.at);
        CorruptionPlan { events }
    }

    /// Fluent single-event constructors for tests and ablations.
    pub fn builder() -> CorruptionPlanBuilder {
        CorruptionPlanBuilder { events: Vec::new() }
    }

    /// Draws a random schedule from `spec`. Each disk gets independent
    /// RNG streams for sector errors and bit flips split off the seed, so
    /// changing one rate does not perturb the other's schedule.
    pub fn generate(spec: &CorruptionSpec) -> CorruptionPlan {
        let mut root = SimRng::seed_from_u64(spec.seed ^ 0x00C0_4409_5EED);
        let mut events = Vec::new();
        let horizon_s = spec.horizon.as_secs_f64();
        let blocks = spec.blocks_per_disk.max(1) as usize;
        for node in 0..spec.nodes {
            let mut node_rng = root.split();
            for disk in 0..spec.disks_per_node {
                let mut disk_rng = node_rng.split();
                let mut lse_rng = disk_rng.split();
                let mut flip_rng = disk_rng.split();
                if spec.lse_per_disk_hour > 0.0 {
                    let mut t = 0.0f64;
                    loop {
                        t += lse_rng.exponential(3600.0 / spec.lse_per_disk_hour);
                        if t >= horizon_s {
                            break;
                        }
                        events.push(CorruptionEvent {
                            at: SimTime::from_micros((t * 1e6) as u64),
                            kind: CorruptionKind::LatentSectorError {
                                node,
                                disk,
                                block: lse_rng.index(blocks) as u32,
                            },
                        });
                    }
                }
                if spec.flip_per_disk_hour > 0.0 {
                    let mut t = 0.0f64;
                    loop {
                        t += flip_rng.exponential(3600.0 / spec.flip_per_disk_hour);
                        if t >= horizon_s {
                            break;
                        }
                        events.push(CorruptionEvent {
                            at: SimTime::from_micros((t * 1e6) as u64),
                            kind: CorruptionKind::BitFlip {
                                node,
                                disk,
                                block: flip_rng.index(blocks) as u32,
                                bit: flip_rng.index(8) as u8,
                            },
                        });
                    }
                }
            }
        }
        CorruptionPlan::from_trace(events)
    }

    /// The schedule, ascending by time.
    pub fn events(&self) -> &[CorruptionEvent] {
        &self.events
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled corruptions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Events that target nodes or disks outside the given cluster shape.
    pub fn out_of_range(&self, nodes: u32, disks_per_node: u32) -> Vec<CorruptionEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| {
                let (node, disk, _) = e.kind.coordinate();
                node >= nodes || disk >= disks_per_node
            })
            .collect()
    }
}

/// Fluent builder for explicit corruption plans.
#[derive(Debug, Clone, Default)]
pub struct CorruptionPlanBuilder {
    events: Vec<CorruptionEvent>,
}

impl CorruptionPlanBuilder {
    /// Adds a latent sector error.
    pub fn lse(mut self, at: SimTime, node: u32, disk: u32, block: u32) -> Self {
        self.events.push(CorruptionEvent {
            at,
            kind: CorruptionKind::LatentSectorError { node, disk, block },
        });
        self
    }

    /// Adds a silent bit flip.
    pub fn bit_flip(mut self, at: SimTime, node: u32, disk: u32, block: u32, bit: u8) -> Self {
        self.events.push(CorruptionEvent {
            at,
            kind: CorruptionKind::BitFlip {
                node,
                disk,
                block,
                bit,
            },
        });
        self
    }

    /// Finishes the plan (events sorted by time).
    pub fn build(self) -> CorruptionPlan {
        CorruptionPlan::from_trace(self.events)
    }
}

/// Parameters for seeded whole-node crash/restart schedules.
///
/// This is deliberately a *separate* stream from
/// [`FaultSpec::node_crash_per_hour`](crate::FaultSpec): crash-recovery
/// experiments want to vary the crash schedule while holding an existing
/// disk-fault plan fixed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Schedule RNG seed; same seed, same plan.
    pub seed: u64,
    /// Horizon the schedule covers.
    pub horizon: SimDuration,
    /// Storage nodes in the cluster.
    pub nodes: u32,
    /// Mean crashes per node-hour (Poisson process).
    pub crash_per_node_hour: f64,
    /// Mean time from a crash to the node's restart (journal replay
    /// happens at the restart instant).
    pub mean_restart: SimDuration,
}

impl CrashSpec {
    /// A stable baseline: no crashes.
    pub fn none(nodes: u32, horizon: SimDuration) -> CrashSpec {
        CrashSpec {
            seed: 0,
            horizon,
            nodes,
            crash_per_node_hour: 0.0,
            mean_restart: SimDuration::from_secs(30),
        }
    }
}

/// A time-ordered node crash/restart schedule.
///
/// Events are plain [`FaultEvent`]s restricted to
/// [`FaultKind::NodeCrash`] / [`FaultKind::NodeRestart`], so a crash plan
/// merges directly into a [`crate::FaultPlan`] and is applied by the same
/// [`crate::HealthTracker`]. The restart instants additionally tell the
/// durability layer when to charge a journal replay.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CrashPlan {
    events: Vec<FaultEvent>,
}

impl CrashPlan {
    /// The empty plan (no crashes).
    pub fn none() -> CrashPlan {
        CrashPlan::default()
    }

    /// Builds a plan from explicit crash/restart events; anything other
    /// than node crash/restart kinds is rejected.
    pub fn from_trace(events: impl IntoIterator<Item = FaultEvent>) -> Result<CrashPlan, String> {
        let mut out: Vec<FaultEvent> = Vec::new();
        for e in events {
            match e.kind {
                FaultKind::NodeCrash { .. } | FaultKind::NodeRestart { .. } => out.push(e),
                other => return Err(format!("crash plan cannot hold {other:?}")),
            }
        }
        out.sort_by_key(|e| e.at);
        Ok(CrashPlan { events: out })
    }

    /// One crash/restart pair — the common test shape.
    pub fn one(node: u32, crash_at: SimTime, restart_at: SimTime) -> CrashPlan {
        CrashPlan::from_trace([
            FaultEvent {
                at: crash_at,
                kind: FaultKind::NodeCrash { node },
            },
            FaultEvent {
                at: restart_at,
                kind: FaultKind::NodeRestart { node },
            },
        ])
        .expect("node events only")
    }

    /// Draws a random schedule from `spec` (per-node split streams, same
    /// idiom as [`crate::FaultPlan::generate`]).
    pub fn generate(spec: &CrashSpec) -> CrashPlan {
        let mut root = SimRng::seed_from_u64(spec.seed ^ 0x00C4_A54D_5EED);
        let mut events = Vec::new();
        let horizon_s = spec.horizon.as_secs_f64();
        for node in 0..spec.nodes {
            let mut node_rng = root.split();
            if spec.crash_per_node_hour <= 0.0 {
                continue;
            }
            let mut t = 0.0f64;
            loop {
                t += node_rng.exponential(3600.0 / spec.crash_per_node_hour);
                if t >= horizon_s {
                    break;
                }
                events.push(FaultEvent {
                    at: SimTime::from_micros((t * 1e6) as u64),
                    kind: FaultKind::NodeCrash { node },
                });
                t += node_rng.exponential(spec.mean_restart.as_secs_f64().max(1e-6));
                if t >= horizon_s {
                    break;
                }
                events.push(FaultEvent {
                    at: SimTime::from_micros((t * 1e6) as u64),
                    kind: FaultKind::NodeRestart { node },
                });
            }
        }
        events.sort_by_key(|e| e.at);
        CrashPlan { events }
    }

    /// The schedule, ascending by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled crash/restart events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Events that target nodes outside the given cluster shape.
    pub fn out_of_range(&self, nodes: u32) -> Vec<FaultEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.kind.node() >= nodes)
            .collect()
    }
}

/// Live corruption state derived by replaying a [`CorruptionPlan`] up to
/// "now": which blocks of which disks currently hold bad data.
///
/// Per-disk corrupt sets are `BTreeSet`s so iteration order (and thus any
/// scrub or repair sweep over them) is deterministic.
#[derive(Debug, Clone)]
pub struct CorruptionTracker {
    plan: CorruptionPlan,
    cursor: usize,
    corrupt: Vec<Vec<BTreeSet<u32>>>,
    landed: u64,
}

impl CorruptionTracker {
    /// A tracker for a `nodes × disks_per_node` cluster.
    pub fn new(plan: CorruptionPlan, nodes: usize, disks_per_node: usize) -> CorruptionTracker {
        CorruptionTracker {
            plan,
            cursor: 0,
            corrupt: vec![vec![BTreeSet::new(); disks_per_node]; nodes],
            landed: 0,
        }
    }

    /// Applies every event with `at <= now`, returning them in order.
    pub fn apply_until(&mut self, now: SimTime) -> Vec<CorruptionEvent> {
        let mut fired = Vec::new();
        while let Some(&ev) = self.plan.events.get(self.cursor) {
            if ev.at > now {
                break;
            }
            self.cursor += 1;
            let (node, disk, block) = ev.kind.coordinate();
            if let Some(set) = self
                .corrupt
                .get_mut(node as usize)
                .and_then(|row| row.get_mut(disk as usize))
            {
                if set.insert(block) {
                    self.landed += 1;
                }
            }
            fired.push(ev);
        }
        fired
    }

    /// Time of the next unapplied event, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.plan.events.get(self.cursor).map(|e| e.at)
    }

    /// The currently-corrupt blocks of one disk, ascending.
    pub fn corrupt_blocks(&self, node: usize, disk: usize) -> &BTreeSet<u32> {
        static EMPTY: BTreeSet<u32> = BTreeSet::new();
        self.corrupt
            .get(node)
            .and_then(|row| row.get(disk))
            .unwrap_or(&EMPTY)
    }

    /// True when `block` on `(node, disk)` currently holds bad data.
    pub fn is_corrupt(&self, node: usize, disk: usize, block: u32) -> bool {
        self.corrupt_blocks(node, disk).contains(&block)
    }

    /// Clears one corrupt block (repaired from a replica, or written off
    /// as unrecoverable — either way it stops being *detectable*).
    /// Returns true when the block was indeed marked corrupt.
    pub fn resolve(&mut self, node: usize, disk: usize, block: u32) -> bool {
        self.corrupt
            .get_mut(node)
            .and_then(|row| row.get_mut(disk))
            .map(|set| set.remove(&block))
            .unwrap_or(false)
    }

    /// Corruptions that have landed so far (distinct blocks at landing
    /// time; a block corrupted twice counts once while unresolved).
    pub fn landed(&self) -> u64 {
        self.landed
    }

    /// Total blocks currently corrupt across the cluster.
    pub fn outstanding(&self) -> usize {
        self.corrupt
            .iter()
            .flat_map(|row| row.iter())
            .map(|set| set.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CorruptionSpec {
        CorruptionSpec {
            seed: 42,
            horizon: SimDuration::from_secs(3600),
            nodes: 4,
            disks_per_node: 2,
            blocks_per_disk: 1024,
            lse_per_disk_hour: 3.0,
            flip_per_disk_hour: 2.0,
        }
    }

    #[test]
    fn corruption_generate_is_deterministic() {
        let a = CorruptionPlan::generate(&spec());
        let b = CorruptionPlan::generate(&spec());
        assert_eq!(a, b);
        assert!(!a.is_empty(), "rates this high should produce events");
    }

    #[test]
    fn corruption_seeds_differ() {
        let a = CorruptionPlan::generate(&spec());
        let b = CorruptionPlan::generate(&CorruptionSpec { seed: 43, ..spec() });
        assert_ne!(a, b);
    }

    #[test]
    fn corruption_events_sorted_and_in_range() {
        let plan = CorruptionPlan::generate(&spec());
        for w in plan.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(plan.out_of_range(4, 2).is_empty());
        assert!(!plan.out_of_range(1, 1).is_empty());
        for e in plan.events() {
            let (_, _, block) = e.kind.coordinate();
            assert!(block < 1024);
            if let CorruptionKind::BitFlip { bit, .. } = e.kind {
                assert!(bit < 8);
            }
        }
    }

    #[test]
    fn corruption_zero_rates_mean_no_events() {
        let plan =
            CorruptionPlan::generate(&CorruptionSpec::none(8, 2, SimDuration::from_secs(3600)));
        assert!(plan.is_empty());
    }

    #[test]
    fn corruption_rates_are_decoupled() {
        // Bit flips draw from a split stream, so turning sector errors
        // off must not move the flip schedule.
        let both = CorruptionPlan::generate(&spec());
        let flips_only = CorruptionPlan::generate(&CorruptionSpec {
            lse_per_disk_hour: 0.0,
            ..spec()
        });
        let flips = |p: &CorruptionPlan| {
            p.events()
                .iter()
                .filter(|e| matches!(e.kind, CorruptionKind::BitFlip { .. }))
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(flips(&both), flips(&flips_only));
    }

    #[test]
    fn crash_generate_is_deterministic_and_alternates() {
        let spec = CrashSpec {
            seed: 7,
            horizon: SimDuration::from_secs(7200),
            nodes: 3,
            crash_per_node_hour: 2.0,
            mean_restart: SimDuration::from_secs(45),
        };
        let a = CrashPlan::generate(&spec);
        assert_eq!(a, CrashPlan::generate(&spec));
        assert!(!a.is_empty());
        assert!(a.out_of_range(3).is_empty());
        // Per node: strict crash/restart alternation starting with a crash.
        for node in 0..3 {
            let mut expect_crash = true;
            for e in a.events().iter().filter(|e| e.kind.node() == node) {
                match e.kind {
                    FaultKind::NodeCrash { .. } => assert!(expect_crash, "double crash"),
                    FaultKind::NodeRestart { .. } => assert!(!expect_crash, "restart first"),
                    other => panic!("crash plan held {other:?}"),
                }
                expect_crash = !expect_crash;
            }
        }
    }

    #[test]
    fn crash_from_trace_rejects_disk_faults() {
        let r = CrashPlan::from_trace([FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::DiskFail { node: 0, disk: 0 },
        }]);
        assert!(r.is_err());
    }

    #[test]
    fn tracker_lands_detects_and_resolves() {
        let plan = CorruptionPlan::builder()
            .lse(SimTime::from_secs(10), 1, 0, 99)
            .bit_flip(SimTime::from_secs(20), 1, 0, 7, 3)
            .build();
        let mut t = CorruptionTracker::new(plan, 2, 2);
        assert_eq!(t.apply_until(SimTime::from_secs(5)).len(), 0);
        assert_eq!(t.apply_until(SimTime::from_secs(15)).len(), 1);
        assert!(t.is_corrupt(1, 0, 99));
        assert!(!t.is_corrupt(1, 0, 7));
        t.apply_until(SimTime::from_secs(25));
        assert_eq!(t.outstanding(), 2);
        assert_eq!(t.landed(), 2);
        // Sets iterate ascending for deterministic scrub sweeps.
        let blocks: Vec<u32> = t.corrupt_blocks(1, 0).iter().copied().collect();
        assert_eq!(blocks, vec![7, 99]);
        assert!(t.resolve(1, 0, 99));
        assert!(!t.resolve(1, 0, 99), "resolved only once");
        assert_eq!(t.outstanding(), 1);
        assert_eq!(t.next_event_at(), None);
    }

    #[test]
    fn tracker_double_corruption_of_a_block_counts_once() {
        let plan = CorruptionPlan::builder()
            .lse(SimTime::from_secs(1), 0, 0, 5)
            .bit_flip(SimTime::from_secs(2), 0, 0, 5, 0)
            .build();
        let mut t = CorruptionTracker::new(plan, 1, 1);
        t.apply_until(SimTime::from_secs(10));
        assert_eq!(t.landed(), 1);
        assert_eq!(t.outstanding(), 1);
    }
}
