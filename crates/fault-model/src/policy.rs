//! Client-side RPC resilience policy: deadlines, bounded retries with
//! deterministic jittered backoff, hedged reads, and circuit breakers.
//!
//! The policy types are time-unit agnostic: durations are `SimDuration`
//! ticks and instants are `SimTime`. The discrete-event driver feeds them
//! simulated time; the threaded runtime feeds them wall-clock-derived
//! ticks. Nothing here reads a wall clock or an unseeded RNG, so a policy
//! evaluated against the same inputs replays bit-identically.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng, SimTime};

/// Circuit breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects traffic before probing.
    pub cooldown: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(30),
        }
    }
}

/// Everything the RPC layer needs to decide how hard to try.
///
/// `deadline` bounds one logical request end to end, across every retry
/// and hedge. `per_try_timeout` bounds one flight. Backoff between tries
/// is exponential from `backoff_base`, capped at `backoff_cap`, with
/// multiplicative jitter of ±`jitter` drawn from a stream seeded by
/// (`seed`, request id) — deterministic, but uncorrelated across requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcPolicy {
    /// End-to-end budget for one logical request.
    pub deadline: SimDuration,
    /// How long to wait on a single flight before declaring it lost.
    pub per_try_timeout: SimDuration,
    /// Additional tries after the first (0 = fail fast).
    pub max_retries: u32,
    /// First backoff delay; doubles each retry.
    pub backoff_base: SimDuration,
    /// Ceiling on a single backoff delay (pre-jitter).
    pub backoff_cap: SimDuration,
    /// Multiplicative jitter fraction in [0, 1): each delay is scaled by a
    /// factor uniform in [1 - jitter, 1 + jitter].
    pub jitter: f64,
    /// Seed for the jitter streams.
    pub seed: u64,
    /// Hedge a read against a second replica if the first flight has not
    /// answered after this long. `None` disables hedging.
    pub hedge_after: Option<SimDuration>,
    /// Per-node circuit breaker tuning.
    pub breaker: BreakerConfig,
}

impl RpcPolicy {
    /// Fail-fast: one flight, no hedging, generous deadline.
    pub fn no_retry(deadline: SimDuration) -> RpcPolicy {
        RpcPolicy {
            deadline,
            per_try_timeout: deadline,
            max_retries: 0,
            backoff_base: SimDuration::from_millis(200),
            backoff_cap: SimDuration::from_secs(5),
            jitter: 0.2,
            seed: 0,
            hedge_after: None,
            breaker: BreakerConfig::default(),
        }
    }

    /// Retries with backoff, no hedging.
    pub fn retrying(deadline: SimDuration, per_try: SimDuration, retries: u32) -> RpcPolicy {
        RpcPolicy {
            per_try_timeout: per_try,
            max_retries: retries,
            ..RpcPolicy::no_retry(deadline)
        }
    }

    /// Retries plus hedged reads after `hedge_after`.
    pub fn hedged(
        deadline: SimDuration,
        per_try: SimDuration,
        retries: u32,
        hedge_after: SimDuration,
    ) -> RpcPolicy {
        RpcPolicy {
            hedge_after: Some(hedge_after),
            ..RpcPolicy::retrying(deadline, per_try, retries)
        }
    }

    /// The jittered backoff delays for one request, truncated so that the
    /// worst-case total (every flight timing out, plus every backoff wait)
    /// never exceeds `deadline`. `delays.len()` is therefore the number of
    /// *usable* retries for this request, `<= max_retries`.
    pub fn backoff_schedule(&self, request_id: u64) -> BackoffSchedule {
        let mut rng = SimRng::seed_from_u64(
            self.seed ^ request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xBAC0_FF5E,
        );
        let mut delays = Vec::new();
        // Worst case, the first flight burns one full per-try timeout.
        let mut spent = self.per_try_timeout;
        let mut nominal = self.backoff_base;
        for _ in 0..self.max_retries {
            let jitter = self.jitter.clamp(0.0, 0.999);
            let factor = 1.0 - jitter + 2.0 * jitter * rng.uniform();
            let delay =
                SimDuration::from_micros((nominal.as_micros() as f64 * factor).round() as u64);
            if spent + delay + self.per_try_timeout > self.deadline {
                break;
            }
            spent = spent + delay + self.per_try_timeout;
            delays.push(delay);
            nominal = SimDuration::from_micros(
                (nominal.as_micros().saturating_mul(2)).min(self.backoff_cap.as_micros()),
            );
        }
        BackoffSchedule { delays }
    }
}

/// The concrete delays between tries for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffSchedule {
    delays: Vec<SimDuration>,
}

impl BackoffSchedule {
    /// Delay to wait before retry number `retry` (0-based). `None` once
    /// the retry budget (or the deadline) is exhausted.
    pub fn delay(&self, retry: usize) -> Option<SimDuration> {
        self.delays.get(retry).copied()
    }

    /// Usable retries under the deadline.
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// Sum of all backoff delays.
    pub fn total(&self) -> SimDuration {
        self.delays
            .iter()
            .fold(SimDuration::ZERO, |acc, &d| acc + d)
    }
}

/// Breaker states, the classic three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: all traffic flows, failures are counted.
    Closed,
    /// Tripped: traffic is rejected until the cooldown elapses.
    Open,
    /// Probing: one request is let through to test the node.
    HalfOpen,
}

/// Per-node circuit breaker.
///
/// ```text
///             failure_threshold
///   CLOSED ──────────────────────▶ OPEN
///     ▲  ▲                          │ cooldown elapsed
///     │  │ probe                    ▼
///     │  └──────────────────── HALF-OPEN
///     │        succeeds             │ probe fails
///     └─────────────────────────────┘ (back to OPEN)
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    trips: u64,
    recoveries: u64,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            trips: 0,
            recoveries: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times a half-open probe closed the breaker again.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Whether a request may be sent now. An open breaker whose cooldown
    /// has elapsed transitions to half-open and admits the probe.
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.opened_at + self.cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful response from the node.
    pub fn on_success(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.recoveries += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failed flight (timeout, drop, reset, transport error).
    pub fn on_failure(&mut self, now: SimTime) {
        match self.state {
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_failures = 0;
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RpcPolicy {
        RpcPolicy::retrying(SimDuration::from_secs(30), SimDuration::from_secs(2), 5)
    }

    #[test]
    fn schedule_is_deterministic_per_request() {
        let p = policy();
        assert_eq!(p.backoff_schedule(7), p.backoff_schedule(7));
        assert_ne!(p.backoff_schedule(7), p.backoff_schedule(8));
    }

    #[test]
    fn schedule_respects_deadline() {
        let p = RpcPolicy::retrying(SimDuration::from_secs(5), SimDuration::from_secs(2), 10);
        let s = p.backoff_schedule(0);
        let worst = p.per_try_timeout.saturating_mul(s.len() as u64 + 1) + s.total();
        assert!(
            worst <= p.deadline,
            "worst case {worst:?} > {:?}",
            p.deadline
        );
        assert!(s.len() < 10, "deadline must truncate the retry budget");
    }

    #[test]
    fn zero_retries_means_empty_schedule() {
        let s = RpcPolicy::no_retry(SimDuration::from_secs(10)).backoff_schedule(1);
        assert!(s.is_empty());
        assert_eq!(s.delay(0), None);
    }

    #[test]
    fn breaker_trips_probes_and_recovers() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_secs(10),
        });
        let t0 = SimTime::from_secs(0);
        assert!(b.allows(t0));
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allows(SimTime::from_secs(5)));
        // Cooldown elapsed: half-open, the probe is admitted.
        assert!(b.allows(SimTime::from_secs(10)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe reopens immediately.
        b.on_failure(SimTime::from_secs(10));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // Next probe succeeds and closes.
        assert!(b.allows(SimTime::from_secs(20)));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries(), 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_policy() -> impl Strategy<Value = RpcPolicy> {
            (
                1u64..120,    // deadline s
                50u64..5_000, // per-try ms
                0u32..12,     // retries
                10u64..2_000, // backoff base ms
                0.0f64..0.95, // jitter
                any::<u64>(), // seed
            )
                .prop_map(|(dl, pt, retries, base, jitter, seed)| RpcPolicy {
                    deadline: SimDuration::from_secs(dl),
                    per_try_timeout: SimDuration::from_millis(pt),
                    max_retries: retries,
                    backoff_base: SimDuration::from_millis(base),
                    backoff_cap: SimDuration::from_secs(10),
                    jitter,
                    seed,
                    hedge_after: None,
                    breaker: BreakerConfig::default(),
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Worst-case retry time (every flight times out, plus every
            /// backoff wait) never exceeds the deadline.
            #[test]
            fn total_retry_time_never_exceeds_deadline(
                p in arb_policy(), req in any::<u64>()
            ) {
                let s = p.backoff_schedule(req);
                let worst =
                    p.per_try_timeout.saturating_mul(s.len() as u64 + 1) + s.total();
                prop_assert!(worst <= p.deadline.max(p.per_try_timeout));
                prop_assert!(s.len() <= p.max_retries as usize);
            }

            /// Every jittered delay stays within ±jitter of its nominal
            /// exponential value.
            #[test]
            fn jitter_stays_within_bounds(p in arb_policy(), req in any::<u64>()) {
                let s = p.backoff_schedule(req);
                let mut nominal = p.backoff_base;
                for i in 0..s.len() {
                    let d = s.delay(i).unwrap().as_micros() as f64;
                    let n = nominal.as_micros() as f64;
                    prop_assert!(d >= (n * (1.0 - p.jitter)).floor());
                    prop_assert!(d <= (n * (1.0 + p.jitter)).ceil());
                    nominal = SimDuration::from_micros(
                        nominal.as_micros().saturating_mul(2).min(p.backoff_cap.as_micros()),
                    );
                }
            }

            /// Identical seeds yield identical schedules; the stream is a
            /// pure function of (policy seed, request id).
            #[test]
            fn identical_seeds_identical_schedules(
                p in arb_policy(), req in any::<u64>()
            ) {
                prop_assert_eq!(p.backoff_schedule(req), p.clone().backoff_schedule(req));
                let reseeded = RpcPolicy { seed: p.seed ^ 1, ..p.clone() };
                // A different seed is allowed to differ (and with jitter > 0
                // and at least one delay it usually does); it must still obey
                // the same deadline bound.
                let s = reseeded.backoff_schedule(req);
                let worst =
                    p.per_try_timeout.saturating_mul(s.len() as u64 + 1) + s.total();
                prop_assert!(worst <= p.deadline.max(p.per_try_timeout));
            }
        }
    }

    #[test]
    fn success_resets_failure_count() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_secs(10),
        });
        b.on_failure(SimTime::ZERO);
        b.on_success();
        b.on_failure(SimTime::ZERO);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "count must reset on success"
        );
    }
}
