//! Deterministic fault injection for the EEVFS reproduction.
//!
//! The paper assumes every disk and node stays healthy forever, but its
//! headline mechanism — spinning data disks down to standby — is exactly
//! the regime where real clusters see failed spin-ups and unavailable
//! data. This crate produces *fault plans*: time-ordered schedules of
//! disk fail/repair, failed spin-up, and node crash/restart events that
//! are a pure function of a seed, so a (config, seed, fault plan) triple
//! replays bit-identically.
//!
//! Consumers:
//! - `eevfs::driver` schedules plan events into its discrete-event queue
//!   and redirects reads to surviving replicas;
//! - `eevfs-runtime` maps the same events onto protocol messages
//!   (`KillNode`/`ReviveNode`/`FailDisk`/`RepairDisk`) against live node
//!   threads, turning them into injected I/O errors.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng, SimTime};

pub mod durability;
pub mod net;
pub mod policy;

pub use durability::{
    CorruptionEvent, CorruptionKind, CorruptionPlan, CorruptionSpec, CorruptionTracker, CrashPlan,
    CrashSpec,
};
pub use net::{
    LinkDecision, LinkFaultProfile, NetFaultEvent, NetFaultInjector, NetFaultKind, NetFaultPlan,
    NetFaultSpec,
};
pub use policy::{BackoffSchedule, BreakerConfig, BreakerState, CircuitBreaker, RpcPolicy};

/// One injected fault (or the repair that clears it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The disk drops every request until repaired.
    DiskFail { node: u32, disk: u32 },
    /// The disk returns to service.
    DiskRepair { node: u32, disk: u32 },
    /// The disk's *next* spin-up attempt fails; the retry costs one extra
    /// spin-up latency and energy.
    SpinUpFail { node: u32, disk: u32 },
    /// The whole node (buffer disk included) goes dark.
    NodeCrash { node: u32 },
    /// The node restarts and re-registers with the server.
    NodeRestart { node: u32 },
}

impl FaultKind {
    /// The node this fault lands on.
    pub fn node(&self) -> u32 {
        match *self {
            FaultKind::DiskFail { node, .. }
            | FaultKind::DiskRepair { node, .. }
            | FaultKind::SpinUpFail { node, .. }
            | FaultKind::NodeCrash { node }
            | FaultKind::NodeRestart { node } => node,
        }
    }
}

/// A fault at an instant of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    pub at: SimTime,
    pub kind: FaultKind,
}

/// Parameters for seeded random fault schedules. Rates are per *hour of
/// simulated time* because the paper's traces run minutes to hours.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Schedule RNG seed; same seed, same plan.
    pub seed: u64,
    /// Horizon the schedule covers (events beyond it are not generated).
    pub horizon: SimDuration,
    /// Storage nodes in the cluster.
    pub nodes: u32,
    /// Data disks per node.
    pub disks_per_node: u32,
    /// Mean whole-disk failures per disk-hour (Poisson process).
    pub disk_fail_per_hour: f64,
    /// Mean time from a disk failure to its repair.
    pub mean_repair: SimDuration,
    /// Mean node crashes per node-hour (Poisson process).
    pub node_crash_per_hour: f64,
    /// Mean time from a node crash to its restart.
    pub mean_restart: SimDuration,
    /// Mean failed spin-ups per disk-hour.
    pub spin_up_fail_per_hour: f64,
}

impl FaultSpec {
    /// A quiet baseline: no faults at all.
    pub fn none(nodes: u32, disks_per_node: u32, horizon: SimDuration) -> FaultSpec {
        FaultSpec {
            seed: 0,
            horizon,
            nodes,
            disks_per_node,
            disk_fail_per_hour: 0.0,
            mean_repair: SimDuration::from_secs(120),
            node_crash_per_hour: 0.0,
            mean_restart: SimDuration::from_secs(60),
            spin_up_fail_per_hour: 0.0,
        }
    }
}

/// A validated, time-ordered fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (healthy cluster).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events, e.g. replayed from an outage
    /// trace. Events are sorted by time (stable, so same-instant events
    /// keep their given order).
    pub fn from_trace(events: impl IntoIterator<Item = FaultEvent>) -> FaultPlan {
        let mut events: Vec<FaultEvent> = events.into_iter().collect();
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// Fluent single-fault constructors for tests and ablations.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder { events: Vec::new() }
    }

    /// Draws a random schedule from `spec`. Each disk and node gets an
    /// independent RNG stream split off the seed, so changing one rate
    /// does not perturb the other components' schedules.
    pub fn generate(spec: &FaultSpec) -> FaultPlan {
        let mut root = SimRng::seed_from_u64(spec.seed ^ 0x000F_A017_5EED);
        let mut events = Vec::new();
        let horizon_s = spec.horizon.as_secs_f64();
        for node in 0..spec.nodes {
            let mut node_rng = root.split();
            // Node crash/restart alternation.
            if spec.node_crash_per_hour > 0.0 {
                let mut t = 0.0f64;
                loop {
                    t += node_rng.exponential(3600.0 / spec.node_crash_per_hour);
                    if t >= horizon_s {
                        break;
                    }
                    events.push(FaultEvent {
                        at: SimTime::from_micros((t * 1e6) as u64),
                        kind: FaultKind::NodeCrash { node },
                    });
                    t += node_rng.exponential(spec.mean_restart.as_secs_f64().max(1e-6));
                    if t >= horizon_s {
                        break;
                    }
                    events.push(FaultEvent {
                        at: SimTime::from_micros((t * 1e6) as u64),
                        kind: FaultKind::NodeRestart { node },
                    });
                }
            }
            for disk in 0..spec.disks_per_node {
                let mut disk_rng = node_rng.split();
                if spec.disk_fail_per_hour > 0.0 {
                    let mut t = 0.0f64;
                    loop {
                        t += disk_rng.exponential(3600.0 / spec.disk_fail_per_hour);
                        if t >= horizon_s {
                            break;
                        }
                        events.push(FaultEvent {
                            at: SimTime::from_micros((t * 1e6) as u64),
                            kind: FaultKind::DiskFail { node, disk },
                        });
                        t += disk_rng.exponential(spec.mean_repair.as_secs_f64().max(1e-6));
                        if t >= horizon_s {
                            break;
                        }
                        events.push(FaultEvent {
                            at: SimTime::from_micros((t * 1e6) as u64),
                            kind: FaultKind::DiskRepair { node, disk },
                        });
                    }
                }
                if spec.spin_up_fail_per_hour > 0.0 {
                    let mut t = 0.0f64;
                    loop {
                        t += disk_rng.exponential(3600.0 / spec.spin_up_fail_per_hour);
                        if t >= horizon_s {
                            break;
                        }
                        events.push(FaultEvent {
                            at: SimTime::from_micros((t * 1e6) as u64),
                            kind: FaultKind::SpinUpFail { node, disk },
                        });
                    }
                }
            }
        }
        FaultPlan::from_trace(events)
    }

    /// The schedule, ascending by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Events that target nodes or disks outside the given cluster shape
    /// (useful to validate a hand-written plan against a config).
    pub fn out_of_range(&self, nodes: u32, disks_per_node: u32) -> Vec<FaultEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| match e.kind {
                FaultKind::DiskFail { node, disk }
                | FaultKind::DiskRepair { node, disk }
                | FaultKind::SpinUpFail { node, disk } => node >= nodes || disk >= disks_per_node,
                FaultKind::NodeCrash { node } | FaultKind::NodeRestart { node } => node >= nodes,
            })
            .collect()
    }
}

/// Fluent builder for explicit plans.
#[derive(Debug, Clone, Default)]
pub struct FaultPlanBuilder {
    events: Vec<FaultEvent>,
}

impl FaultPlanBuilder {
    pub fn disk_fail(mut self, at: SimTime, node: u32, disk: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DiskFail { node, disk },
        });
        self
    }

    pub fn disk_repair(mut self, at: SimTime, node: u32, disk: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DiskRepair { node, disk },
        });
        self
    }

    pub fn spin_up_fail(mut self, at: SimTime, node: u32, disk: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::SpinUpFail { node, disk },
        });
        self
    }

    pub fn node_crash(mut self, at: SimTime, node: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::NodeCrash { node },
        });
        self
    }

    pub fn node_restart(mut self, at: SimTime, node: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::NodeRestart { node },
        });
        self
    }

    pub fn build(self) -> FaultPlan {
        FaultPlan::from_trace(self.events)
    }
}

/// Live health state derived by replaying a [`FaultPlan`] up to "now".
///
/// Both the simulator and the threaded runtime keep one of these next to
/// their clock: `apply_until` returns the events that fired in the window
/// so the caller can act on them (mark disks dead, drop connections), and
/// the `*_ok` accessors answer routing queries.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    plan: FaultPlan,
    cursor: usize,
    node_up: Vec<bool>,
    disk_up: Vec<Vec<bool>>,
    /// Disks whose next spin-up attempt fails (cleared on consumption).
    spin_up_poisoned: Vec<Vec<bool>>,
}

impl HealthTracker {
    pub fn new(plan: FaultPlan, nodes: usize, disks_per_node: usize) -> HealthTracker {
        HealthTracker {
            plan,
            cursor: 0,
            node_up: vec![true; nodes],
            disk_up: vec![vec![true; disks_per_node]; nodes],
            spin_up_poisoned: vec![vec![false; disks_per_node]; nodes],
        }
    }

    /// Applies every event with `at <= now`, returning them in order.
    pub fn apply_until(&mut self, now: SimTime) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        while let Some(&ev) = self.plan.events.get(self.cursor) {
            if ev.at > now {
                break;
            }
            self.cursor += 1;
            self.apply(ev.kind);
            fired.push(ev);
        }
        fired
    }

    fn apply(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::DiskFail { node, disk } => {
                if let Some(d) = self.disk_slot(node, disk) {
                    *d = false;
                }
            }
            FaultKind::DiskRepair { node, disk } => {
                if let Some(d) = self.disk_slot(node, disk) {
                    *d = true;
                }
            }
            FaultKind::SpinUpFail { node, disk } => {
                if let Some(row) = self.spin_up_poisoned.get_mut(node as usize) {
                    if let Some(p) = row.get_mut(disk as usize) {
                        *p = true;
                    }
                }
            }
            FaultKind::NodeCrash { node } => {
                if let Some(n) = self.node_up.get_mut(node as usize) {
                    *n = false;
                }
            }
            FaultKind::NodeRestart { node } => {
                if let Some(n) = self.node_up.get_mut(node as usize) {
                    *n = true;
                }
            }
        }
    }

    fn disk_slot(&mut self, node: u32, disk: u32) -> Option<&mut bool> {
        self.disk_up.get_mut(node as usize)?.get_mut(disk as usize)
    }

    /// Time of the next unapplied event, if any (for event-queue bridges).
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.plan.events.get(self.cursor).map(|e| e.at)
    }

    pub fn node_ok(&self, node: usize) -> bool {
        self.node_up.get(node).copied().unwrap_or(false)
    }

    /// A disk serves requests only when both it and its node are up.
    pub fn disk_ok(&self, node: usize, disk: usize) -> bool {
        self.node_ok(node)
            && self
                .disk_up
                .get(node)
                .and_then(|row| row.get(disk))
                .copied()
                .unwrap_or(false)
    }

    /// Consumes a pending spin-up poisoning for this disk. Returns true if
    /// the caller must model one failed spin-up attempt (extra latency and
    /// energy) before the disk comes back.
    pub fn take_spin_up_failure(&mut self, node: usize, disk: usize) -> bool {
        match self
            .spin_up_poisoned
            .get_mut(node)
            .and_then(|row| row.get_mut(disk))
        {
            Some(p) if *p => {
                *p = false;
                true
            }
            _ => false,
        }
    }

    /// True when every node and disk is currently up.
    pub fn all_healthy(&self) -> bool {
        self.node_up.iter().all(|&n| n) && self.disk_up.iter().all(|row| row.iter().all(|&d| d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec {
            seed: 42,
            horizon: SimDuration::from_secs(3600),
            nodes: 4,
            disks_per_node: 2,
            disk_fail_per_hour: 2.0,
            mean_repair: SimDuration::from_secs(120),
            node_crash_per_hour: 1.0,
            mean_restart: SimDuration::from_secs(60),
            spin_up_fail_per_hour: 1.0,
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = FaultPlan::generate(&spec());
        let b = FaultPlan::generate(&spec());
        assert_eq!(a, b);
        assert!(!a.is_empty(), "rates this high should produce events");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(&spec());
        let b = FaultPlan::generate(&FaultSpec { seed: 43, ..spec() });
        assert_ne!(a, b);
    }

    #[test]
    fn events_sorted_and_in_range() {
        let plan = FaultPlan::generate(&spec());
        for w in plan.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(plan.out_of_range(4, 2).is_empty());
        assert!(!plan.out_of_range(1, 1).is_empty());
    }

    #[test]
    fn zero_rates_mean_no_events() {
        let plan = FaultPlan::generate(&FaultSpec::none(8, 2, SimDuration::from_secs(3600)));
        assert!(plan.is_empty());
    }

    #[test]
    fn changing_one_rate_keeps_other_components_stable() {
        // Disk failures come from per-disk split streams, so turning node
        // crashes off must not move the disk-failure schedule.
        let with_crashes = FaultPlan::generate(&spec());
        let without = FaultPlan::generate(&FaultSpec {
            node_crash_per_hour: 0.0,
            ..spec()
        });
        let disk_events = |p: &FaultPlan| {
            p.events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::DiskFail { .. }))
                .count()
        };
        assert_eq!(disk_events(&with_crashes), disk_events(&without));
    }

    #[test]
    fn tracker_applies_fail_and_repair() {
        let plan = FaultPlan::builder()
            .disk_fail(SimTime::from_secs(10), 1, 0)
            .disk_repair(SimTime::from_secs(20), 1, 0)
            .node_crash(SimTime::from_secs(15), 2)
            .node_restart(SimTime::from_secs(25), 2)
            .build();
        let mut t = HealthTracker::new(plan, 4, 2);
        assert!(t.all_healthy());
        assert_eq!(t.apply_until(SimTime::from_secs(9)).len(), 0);

        let fired = t.apply_until(SimTime::from_secs(16));
        assert_eq!(fired.len(), 2);
        assert!(!t.disk_ok(1, 0));
        assert!(t.disk_ok(1, 1));
        assert!(!t.node_ok(2));
        // A healthy disk on a dead node is still unreachable.
        assert!(!t.disk_ok(2, 0));

        t.apply_until(SimTime::from_secs(30));
        assert!(t.all_healthy());
        assert_eq!(t.next_event_at(), None);
    }

    #[test]
    fn spin_up_poisoning_is_consumed_once() {
        let plan = FaultPlan::builder()
            .spin_up_fail(SimTime::from_secs(5), 0, 1)
            .build();
        let mut t = HealthTracker::new(plan, 2, 2);
        t.apply_until(SimTime::from_secs(6));
        assert!(t.disk_ok(0, 1), "poisoned disk still counts as up");
        assert!(t.take_spin_up_failure(0, 1));
        assert!(!t.take_spin_up_failure(0, 1), "consumed only once");
    }

    #[test]
    fn from_trace_sorts_events() {
        let plan = FaultPlan::from_trace([
            FaultEvent {
                at: SimTime::from_secs(30),
                kind: FaultKind::NodeCrash { node: 0 },
            },
            FaultEvent {
                at: SimTime::from_secs(10),
                kind: FaultKind::NodeRestart { node: 0 },
            },
        ]);
        assert_eq!(plan.events()[0].at, SimTime::from_secs(10));
    }
}
