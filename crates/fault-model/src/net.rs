//! Deterministic network fault plans and per-link fault injection.
//!
//! Disk plans in the crate root model *component* failure; this module
//! models *delivery* failure on the server↔node links: dropped requests,
//! latency spikes, connection resets, and whole-link partitions with
//! scheduled heal times. Everything is a pure function of a seed:
//!
//! - [`NetFaultPlan`] is a time-ordered schedule of partition/heal events,
//!   generated from a [`NetFaultSpec`] exactly like [`crate::FaultPlan`]
//!   is generated from a `FaultSpec`;
//! - [`LinkFaultProfile`] holds per-message fault probabilities;
//! - [`NetFaultInjector`] replays the plan with a cursor and draws one
//!   per-link decision stream for the probabilistic faults, so the same
//!   (profile, plan, seed) triple yields bit-identical decision sequences
//!   regardless of how other links are exercised.
//!
//! The cluster topology is a star (server in the middle, one link per
//! storage node), so a "node-pair partition" is identified by the node
//! index of the server↔node link it severs.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng, SimTime};

/// One scheduled network fault (or the heal that clears it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetFaultKind {
    /// The server↔node link drops every message until healed.
    LinkDown { link: u32 },
    /// The link returns to service.
    LinkUp { link: u32 },
}

impl NetFaultKind {
    /// The link this fault lands on.
    pub fn link(&self) -> u32 {
        match *self {
            NetFaultKind::LinkDown { link } | NetFaultKind::LinkUp { link } => link,
        }
    }
}

/// A network fault at an instant of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetFaultEvent {
    pub at: SimTime,
    pub kind: NetFaultKind,
}

/// Parameters for seeded partition schedules. Rates are per *hour of
/// simulated time*, matching `FaultSpec`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetFaultSpec {
    /// Schedule RNG seed; same seed, same plan.
    pub seed: u64,
    /// Horizon the schedule covers.
    pub horizon: SimDuration,
    /// Number of server↔node links (one per storage node).
    pub links: u32,
    /// Mean partitions per link-hour (Poisson process).
    pub partition_per_hour: f64,
    /// Mean time from a partition to its scheduled heal.
    pub mean_partition: SimDuration,
}

impl NetFaultSpec {
    /// A quiet baseline: no partitions at all.
    pub fn none(links: u32, horizon: SimDuration) -> NetFaultSpec {
        NetFaultSpec {
            seed: 0,
            horizon,
            links,
            partition_per_hour: 0.0,
            mean_partition: SimDuration::from_secs(60),
        }
    }
}

/// A validated, time-ordered partition/heal schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetFaultPlan {
    events: Vec<NetFaultEvent>,
}

impl NetFaultPlan {
    /// The empty plan (perfect network).
    pub fn none() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// Builds a plan from explicit events, sorted by time (stable).
    pub fn from_trace(events: impl IntoIterator<Item = NetFaultEvent>) -> NetFaultPlan {
        let mut events: Vec<NetFaultEvent> = events.into_iter().collect();
        events.sort_by_key(|e| e.at);
        NetFaultPlan { events }
    }

    /// Convenience: one partition window on `link`, healed at `heal`.
    pub fn partition_window(link: u32, down: SimTime, heal: SimTime) -> NetFaultPlan {
        NetFaultPlan::from_trace([
            NetFaultEvent {
                at: down,
                kind: NetFaultKind::LinkDown { link },
            },
            NetFaultEvent {
                at: heal,
                kind: NetFaultKind::LinkUp { link },
            },
        ])
    }

    /// Draws a random partition schedule from `spec`. Each link gets an
    /// independent RNG stream split off the seed, so adding links does not
    /// perturb existing links' windows.
    pub fn generate(spec: &NetFaultSpec) -> NetFaultPlan {
        let mut root = SimRng::seed_from_u64(spec.seed ^ 0x0004_2E7F_A017_5EED_u64);
        let mut events = Vec::new();
        let horizon_s = spec.horizon.as_secs_f64();
        for link in 0..spec.links {
            let mut link_rng = root.split();
            if spec.partition_per_hour > 0.0 {
                let mut t = 0.0f64;
                loop {
                    t += link_rng.exponential(3600.0 / spec.partition_per_hour);
                    if t >= horizon_s {
                        break;
                    }
                    events.push(NetFaultEvent {
                        at: SimTime::from_micros((t * 1e6) as u64),
                        kind: NetFaultKind::LinkDown { link },
                    });
                    t += link_rng.exponential(spec.mean_partition.as_secs_f64().max(1e-6));
                    if t >= horizon_s {
                        break;
                    }
                    events.push(NetFaultEvent {
                        at: SimTime::from_micros((t * 1e6) as u64),
                        kind: NetFaultKind::LinkUp { link },
                    });
                }
            }
        }
        NetFaultPlan::from_trace(events)
    }

    /// The schedule, ascending by time.
    pub fn events(&self) -> &[NetFaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Events targeting links outside the given cluster shape.
    pub fn out_of_range(&self, links: u32) -> Vec<NetFaultEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.kind.link() >= links)
            .collect()
    }
}

/// Per-message fault probabilities for one profile of link badness.
///
/// Probabilities are evaluated in order drop → reset → delay from a single
/// uniform draw per message, so the decision stream for a link is stable
/// under changes to an *individual* probability only when earlier
/// thresholds stay fixed — same contract as a layered ablation grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultProfile {
    /// Seed for the per-link decision streams.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability the connection resets (immediate error to the sender).
    pub reset_prob: f64,
    /// Probability the message is delayed by an exponential latency spike.
    pub delay_prob: f64,
    /// Mean of the exponential latency spike.
    pub mean_delay: SimDuration,
}

impl LinkFaultProfile {
    /// A perfect network: every message delivered immediately.
    pub fn none() -> LinkFaultProfile {
        LinkFaultProfile {
            seed: 0,
            drop_prob: 0.0,
            reset_prob: 0.0,
            delay_prob: 0.0,
            mean_delay: SimDuration::from_millis(500),
        }
    }

    /// A lossy profile dominated by drops, for ablation grids.
    pub fn lossy(seed: u64, drop_prob: f64) -> LinkFaultProfile {
        LinkFaultProfile {
            seed,
            drop_prob,
            reset_prob: drop_prob / 4.0,
            delay_prob: drop_prob / 2.0,
            mean_delay: SimDuration::from_secs(4),
        }
    }
}

/// What happens to one message on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDecision {
    /// Delivered normally.
    Deliver,
    /// Delivered after an injected latency spike.
    Delay(SimDuration),
    /// Silently dropped; the sender only learns via timeout.
    Drop,
    /// Connection reset; the sender sees an immediate error.
    Reset,
}

/// Replays a [`NetFaultPlan`] and draws per-message link decisions.
///
/// Partitioned links drop every message *without* consuming the link's
/// decision stream, so the probabilistic schedule on other links (and on
/// this link after heal) is unaffected by partition timing.
#[derive(Debug, Clone)]
pub struct NetFaultInjector {
    profile: LinkFaultProfile,
    plan: NetFaultPlan,
    cursor: usize,
    link_up: Vec<bool>,
    link_rngs: Vec<SimRng>,
}

impl NetFaultInjector {
    pub fn new(profile: LinkFaultProfile, plan: NetFaultPlan, links: usize) -> NetFaultInjector {
        let mut root = SimRng::seed_from_u64(profile.seed ^ 0x0001_14E7_FA17_5EED);
        let link_rngs = (0..links).map(|_| root.split()).collect();
        NetFaultInjector {
            profile,
            plan,
            cursor: 0,
            link_up: vec![true; links],
            link_rngs,
        }
    }

    /// An injector that never faults anything.
    pub fn disabled(links: usize) -> NetFaultInjector {
        NetFaultInjector::new(LinkFaultProfile::none(), NetFaultPlan::none(), links)
    }

    /// Applies every scheduled event with `at <= now`, returning them in
    /// order so the caller can surface them (stats, logs).
    pub fn apply_until(&mut self, now: SimTime) -> Vec<NetFaultEvent> {
        let mut fired = Vec::new();
        while let Some(&ev) = self.plan.events.get(self.cursor) {
            if ev.at > now {
                break;
            }
            self.cursor += 1;
            match ev.kind {
                NetFaultKind::LinkDown { link } => self.set_link(link as usize, false),
                NetFaultKind::LinkUp { link } => self.set_link(link as usize, true),
            }
            fired.push(ev);
        }
        fired
    }

    /// Time of the next unapplied scheduled event, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.plan.events.get(self.cursor).map(|e| e.at)
    }

    /// Every scheduled event instant, ascending — what a driver needs to
    /// arm wake-ups without keeping a second copy of the plan.
    pub fn event_times(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.plan.events.iter().map(|e| e.at)
    }

    /// Manually partition or heal a link (admin path, e2e tests).
    pub fn set_link(&mut self, link: usize, up: bool) {
        if let Some(slot) = self.link_up.get_mut(link) {
            *slot = up;
        }
    }

    pub fn link_ok(&self, link: usize) -> bool {
        self.link_up.get(link).copied().unwrap_or(false)
    }

    /// Decides the fate of the next message on `link`, consuming the
    /// link's decision stream (except while partitioned).
    pub fn decide(&mut self, link: usize) -> LinkDecision {
        if !self.link_ok(link) {
            return LinkDecision::Drop;
        }
        let Some(rng) = self.link_rngs.get_mut(link) else {
            return LinkDecision::Deliver;
        };
        let p = &self.profile;
        if p.drop_prob <= 0.0 && p.reset_prob <= 0.0 && p.delay_prob <= 0.0 {
            return LinkDecision::Deliver;
        }
        let u = rng.uniform();
        if u < p.drop_prob {
            LinkDecision::Drop
        } else if u < p.drop_prob + p.reset_prob {
            LinkDecision::Reset
        } else if u < p.drop_prob + p.reset_prob + p.delay_prob {
            let spike = rng.exponential(p.mean_delay.as_secs_f64().max(1e-6));
            LinkDecision::Delay(SimDuration::from_micros((spike * 1e6) as u64))
        } else {
            LinkDecision::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NetFaultSpec {
        NetFaultSpec {
            seed: 7,
            horizon: SimDuration::from_secs(3600),
            links: 4,
            partition_per_hour: 4.0,
            mean_partition: SimDuration::from_secs(90),
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = NetFaultPlan::generate(&spec());
        let b = NetFaultPlan::generate(&spec());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = NetFaultPlan::generate(&spec());
        let b = NetFaultPlan::generate(&NetFaultSpec { seed: 8, ..spec() });
        assert_ne!(a, b);
    }

    #[test]
    fn events_sorted_and_in_range() {
        let plan = NetFaultPlan::generate(&spec());
        for w in plan.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(plan.out_of_range(4).is_empty());
        assert!(!plan.out_of_range(1).is_empty());
    }

    #[test]
    fn adding_links_keeps_existing_links_stable() {
        let narrow = NetFaultPlan::generate(&spec());
        let wide = NetFaultPlan::generate(&NetFaultSpec { links: 8, ..spec() });
        let on_first_four = |p: &NetFaultPlan| {
            p.events()
                .iter()
                .copied()
                .filter(|e| e.kind.link() < 4)
                .collect::<Vec<_>>()
        };
        assert_eq!(on_first_four(&narrow), on_first_four(&wide));
    }

    #[test]
    fn injector_replays_partition_window() {
        let plan =
            NetFaultPlan::partition_window(1, SimTime::from_secs(10), SimTime::from_secs(20));
        let mut inj = NetFaultInjector::new(LinkFaultProfile::none(), plan, 2);
        assert!(inj.link_ok(1));
        assert_eq!(inj.apply_until(SimTime::from_secs(10)).len(), 1);
        assert!(!inj.link_ok(1));
        assert_eq!(inj.decide(1), LinkDecision::Drop);
        assert_eq!(inj.decide(0), LinkDecision::Deliver);
        assert_eq!(inj.next_event_at(), Some(SimTime::from_secs(20)));
        inj.apply_until(SimTime::from_secs(25));
        assert!(inj.link_ok(1));
        assert_eq!(inj.decide(1), LinkDecision::Deliver);
    }

    #[test]
    fn decision_streams_are_deterministic_and_per_link() {
        let profile = LinkFaultProfile::lossy(3, 0.3);
        let draws = |inj: &mut NetFaultInjector, link: usize| {
            (0..64).map(|_| inj.decide(link)).collect::<Vec<_>>()
        };
        let mut a = NetFaultInjector::new(profile.clone(), NetFaultPlan::none(), 2);
        let mut b = NetFaultInjector::new(profile.clone(), NetFaultPlan::none(), 2);
        // Interleave link 0 draws in b with link 1 traffic: link 0's stream
        // must not move.
        let seq_a = draws(&mut a, 0);
        let mut seq_b = Vec::new();
        for _ in 0..64 {
            let _ = b.decide(1);
            seq_b.push(b.decide(0));
        }
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.contains(&LinkDecision::Drop));
        assert!(seq_a.contains(&LinkDecision::Deliver));
    }

    #[test]
    fn partition_does_not_consume_decision_stream() {
        let profile = LinkFaultProfile::lossy(9, 0.25);
        let mut a = NetFaultInjector::new(profile.clone(), NetFaultPlan::none(), 1);
        let mut b = NetFaultInjector::new(profile, NetFaultPlan::none(), 1);
        b.set_link(0, false);
        for _ in 0..32 {
            assert_eq!(b.decide(0), LinkDecision::Drop);
        }
        b.set_link(0, true);
        for _ in 0..32 {
            assert_eq!(a.decide(0), b.decide(0));
        }
    }

    #[test]
    fn zero_rate_plan_is_empty() {
        assert!(
            NetFaultPlan::generate(&NetFaultSpec::none(8, SimDuration::from_secs(3600))).is_empty()
        );
    }
}
