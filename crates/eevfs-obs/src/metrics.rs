//! Named counters, gauges, histograms, and time series.
//!
//! The registry is the aggregate companion to the event trace: where the
//! [`Recorder`](crate::Recorder) answers "what happened to request 17", the
//! registry answers "what did queue depth look like over the run". All
//! collections are `BTreeMap`s so iteration (and therefore export) order is
//! the lexicographic name order — deterministic by construction.

use sim_core::{Histogram, SimDuration, SimTime, TimeSeries};
use std::collections::BTreeMap;

/// A metrics lookup failed in a way the caller should surface instead of
/// unwrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// No histogram under this name — nothing was ever observed into it.
    MissingHistogram(String),
    /// No time series under this name — nothing was ever sampled into it.
    MissingSeries(String),
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::MissingHistogram(n) => {
                write!(f, "no histogram named {n:?} (nothing observed)")
            }
            MetricsError::MissingSeries(n) => {
                write!(f, "no time series named {n:?} (nothing sampled)")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

/// A deterministic, name-keyed metrics store.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter, creating it at zero.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `x` into the named histogram, creating it with the given
    /// range and bin count on first use (later calls reuse the existing
    /// shape).
    pub fn observe(&mut self, name: &str, lo: f64, hi: f64, bins: usize, x: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(lo, hi, bins))
            .record(x);
    }

    /// The named histogram, or a typed error naming what is missing —
    /// prefer this over `histogram(..).unwrap()` at call sites that
    /// report to users.
    pub fn try_histogram(&self, name: &str) -> Result<&Histogram, MetricsError> {
        self.histograms
            .get(name)
            .ok_or_else(|| MetricsError::MissingHistogram(name.to_string()))
    }

    /// The named time series, or a typed error naming what is missing.
    pub fn try_series(&self, name: &str) -> Result<&TimeSeries, MetricsError> {
        self.series
            .get(name)
            .ok_or_else(|| MetricsError::MissingSeries(name.to_string()))
    }

    /// Appends a sample to the named time series. Timestamps must be
    /// non-decreasing per series (simulation time is).
    pub fn sample(&mut self, name: &str, at: SimTime, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push(at, value);
    }

    /// Names of all recorded time series, lexicographically.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Names of all counters, lexicographically.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Renders counters and gauges as a deterministic `name value` table,
    /// one per line, counters first.
    pub fn render_scalars(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k} {v}\n"));
        }
        out
    }
}

/// Interval gate for periodic sampling without scheduling extra simulation
/// events.
///
/// The driver consults the sampler from inside its event handler: the
/// first event at or past each interval boundary triggers a sample. This
/// keeps the event queue — and therefore the simulated outcome — exactly
/// identical to an uninstrumented run.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval_us: u64,
    next_us: u64,
}

impl Sampler {
    /// A sampler firing once per `interval` (clamped to ≥ 1 µs).
    pub fn new(interval: SimDuration) -> Self {
        Sampler {
            interval_us: interval.as_micros().max(1),
            next_us: 0,
        }
    }

    /// True when `now` has reached the next boundary; advances the
    /// boundary past `now` so each interval fires at most once.
    pub fn due(&mut self, now: SimTime) -> bool {
        let now_us = now.as_micros();
        if now_us < self.next_us {
            return false;
        }
        // Skip intervals nothing happened in rather than replaying them.
        self.next_us = now_us - (now_us % self.interval_us) + self.interval_us;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_from_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x", 2);
        m.inc("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("depth", 3.0);
        m.set_gauge("depth", 1.0);
        assert_eq!(m.gauge("depth"), Some(1.0));
    }

    #[test]
    fn histogram_created_on_first_observe() {
        let mut m = MetricsRegistry::new();
        m.observe("rt", 0.0, 10.0, 10, 2.5);
        m.observe("rt", 0.0, 10.0, 10, 3.5);
        assert_eq!(m.try_histogram("rt").unwrap().total(), 2);
    }

    #[test]
    fn try_lookups_name_the_missing_metric() {
        let mut m = MetricsRegistry::new();
        m.observe("rt", 0.0, 10.0, 10, 2.5);
        assert!(m.try_histogram("rt").is_ok());
        let err = m.try_histogram("nope").unwrap_err();
        assert_eq!(err, MetricsError::MissingHistogram("nope".into()));
        assert!(err.to_string().contains("nope"));
        assert_eq!(
            m.try_series("q").unwrap_err(),
            MetricsError::MissingSeries("q".into())
        );
    }

    #[test]
    fn series_samples_in_time_order() {
        let mut m = MetricsRegistry::new();
        m.sample("q", SimTime::from_secs(1), 1.0);
        m.sample("q", SimTime::from_secs(2), 4.0);
        let s = m.try_series("q").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((SimTime::from_secs(2), 4.0)));
    }

    #[test]
    fn scalar_render_is_name_sorted() {
        let mut m = MetricsRegistry::new();
        m.inc("b", 1);
        m.inc("a", 1);
        m.set_gauge("z", 0.5);
        assert_eq!(m.render_scalars(), "a 1\nb 1\nz 0.5\n");
    }

    #[test]
    fn sampler_fires_once_per_interval() {
        let mut s = Sampler::new(SimDuration::from_secs(10));
        assert!(s.due(SimTime::ZERO));
        assert!(!s.due(SimTime::from_secs(5)));
        assert!(s.due(SimTime::from_secs(10)));
        assert!(!s.due(SimTime::from_secs(19)));
        // A long gap does not replay the skipped intervals.
        assert!(s.due(SimTime::from_secs(65)));
        assert!(!s.due(SimTime::from_secs(66)));
        assert!(s.due(SimTime::from_secs(70)));
    }
}
