//! ASCII power/state timeline rendering — the paper's Fig-2-style view.
//!
//! The paper argues its case with side-by-side timelines of disk power
//! states under different strategies (§III, Fig 2). [`render_power_timeline`]
//! reconstructs that view from the `DiskTransition` events in a trace: one
//! row per disk, one glyph per time bucket.

use crate::event::{EventKind, TraceEvent};
use disk_model::PowerState;
use std::collections::BTreeMap;

/// Glyph for one power state.
fn glyph(state: PowerState) -> char {
    match state {
        PowerState::Active => '#',
        PowerState::Idle => '-',
        PowerState::Standby => '.',
        PowerState::SpinningUp => '^',
        PowerState::SpinningDown => 'v',
    }
}

/// Renders per-disk power-state timelines from the `DiskTransition` events
/// in `events`, covering `[0, end_us]` with `width` buckets.
///
/// Disks start Idle at `t = 0` (the meter's initial state); each bucket
/// shows the state in force at its start. Rows are labelled `n<node>.buf`
/// for buffer disks (`disk == u32::MAX`) and `n<node>.d<disk>` otherwise,
/// sorted by `(node, disk)`; a legend and second-resolution axis frame the
/// plot. Output is deterministic for a deterministic trace.
pub fn render_power_timeline(events: &[TraceEvent], end_us: u64, width: usize) -> String {
    let width = width.max(10);
    let mut edges: BTreeMap<(u32, u32), Vec<(u64, PowerState)>> = BTreeMap::new();
    for ev in events {
        if let EventKind::DiskTransition { node, disk, to, .. } = ev.kind {
            edges.entry((node, disk)).or_default().push((ev.at_us, to));
        }
    }
    let mut out = String::new();
    out.push_str("power/state timeline  (# active  - idle  . standby  ^ spin-up  v spin-down)\n");
    if edges.is_empty() {
        // A trace with no `DiskTransition` events is not an error — NPF
        // runs and empty traces legitimately never move a disk. Say so
        // explicitly instead of rendering a degenerate all-idle plot.
        out.push_str(&format!(
            "  (no disk transitions recorded over {:.1}s; every disk held its initial state)\n",
            end_us as f64 / 1e6
        ));
        return out;
    }
    let end_us = end_us.max(1);
    let label_w = edges
        .keys()
        .map(|&(n, d)| row_label(n, d).len())
        .max()
        .unwrap_or(0);
    for (&(node, disk), log) in &edges {
        let mut row = String::new();
        let mut cursor = 0usize; // index of the next edge to apply
        let mut state = PowerState::Idle;
        for b in 0..width {
            let bucket_start = (b as u64 * end_us) / width as u64;
            while cursor < log.len() && log[cursor].0 <= bucket_start {
                state = log[cursor].1;
                cursor += 1;
            }
            row.push(glyph(state));
        }
        out.push_str(&format!("{:>label_w$} |{row}|\n", row_label(node, disk)));
    }
    let end_s = end_us as f64 / 1e6;
    out.push_str(&format!(
        "{:>label_w$} |0{:>pad$.0}s|\n",
        "t",
        end_s,
        pad = width.saturating_sub(2),
    ));
    out
}

fn row_label(node: u32, disk: u32) -> String {
    if disk == u32::MAX {
        format!("n{node}.buf")
    } else {
        format!("n{node}.d{disk}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Severity;

    fn transition(
        at_us: u64,
        node: u32,
        disk: u32,
        from: PowerState,
        to: PowerState,
    ) -> TraceEvent {
        TraceEvent {
            seq: 0,
            at_us,
            sev: Severity::Debug,
            kind: EventKind::DiskTransition {
                node,
                disk,
                from,
                to,
            },
        }
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let s = render_power_timeline(&[], 1_000_000, 40);
        assert!(s.contains("no disk transitions"));
        assert!(s.contains("1.0s"), "window span named: {s}");
    }

    #[test]
    fn transition_free_trace_renders_placeholder() {
        // A busy trace with zero DiskTransition events (an NPF run: disks
        // never move) must hit the same explicit branch, not render empty
        // rows or panic on the zero-width window.
        let events = vec![TraceEvent {
            seq: 0,
            at_us: 500_000,
            sev: Severity::Info,
            kind: EventKind::RequestArrive {
                req: 0,
                file: 3,
                write: false,
                bytes: 1024,
            },
        }];
        let s = render_power_timeline(&events, 2_000_000, 40);
        assert!(s.contains("no disk transitions recorded"), "{s}");
        assert!(s.contains("held its initial state"), "{s}");
        assert_eq!(s.lines().count(), 2, "header + placeholder only: {s}");
        // Degenerate zero-length window: still graceful.
        let z = render_power_timeline(&events, 0, 40);
        assert!(z.contains("over 0.0s"), "{z}");
    }

    #[test]
    fn sleep_cycle_shows_standby_run() {
        use PowerState::*;
        let events = vec![
            transition(10_000_000, 0, 0, Idle, SpinningDown),
            transition(12_000_000, 0, 0, SpinningDown, Standby),
            transition(90_000_000, 0, 0, Standby, SpinningUp),
            transition(92_000_000, 0, 0, SpinningUp, Idle),
        ];
        let s = render_power_timeline(&events, 100_000_000, 50);
        let row = s.lines().find(|l| l.contains("n0.d0")).unwrap();
        assert!(row.contains('.'), "standby stretch missing: {row}");
        assert!(row.starts_with("n0.d0 |-"), "starts idle: {row}");
        // Mostly standby: the dots dominate.
        let dots = row.matches('.').count();
        assert!(
            dots > 25,
            "expected a long standby run, got {dots} in {row}"
        );
    }

    #[test]
    fn buffer_disk_gets_its_own_label() {
        use PowerState::*;
        let events = vec![transition(0, 1, u32::MAX, Idle, Active)];
        let s = render_power_timeline(&events, 1_000_000, 20);
        assert!(s.contains("n1.buf"), "{s}");
    }

    #[test]
    fn rendering_is_deterministic() {
        use PowerState::*;
        let events = vec![
            transition(5_000_000, 1, 0, Idle, Active),
            transition(6_000_000, 0, 2, Idle, SpinningDown),
        ];
        assert_eq!(
            render_power_timeline(&events, 10_000_000, 30),
            render_power_timeline(&events, 10_000_000, 30)
        );
    }
}
