//! The structured trace-event schema.
//!
//! Every observable moment in a simulated run is one [`TraceEvent`]: a
//! sim-time-stamped, sequence-numbered record whose [`EventKind`] payload
//! carries only integers and enums. Keeping floats out of the schema is a
//! deliberate determinism measure — the JSONL rendering of an event is then
//! a pure function of the simulation state with no float-formatting edge
//! cases, which is what lets two same-seed runs produce byte-identical
//! traces.

use disk_model::PowerState;
use serde::{Deserialize, Serialize};

/// Event severity, ordered from chattiest to most urgent.
///
/// The [`Recorder`](crate::Recorder) drops events below its configured
/// minimum, so high-volume bookkeeping (`Debug`) can be silenced without
/// losing the power-management story (`Info`/`Warn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// High-volume per-request/per-transition bookkeeping.
    Debug,
    /// The normal lifecycle narrative.
    Info,
    /// Something cost energy or latency it should not have.
    Warn,
}

/// Coarse event family, the unit of the recorder's kind filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// Request lifecycle: arrive, queue, serve, complete.
    Request,
    /// Disk power-state transitions.
    Disk,
    /// Power-manager decisions and their outcomes.
    Power,
    /// Prefetch activity.
    Prefetch,
    /// RPC spans: send, retry, hedge, complete.
    Rpc,
    /// Durability: corruption detection, scrub passes, journal replays,
    /// node restarts.
    Durability,
}

impl Category {
    /// Number of categories, for sizing filter masks.
    pub const COUNT: usize = 6;

    /// Dense index of this category into tables sized [`Self::COUNT`].
    pub fn index(self) -> usize {
        match self {
            Category::Request => 0,
            Category::Disk => 1,
            Category::Power => 2,
            Category::Prefetch => 3,
            Category::Rpc => 4,
            Category::Durability => 5,
        }
    }
}

/// The typed payload of one trace event.
///
/// `req` fields are simulation request IDs (for the runtime prototype, the
/// client-assigned wire `req_id`); `node`/`disk` index into the cluster
/// spec. Durations are integer microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A request entered the system.
    RequestArrive {
        /// Request ID.
        req: u64,
        /// File the request touches.
        file: u64,
        /// True for writes.
        write: bool,
        /// Request size in bytes.
        bytes: u64,
    },
    /// The storage server admitted and routed the request to a node.
    RequestQueued {
        /// Request ID.
        req: u64,
        /// Destination node.
        node: u32,
    },
    /// The request had to wait for a data-disk spin-up (the paper's ~2 s
    /// wake penalty).
    SpinupWait {
        /// Request ID.
        req: u64,
        /// Node whose disk spun up.
        node: u32,
        /// The disk that was asleep.
        disk: u32,
    },
    /// A disk (buffer or data) began servicing the request.
    RequestServe {
        /// Request ID.
        req: u64,
        /// Serving node.
        node: u32,
        /// Serving disk (data-disk index; ignored when `from_buffer`).
        disk: u32,
        /// True when the buffer disk absorbed the access.
        from_buffer: bool,
    },
    /// A cache tier above the buffer disk absorbed the read: no data-disk
    /// access, no spin-up exposure (`eevfs-power`).
    TierServe {
        /// Request ID.
        req: u64,
        /// Serving node.
        node: u32,
        /// True for the SSD buffer tier, false for the DRAM tier.
        ssd: bool,
    },
    /// The response reached the client.
    RequestComplete {
        /// Request ID.
        req: u64,
        /// End-to-end response time in microseconds.
        response_us: u64,
    },
    /// A disk crossed a power-state edge.
    DiskTransition {
        /// Node owning the disk.
        node: u32,
        /// Disk index within the node (`u32::MAX` for the buffer disk).
        disk: u32,
        /// State before the edge.
        from: PowerState,
        /// State after the edge.
        to: PowerState,
    },
    /// The prefetcher staged a file onto a buffer disk.
    PrefetchFile {
        /// Node whose buffer disk received the file.
        node: u32,
        /// File staged.
        file: u64,
        /// Bytes copied.
        bytes: u64,
    },
    /// The power manager decided to spin a disk down.
    SleepDecision {
        /// Node owning the disk.
        node: u32,
        /// Disk index.
        disk: u32,
        /// Predicted idle window at decision time (`None` when the
        /// predictor saw no future touches — an unbounded prediction).
        predicted_idle_us: Option<u64>,
        /// The drive's breakeven time: sleeping pays off only if the
        /// realised idle window meets it.
        breakeven_us: u64,
    },
    /// A sleeping disk woke (or the run ended): the realised idle window
    /// behind a [`EventKind::SleepDecision`] is now known.
    IdleRealized {
        /// Node owning the disk.
        node: u32,
        /// Disk index.
        disk: u32,
        /// How long the disk actually stayed down, microseconds.
        realized_us: u64,
        /// True when the realised window met the breakeven time, i.e. the
        /// prediction that justified sleeping was right.
        paid_off: bool,
    },
    /// The server forwarded a request to a node (one RPC attempt).
    RpcSend {
        /// Request ID.
        req: u64,
        /// Destination node.
        node: u32,
        /// 1-based attempt number (retries and hedges increment it).
        attempt: u32,
    },
    /// The network dropped an RPC flight.
    RpcDropped {
        /// Request ID.
        req: u64,
        /// Node the flight was bound for.
        node: u32,
        /// Attempt that was lost.
        attempt: u32,
    },
    /// The RPC policy scheduled a retry after backoff.
    RpcRetry {
        /// Request ID.
        req: u64,
        /// Attempt number the retry will carry.
        attempt: u32,
    },
    /// The hedging policy launched a speculative duplicate.
    RpcHedge {
        /// The hedge's own request ID (a mirror).
        req: u64,
        /// The request the hedge covers; the hedge span nests under it.
        parent: u64,
        /// Node the hedge was sent to.
        node: u32,
    },
    /// The RPC completed and the response was recorded.
    RpcComplete {
        /// Root request ID.
        req: u64,
        /// True when a hedge flight produced the winning response.
        won_by_hedge: bool,
    },
    /// A checksum mismatch was caught — on the read path or by a scrub.
    CorruptionDetected {
        /// Node owning the corrupt disk.
        node: u32,
        /// Data-disk index.
        disk: u32,
        /// Corrupt block in the disk's scrub address space.
        block: u32,
        /// True when a scrub pass (not a client read) found it.
        by_scrub: bool,
        /// True when a healthy replica restored the block; false means the
        /// block is unrecoverable at the current replication factor.
        repaired: bool,
    },
    /// An opportunistic scrub pass verified a window of an Active disk.
    ScrubPass {
        /// Node owning the disk.
        node: u32,
        /// Data-disk index.
        disk: u32,
        /// Blocks verified in this pass.
        blocks: u32,
        /// Corrupt blocks the pass uncovered.
        found: u32,
    },
    /// A restarting node replayed its buffer-disk metadata journal.
    JournalReplay {
        /// The node that replayed.
        node: u32,
        /// Intact records applied.
        records: u64,
        /// Journal bytes read back from the buffer disk.
        bytes: u64,
    },
    /// A crashed node came back and re-registered with the server.
    NodeRestart {
        /// The node that restarted.
        node: u32,
    },
}

impl EventKind {
    /// The family this event belongs to, for kind filtering.
    pub fn category(&self) -> Category {
        match self {
            EventKind::RequestArrive { .. }
            | EventKind::RequestQueued { .. }
            | EventKind::SpinupWait { .. }
            | EventKind::RequestServe { .. }
            | EventKind::TierServe { .. }
            | EventKind::RequestComplete { .. } => Category::Request,
            EventKind::DiskTransition { .. } => Category::Disk,
            EventKind::SleepDecision { .. } | EventKind::IdleRealized { .. } => Category::Power,
            EventKind::PrefetchFile { .. } => Category::Prefetch,
            EventKind::RpcSend { .. }
            | EventKind::RpcDropped { .. }
            | EventKind::RpcRetry { .. }
            | EventKind::RpcHedge { .. }
            | EventKind::RpcComplete { .. } => Category::Rpc,
            EventKind::CorruptionDetected { .. }
            | EventKind::ScrubPass { .. }
            | EventKind::JournalReplay { .. }
            | EventKind::NodeRestart { .. } => Category::Durability,
        }
    }

    /// Inherent severity of this event.
    pub fn severity(&self) -> Severity {
        match self {
            EventKind::RequestQueued { .. }
            | EventKind::RequestServe { .. }
            | EventKind::TierServe { .. }
            | EventKind::DiskTransition { .. }
            | EventKind::RpcSend { .. }
            | EventKind::ScrubPass { .. } => Severity::Debug,
            EventKind::SpinupWait { .. } | EventKind::RpcDropped { .. } => Severity::Warn,
            // Every corruption is worth seeing; one that replication could
            // not cover is the loudest thing the tracer can say.
            EventKind::CorruptionDetected { repaired, .. } => {
                if *repaired {
                    Severity::Info
                } else {
                    Severity::Warn
                }
            }
            EventKind::IdleRealized { paid_off, .. } => {
                if *paid_off {
                    Severity::Info
                } else {
                    Severity::Warn
                }
            }
            _ => Severity::Info,
        }
    }

    /// The request ID this event belongs to, if it is request-scoped.
    pub fn request_id(&self) -> Option<u64> {
        match self {
            EventKind::RequestArrive { req, .. }
            | EventKind::RequestQueued { req, .. }
            | EventKind::SpinupWait { req, .. }
            | EventKind::RequestServe { req, .. }
            | EventKind::TierServe { req, .. }
            | EventKind::RequestComplete { req, .. }
            | EventKind::RpcSend { req, .. }
            | EventKind::RpcDropped { req, .. }
            | EventKind::RpcRetry { req, .. }
            | EventKind::RpcComplete { req, .. } => Some(*req),
            // A hedge span nests under the request it covers.
            EventKind::RpcHedge { parent, .. } => Some(*parent),
            _ => None,
        }
    }
}

/// One recorded trace event.
///
/// `seq` is the recorder's admission counter: it breaks timestamp ties with
/// insertion order, so a stable sort by `(at_us, seq)` reconstructs a
/// deterministic timeline even after late events (e.g. disk transitions
/// merged post-run) are appended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Admission sequence number.
    pub seq: u64,
    /// Simulation timestamp, microseconds.
    pub at_us: u64,
    /// Severity at admission time.
    pub sev: Severity,
    /// The payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_indices_are_dense() {
        let cats = [
            Category::Request,
            Category::Disk,
            Category::Power,
            Category::Prefetch,
            Category::Rpc,
            Category::Durability,
        ];
        let mut seen = [false; Category::COUNT];
        for c in cats {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn severity_orders_debug_below_warn() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
    }

    #[test]
    fn unrealised_sleep_payoff_warns() {
        let bad = EventKind::IdleRealized {
            node: 0,
            disk: 0,
            realized_us: 10,
            paid_off: false,
        };
        let good = EventKind::IdleRealized {
            node: 0,
            disk: 0,
            realized_us: 10_000_000,
            paid_off: true,
        };
        assert_eq!(bad.severity(), Severity::Warn);
        assert_eq!(good.severity(), Severity::Info);
    }

    #[test]
    fn hedge_nests_under_parent_request() {
        let hedge = EventKind::RpcHedge {
            req: 400,
            parent: 7,
            node: 2,
        };
        assert_eq!(hedge.request_id(), Some(7));
    }

    #[test]
    fn events_roundtrip_through_json() {
        let ev = TraceEvent {
            seq: 3,
            at_us: 1_500_000,
            sev: Severity::Info,
            kind: EventKind::SleepDecision {
                node: 1,
                disk: 2,
                predicted_idle_us: Some(40_000_000),
                breakeven_us: 8_000_000,
            },
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(ev, back);
    }
}
