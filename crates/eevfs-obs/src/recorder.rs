//! The bounded ring-buffer trace recorder and its JSONL export.
//!
//! # Determinism contract
//!
//! A recorder fed by a deterministic simulation produces a byte-identical
//! JSONL export across runs, because every step is deterministic:
//!
//! 1. events are admitted in simulation dispatch order (no wall clock, no
//!    hash-map iteration anywhere on the path);
//! 2. sequence numbers are a plain admission counter;
//! 3. [`Recorder::sort_by_time`] is a *stable* sort keyed on
//!    `(at_us, seq)`;
//! 4. the event schema is integers-and-enums only, and the vendored
//!    `serde_json` renders maps in insertion order.
//!
//! Capacity eviction (oldest first) is itself deterministic, so the
//! contract survives overflow too.

use crate::event::{Category, EventKind, Severity, TraceEvent};
use sim_core::SimTime;
use std::collections::VecDeque;

/// Bounded, filtering trace-event sink.
#[derive(Debug, Clone)]
pub struct Recorder {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    min_severity: Severity,
    mask: [bool; Category::COUNT],
    dropped: u64,
    filtered: u64,
}

impl Recorder {
    /// A recorder holding at most `capacity` events (oldest evicted first),
    /// admitting every severity and category.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
            min_severity: Severity::Debug,
            mask: [true; Category::COUNT],
            dropped: 0,
            filtered: 0,
        }
    }

    /// Rejects events below `min` at admission time.
    pub fn set_min_severity(&mut self, min: Severity) {
        self.min_severity = min;
    }

    /// Enables or disables one event category.
    pub fn set_category(&mut self, cat: Category, enabled: bool) {
        self.mask[cat.index()] = enabled;
    }

    /// Records one event at simulation time `at`, applying the severity and
    /// category filters. Returns true when the event was admitted.
    pub fn record(&mut self, at: SimTime, kind: EventKind) -> bool {
        let sev = kind.severity();
        if sev < self.min_severity || !self.mask[kind.category().index()] {
            self.filtered += 1;
            return false;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(TraceEvent {
            seq,
            at_us: at.as_micros(),
            sev,
            kind,
        });
        true
    }

    /// Stably re-orders the buffer by `(at_us, seq)`.
    ///
    /// Live instrumentation appends in dispatch order, but some sources
    /// (disk transition logs, end-of-run realisations) are merged after the
    /// engine finishes with timestamps in the past; call this once before
    /// exporting to interleave them deterministically.
    pub fn sort_by_time(&mut self) {
        self.events
            .make_contiguous()
            .sort_by_key(|e| (e.at_us, e.seq));
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been admitted (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events rejected by the severity/category filters.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Renders the buffer as JSON Lines: one event object per line,
    /// trailing newline included when non-empty.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&serde_json::to_string(ev).expect("trace events always serialise"));
            out.push('\n');
        }
        out
    }

    /// All buffered events belonging to one request ID, in buffer order —
    /// the "follow one ID through the system" view.
    pub fn request_history(&self, req: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.kind.request_id() == Some(req))
            .collect()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::with_capacity(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrive(req: u64) -> EventKind {
        EventKind::RequestArrive {
            req,
            file: 1,
            write: false,
            bytes: 4096,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut r = Recorder::with_capacity(3);
        for i in 0..5 {
            assert!(r.record(SimTime::from_micros(i), arrive(i)));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn severity_filter_rejects_debug() {
        let mut r = Recorder::with_capacity(16);
        r.set_min_severity(Severity::Info);
        assert!(!r.record(SimTime::ZERO, EventKind::RequestQueued { req: 0, node: 0 }));
        assert!(r.record(SimTime::ZERO, arrive(0)));
        assert_eq!(r.filtered(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn category_filter_rejects_disabled_family() {
        let mut r = Recorder::with_capacity(16);
        r.set_category(Category::Request, false);
        assert!(!r.record(SimTime::ZERO, arrive(0)));
        assert!(r.record(
            SimTime::ZERO,
            EventKind::PrefetchFile {
                node: 0,
                file: 9,
                bytes: 1,
            }
        ));
    }

    #[test]
    fn sort_interleaves_late_events_stably() {
        let mut r = Recorder::with_capacity(16);
        r.record(SimTime::from_micros(10), arrive(0));
        r.record(SimTime::from_micros(30), arrive(1));
        // Late merge: an event from t=10 appended after the fact.
        r.record(
            SimTime::from_micros(10),
            EventKind::PrefetchFile {
                node: 0,
                file: 2,
                bytes: 8,
            },
        );
        r.sort_by_time();
        let order: Vec<(u64, u64)> = r.events().map(|e| (e.at_us, e.seq)).collect();
        assert_eq!(order, vec![(10, 0), (10, 2), (30, 1)]);
    }

    #[test]
    fn jsonl_export_is_reproducible() {
        let build = || {
            let mut r = Recorder::with_capacity(16);
            r.record(SimTime::from_micros(5), arrive(1));
            r.record(
                SimTime::from_micros(7),
                EventKind::RequestComplete {
                    req: 1,
                    response_us: 2,
                },
            );
            r.to_jsonl()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 2);
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn request_history_follows_one_id() {
        let mut r = Recorder::with_capacity(16);
        r.record(SimTime::from_micros(1), arrive(7));
        r.record(SimTime::from_micros(2), arrive(8));
        r.record(
            SimTime::from_micros(3),
            EventKind::RpcHedge {
                req: 400,
                parent: 7,
                node: 1,
            },
        );
        r.record(
            SimTime::from_micros(4),
            EventKind::RequestComplete {
                req: 7,
                response_us: 3,
            },
        );
        let hist = r.request_history(7);
        assert_eq!(hist.len(), 3, "arrive + hedge (nested) + complete");
    }
}
