//! Power-manager prediction-accuracy accounting.
//!
//! EEVFS spins a disk down when the predicted idle window clears the
//! drive's breakeven time (§III-C). The paper never reports how often that
//! prediction was *right* — this module closes the loop: every sleep
//! decision opens a window, the next wake (or the end of the run) closes
//! it, and the realised idle is scored against breakeven. A sleep "paid
//! off" when the disk actually stayed down at least the breakeven time.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One closed sleep window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionSample {
    /// Node owning the disk.
    pub node: u32,
    /// Disk index within the node.
    pub disk: u32,
    /// Predicted idle at decision time, µs (`None` = predictor saw no
    /// future touches, an unbounded prediction).
    pub predicted_us: Option<u64>,
    /// Realised idle: sleep decision to next wake (or run end), µs.
    pub realized_us: u64,
    /// The drive's breakeven time, µs.
    pub breakeven_us: u64,
}

impl PredictionSample {
    /// True when the realised window met breakeven — the sleep saved
    /// energy on net.
    pub fn paid_off(&self) -> bool {
        self.realized_us >= self.breakeven_us
    }
}

/// Tracks open sleep windows and accumulates closed samples.
#[derive(Debug, Clone, Default)]
pub struct PredictionTracker {
    open: BTreeMap<(u32, u32), (u64, Option<u64>, u64)>, // slept_at, predicted, breakeven
    samples: Vec<PredictionSample>,
}

impl PredictionTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sleep decision for `(node, disk)` at `at` with the
    /// manager's predicted idle window and the drive's breakeven time.
    pub fn on_sleep(
        &mut self,
        node: u32,
        disk: u32,
        at: SimTime,
        predicted: Option<SimDuration>,
        breakeven: SimDuration,
    ) {
        self.open.insert(
            (node, disk),
            (
                at.as_micros(),
                predicted.map(SimDuration::as_micros),
                breakeven.as_micros(),
            ),
        );
    }

    /// Closes the open window for `(node, disk)` at wake time `at`,
    /// returning the sample (None when no sleep was outstanding).
    pub fn on_wake(&mut self, node: u32, disk: u32, at: SimTime) -> Option<PredictionSample> {
        let (slept_at, predicted_us, breakeven_us) = self.open.remove(&(node, disk))?;
        let sample = PredictionSample {
            node,
            disk,
            predicted_us,
            realized_us: at.as_micros().saturating_sub(slept_at),
            breakeven_us,
        };
        self.samples.push(sample);
        Some(sample)
    }

    /// Closes every still-open window at the end of the run. Disks asleep
    /// at `end` realised their whole remaining window.
    pub fn finish(&mut self, end: SimTime) -> Vec<PredictionSample> {
        let keys: Vec<(u32, u32)> = self.open.keys().copied().collect();
        keys.iter()
            .filter_map(|&(n, d)| self.on_wake(n, d, end))
            .collect()
    }

    /// All closed samples, in close order.
    pub fn samples(&self) -> &[PredictionSample] {
        &self.samples
    }

    /// Aggregates the closed samples.
    pub fn summary(&self) -> PredictionSummary {
        let mut s = PredictionSummary::default();
        let mut predicted_sum = 0u64;
        let mut predicted_n = 0u64;
        let mut realized_sum = 0u64;
        for sample in &self.samples {
            s.sleeps += 1;
            if sample.paid_off() {
                s.paid_off += 1;
            }
            realized_sum += sample.realized_us;
            if let Some(p) = sample.predicted_us {
                predicted_sum += p;
                predicted_n += 1;
            }
        }
        if predicted_n > 0 {
            s.mean_predicted_s = predicted_sum as f64 / predicted_n as f64 / 1e6;
        }
        if s.sleeps > 0 {
            s.mean_realized_s = realized_sum as f64 / s.sleeps as f64 / 1e6;
        }
        s
    }
}

/// Run-level prediction-accuracy summary — the number the paper discusses
/// but never plots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictionSummary {
    /// Sleep decisions taken (closed windows).
    pub sleeps: u64,
    /// Sleeps whose realised idle met the drive's breakeven time.
    pub paid_off: u64,
    /// Mean predicted idle window in seconds, over bounded predictions.
    pub mean_predicted_s: f64,
    /// Mean realised idle window in seconds, over all sleeps.
    pub mean_realized_s: f64,
}

impl PredictionSummary {
    /// Fraction of sleeps that paid off; 1.0 when no sleep was taken (no
    /// decision was wrong).
    pub fn accuracy(&self) -> f64 {
        if self.sleeps == 0 {
            1.0
        } else {
            self.paid_off as f64 / self.sleeps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn dur(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn sleep_then_wake_scores_against_breakeven() {
        let mut t = PredictionTracker::new();
        t.on_sleep(0, 1, secs(10), Some(dur(60)), dur(12));
        let sample = t.on_wake(0, 1, secs(70)).unwrap();
        assert_eq!(sample.realized_us, 60_000_000);
        assert!(sample.paid_off());

        t.on_sleep(0, 1, secs(100), Some(dur(60)), dur(12));
        let early = t.on_wake(0, 1, secs(105)).unwrap();
        assert!(!early.paid_off(), "5 s realised < 12 s breakeven");
    }

    #[test]
    fn wake_without_sleep_is_ignored() {
        let mut t = PredictionTracker::new();
        assert!(t.on_wake(0, 0, secs(5)).is_none());
    }

    #[test]
    fn finish_closes_outstanding_windows() {
        let mut t = PredictionTracker::new();
        t.on_sleep(0, 0, secs(10), None, dur(12));
        t.on_sleep(1, 2, secs(20), Some(dur(600)), dur(12));
        let closed = t.finish(secs(600));
        assert_eq!(closed.len(), 2);
        assert_eq!(t.samples().len(), 2);
        assert!(closed.iter().all(PredictionSample::paid_off));
    }

    #[test]
    fn summary_aggregates_means_and_accuracy() {
        let mut t = PredictionTracker::new();
        t.on_sleep(0, 0, secs(0), Some(dur(40)), dur(12));
        t.on_wake(0, 0, secs(30)); // paid off
        t.on_sleep(0, 0, secs(50), Some(dur(20)), dur(12));
        t.on_wake(0, 0, secs(52)); // 2 s: did not pay off
        t.on_sleep(0, 1, secs(0), None, dur(12));
        t.on_wake(0, 1, secs(100)); // unbounded prediction, paid off
        let s = t.summary();
        assert_eq!(s.sleeps, 3);
        assert_eq!(s.paid_off, 2);
        assert!((s.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert!(
            (s.mean_predicted_s - 30.0).abs() < 1e-9,
            "over bounded only"
        );
        assert!((s.mean_realized_s - 44.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_vacuously_accurate() {
        let s = PredictionTracker::new().summary();
        assert_eq!(s.sleeps, 0);
        assert_eq!(s.accuracy(), 1.0);
        assert_eq!(s.mean_predicted_s, 0.0);
    }
}
