//! # eevfs-obs — deterministic tracing and telemetry for the EEVFS repro
//!
//! The paper's whole argument is about *when* things happen — request
//! arrivals vs. disk power-state timing (§V-C) — but end-of-run aggregates
//! (`RunMetrics`) cannot show a single request's lifecycle or whether the
//! power manager's idle-window predictions were right. This crate is the
//! missing observability layer:
//!
//! * [`event`] — the structured, integer-only [`TraceEvent`] schema:
//!   request arrive/queue/spinup-wait/serve/complete, disk
//!   Active↔Idle↔Standby transitions, prefetch staging, power-manager
//!   predicted-vs-realised idle windows, RPC send/retry/hedge/complete.
//! * [`recorder`] — a bounded ring-buffer [`Recorder`] with severity and
//!   category filtering and JSONL export that is **byte-identical across
//!   same-seed runs** (the determinism contract is documented there).
//! * [`metrics`] — a name-keyed [`MetricsRegistry`] of counters, gauges,
//!   histograms, and time series, plus an interval [`Sampler`] that takes
//!   periodic samples without perturbing the event queue.
//! * [`timeline`] — the paper's Fig-2-style ASCII power/state timeline,
//!   reconstructed from `DiskTransition` events.
//! * [`prediction`] — [`PredictionTracker`]: scores every sleep decision's
//!   realised idle window against the drive's breakeven time.
//!
//! The crate deliberately depends only on `sim-core`, `disk-model`, and
//! the serialisation shims, so every layer above (driver, runtime, bench
//! harness) can thread it through without cycles.

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod prediction;
pub mod recorder;
pub mod timeline;

pub use event::{Category, EventKind, Severity, TraceEvent};
pub use metrics::{MetricsError, MetricsRegistry, Sampler};
pub use prediction::{PredictionSample, PredictionSummary, PredictionTracker};
pub use recorder::Recorder;
pub use timeline::render_power_timeline;
