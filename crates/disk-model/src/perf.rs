//! Disk service-time model.
//!
//! A request costs positioning time (average seek + rotational latency)
//! plus media transfer time. The buffer disk in EEVFS is used as a *log
//! disk* precisely so that its accesses are sequential (§I of the paper:
//! "data can be written onto the log disks in a sequential manner to
//! improve performance"); sequential accesses skip the positioning cost.

use crate::spec::DiskSpec;
use sim_core::SimDuration;

/// How a request lands on the platters, for positioning-cost purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Random access: pay seek + rotational latency.
    Random,
    /// Sequential access (log append / streaming scan): positioning free.
    Sequential,
}

/// Time for a disk described by `spec` to service `bytes` of I/O.
///
/// Zero-byte requests still pay positioning when random (a metadata touch).
pub fn service_time(spec: &DiskSpec, bytes: u64, kind: AccessKind) -> SimDuration {
    let positioning = match kind {
        AccessKind::Random => spec.avg_seek_s + spec.avg_rotation_s,
        AccessKind::Sequential => 0.0,
    };
    let transfer = bytes as f64 / spec.bandwidth_bps as f64;
    SimDuration::from_secs_f64(positioning + transfer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    #[test]
    fn transfer_dominates_large_reads() {
        let spec = DiskSpec::ata133_type1(); // 58 MB/s
        let t = service_time(&spec, 58 * MB, AccessKind::Random);
        // 1 s transfer + ~12.7 ms positioning.
        assert!((t.as_secs_f64() - 1.0127).abs() < 1e-3, "got {t}");
    }

    #[test]
    fn sequential_skips_positioning() {
        let spec = DiskSpec::ata133_type1();
        let seq = service_time(&spec, 10 * MB, AccessKind::Sequential);
        let rnd = service_time(&spec, 10 * MB, AccessKind::Random);
        let diff = rnd.as_secs_f64() - seq.as_secs_f64();
        assert!((diff - (spec.avg_seek_s + spec.avg_rotation_s)).abs() < 1e-6);
    }

    #[test]
    fn zero_bytes_random_is_positioning_only() {
        let spec = DiskSpec::ata133_type2();
        let t = service_time(&spec, 0, AccessKind::Random);
        assert!((t.as_secs_f64() - (spec.avg_seek_s + spec.avg_rotation_s)).abs() < 1e-9);
        let t_seq = service_time(&spec, 0, AccessKind::Sequential);
        assert!(t_seq.is_zero());
    }

    #[test]
    fn slower_drive_takes_longer() {
        let t1 = service_time(&DiskSpec::ata133_type1(), 10 * MB, AccessKind::Random);
        let t2 = service_time(&DiskSpec::ata133_type2(), 10 * MB, AccessKind::Random);
        assert!(t2 > t1, "34 MB/s drive must be slower than 58 MB/s drive");
    }

    #[test]
    fn paper_scale_sanity_ten_megabytes() {
        // 10 MB on the Type 2 drive: 10/34 s ≈ 294 ms transfer.
        let t = service_time(&DiskSpec::ata133_type2(), 10 * MB, AccessKind::Random);
        let secs = t.as_secs_f64();
        assert!(secs > 0.29 && secs < 0.32, "got {secs}");
    }

    #[test]
    fn service_time_is_monotone_in_bytes() {
        let spec = DiskSpec::sata_server();
        let mut prev = SimDuration::ZERO;
        for mbs in [0u64, 1, 5, 10, 25, 50, 100] {
            let t = service_time(&spec, mbs * MB, AccessKind::Sequential);
            assert!(t >= prev);
            prev = t;
        }
    }
}
