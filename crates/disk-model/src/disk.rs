//! A FIFO-queued simulated disk drive.
//!
//! [`Disk`] is the unit the EEVFS storage node manages: it combines the
//! service-time model, the power-state machine, and the energy meter, and
//! is driven by the cluster simulation strictly in event-time order.
//!
//! Requests are serviced first-come-first-served (one head, one queue). A
//! request that lands on a sleeping drive pays the spin-up delay in its
//! response time — exactly the penalty the paper measures as "around 2 sec"
//! (§VI-C). A request that lands *mid spin-down* must wait for the
//! wind-down to finish and then spin back up, the worst case the paper's
//! application hints try to avoid (§IV-C).

use crate::energy::{EnergyMeter, TransitionCounts};
use crate::perf::{service_time, AccessKind};
use crate::spec::DiskSpec;
use crate::state::PowerState;
use sim_core::{SimDuration, SimTime};

/// Where the drive is in its sleep lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Platters spinning; `busy_until` marks the queue tail.
    Spun,
    /// Spin-down in progress, completing at `done`.
    WindingDown { done: SimTime },
    /// Fully spun down.
    Asleep,
}

/// Outcome of submitting one request to a [`Disk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionInfo {
    /// When the heads started on this request (after queueing and any
    /// spin-up).
    pub start: SimTime,
    /// When the last byte left the platters.
    pub finish: SimTime,
    /// True when this request triggered (or had to ride out) a spin-up.
    pub spun_up: bool,
    /// Queueing plus wake delay: `start - submit_time`.
    pub waited: SimDuration,
}

/// A simulated drive with FIFO service and lazy power-state accounting.
///
/// All methods must be called with non-decreasing `now` values; the cluster
/// driver guarantees this by construction (it processes a global
/// time-ordered event queue).
#[derive(Debug, Clone)]
pub struct Disk {
    meter: EnergyMeter,
    busy_until: SimTime,
    phase: Phase,
    generation: u64,
    requests_served: u64,
    bytes_served: u64,
}

impl Disk {
    /// A new drive, idle and spun up at time zero.
    pub fn new(spec: DiskSpec) -> Self {
        Disk {
            meter: EnergyMeter::new(spec),
            busy_until: SimTime::ZERO,
            phase: Phase::Spun,
            generation: 0,
            requests_served: 0,
            bytes_served: 0,
        }
    }

    /// The drive's spec.
    pub fn spec(&self) -> &DiskSpec {
        self.meter.spec()
    }

    /// The energy meter (for end-of-run reporting).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Enables cumulative-energy trace recording.
    pub fn enable_trace(&mut self) {
        self.meter.enable_trace();
    }

    /// Enables power-state edge logging (read back via
    /// [`EnergyMeter::state_log`] on [`Self::meter`]).
    pub fn enable_state_log(&mut self) {
        self.meter.enable_state_log();
    }

    /// Transition ledger so far.
    pub fn transitions(&self) -> TransitionCounts {
        self.meter.transitions()
    }

    /// Start/stop cycles taken so far (spin-downs). Datasheet MTTF
    /// figures assume a bounded cycle count, so power policies cap this
    /// per run (cf. `eevfs-power`'s spin budgets).
    pub fn spin_cycles(&self) -> u64 {
        self.meter.transitions().spin_downs
    }

    /// Number of requests fully submitted.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Total bytes moved.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Queue tail: when everything submitted so far will be done.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Monotone counter bumped on every submit; idle-timer policies tag
    /// their timers with it so that any intervening request invalidates the
    /// pending timer.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True when the platters are spinning or winding down has not begun.
    pub fn is_spun(&self, now: SimTime) -> bool {
        let _ = now;
        matches!(self.phase, Phase::Spun)
    }

    /// True when the drive is spun and has no queued work at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        matches!(self.phase, Phase::Spun) && self.busy_until <= now
    }

    /// True when asleep or winding down.
    pub fn is_sleeping(&self) -> bool {
        matches!(self.phase, Phase::WindingDown { .. } | Phase::Asleep)
    }

    /// Lazily records the SpinningDown → Standby edge once `now` passes the
    /// wind-down completion.
    fn settle(&mut self, now: SimTime) {
        if let Phase::WindingDown { done } = self.phase {
            if now >= done {
                self.meter.set_state(done, PowerState::Standby);
                self.phase = Phase::Asleep;
            }
        }
    }

    /// Submits a request of `bytes` at time `now`; returns its service
    /// timeline. FIFO: the request starts when the queue drains, later if
    /// the drive must wake first.
    pub fn submit(&mut self, now: SimTime, bytes: u64, kind: AccessKind) -> CompletionInfo {
        self.settle(now);
        self.generation += 1;
        let mut spun_up = false;
        let start = match self.phase {
            Phase::Spun => now.max(self.busy_until),
            Phase::Asleep => {
                spun_up = true;
                let wake_begin = now.max(self.meter.last_update());
                self.meter.set_state(wake_begin, PowerState::SpinningUp);
                wake_begin + SimDuration::from_secs_f64(self.spec().t_spinup_s)
            }
            Phase::WindingDown { done } => {
                // Arrived mid wind-down: ride it out, then spin up.
                spun_up = true;
                self.meter.set_state(done, PowerState::SpinningUp);
                done + SimDuration::from_secs_f64(self.spec().t_spinup_s)
            }
        };
        let svc = service_time(self.spec(), bytes, kind);
        let finish = start + svc;
        self.meter.set_state(start, PowerState::Active);
        self.meter.set_state(finish, PowerState::Idle);
        self.busy_until = finish;
        self.phase = Phase::Spun;
        self.requests_served += 1;
        self.bytes_served += bytes;
        CompletionInfo {
            start,
            finish,
            spun_up,
            waited: start - now,
        }
    }

    /// Attempts to spin the drive down at `now`. Returns `false` (and does
    /// nothing) when the drive is busy or already sleeping.
    pub fn sleep(&mut self, now: SimTime) -> bool {
        self.settle(now);
        if !self.is_idle(now) {
            return false;
        }
        self.meter.set_state(now, PowerState::SpinningDown);
        self.phase = Phase::WindingDown {
            done: now + SimDuration::from_secs_f64(self.spec().t_spindown_s),
        };
        true
    }

    /// Settles the timeline to `end` so the meter covers the whole run.
    /// Idempotent; call once after the last event.
    pub fn finalize(&mut self, end: SimTime) {
        self.settle(end);
        let to = end.max(self.meter.last_update());
        self.meter.advance(to);
        self.meter.record_sample();
    }

    /// Total energy consumed, joules (valid after [`Self::finalize`]).
    pub fn total_joules(&self) -> f64 {
        self.meter.total_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    fn disk() -> Disk {
        Disk::new(DiskSpec::ata133_type1())
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_request_timeline() {
        let mut d = disk();
        let c = d.submit(secs(10), 58 * MB, AccessKind::Sequential);
        assert_eq!(c.start, secs(10));
        assert_eq!(c.finish, secs(11)); // 58 MB at 58 MB/s
        assert!(!c.spun_up);
        assert!(c.waited.is_zero());
        d.finalize(secs(20));
        let spec = DiskSpec::ata133_type1();
        let expect = spec.p_idle_w * 19.0 + spec.p_active_w * 1.0;
        assert!((d.total_joules() - expect).abs() < 1e-6);
    }

    #[test]
    fn fifo_queueing_delays_second_request() {
        let mut d = disk();
        let c1 = d.submit(secs(0), 58 * MB, AccessKind::Sequential); // busy 0..1
        let c2 = d.submit(secs(0), 58 * MB, AccessKind::Sequential); // queued
        assert_eq!(c1.finish, secs(1));
        assert_eq!(c2.start, secs(1));
        assert_eq!(c2.finish, secs(2));
        assert_eq!(c2.waited, SimDuration::from_secs(1));
        assert_eq!(d.requests_served(), 2);
        assert_eq!(d.bytes_served(), 116 * MB);
    }

    #[test]
    fn sleep_then_wake_pays_spinup() {
        let mut d = disk();
        assert!(d.sleep(secs(0)));
        assert!(d.is_sleeping());
        let c = d.submit(secs(100), 0, AccessKind::Sequential);
        // Wake begins at 100; spin-up 2 s; zero-byte sequential request.
        assert!(c.spun_up);
        assert_eq!(c.start, secs(102));
        assert_eq!(c.waited, SimDuration::from_secs(2));
        assert_eq!(
            d.transitions(),
            TransitionCounts {
                spin_ups: 1,
                spin_downs: 1
            }
        );
    }

    #[test]
    fn sleep_refused_while_busy() {
        let mut d = disk();
        d.submit(secs(0), 58 * MB, AccessKind::Sequential); // busy until 1 s
        assert!(!d.sleep(SimTime::from_millis(500)));
        assert!(d.is_spun(SimTime::from_millis(500)));
        assert!(d.sleep(secs(1)), "idle at the queue tail");
    }

    #[test]
    fn double_sleep_is_refused() {
        let mut d = disk();
        assert!(d.sleep(secs(0)));
        assert!(!d.sleep(secs(1)), "winding down");
        assert!(!d.sleep(secs(10)), "already asleep");
        assert_eq!(d.transitions().spin_downs, 1);
    }

    #[test]
    fn request_mid_winddown_rides_it_out() {
        let mut d = disk();
        assert!(d.sleep(secs(10))); // wind-down 10..11.5
        let c = d.submit(SimTime::from_millis(10_500), 0, AccessKind::Sequential);
        // Must wait for wind-down end (11.5 s) + spin-up (2 s).
        assert_eq!(c.start, SimTime::from_millis(13_500));
        assert!(c.spun_up);
        assert_eq!(d.transitions().total(), 2);
    }

    #[test]
    fn long_standby_saves_energy_versus_staying_idle() {
        let horizon = secs(600);
        let mut sleeper = disk();
        sleeper.sleep(secs(0));
        sleeper.finalize(horizon);

        let mut idler = disk();
        idler.finalize(horizon);

        assert!(sleeper.total_joules() < idler.total_joules());
        // Savings roughly (p_idle - p_standby) * t minus transition cost.
        let spec = DiskSpec::ata133_type1();
        let gross = (spec.p_idle_w - spec.p_standby_w) * 600.0;
        let saved = idler.total_joules() - sleeper.total_joules();
        assert!(saved > 0.8 * gross, "saved {saved} of gross {gross}");
    }

    #[test]
    fn short_standby_wastes_energy() {
        // Below break-even: sleeping for 3 s costs more than idling.
        let mut sleeper = disk();
        sleeper.sleep(secs(0));
        let c = sleeper.submit(secs(3), 0, AccessKind::Sequential);
        sleeper.finalize(c.finish);

        let mut idler = disk();
        let c2 = idler.submit(secs(3), 0, AccessKind::Sequential);
        idler.finalize(c2.finish);

        // Compare over the same horizon.
        let horizon = c.finish.max(c2.finish);
        let mut s2 = sleeper.clone();
        s2.finalize(horizon);
        let mut i2 = idler.clone();
        i2.finalize(horizon);
        assert!(
            s2.total_joules() > i2.total_joules(),
            "3 s nap must lose: sleep={} idle={}",
            s2.total_joules(),
            i2.total_joules()
        );
    }

    #[test]
    fn generation_bumps_on_submit_only() {
        let mut d = disk();
        assert_eq!(d.generation(), 0);
        d.submit(secs(0), MB, AccessKind::Random);
        assert_eq!(d.generation(), 1);
        d.sleep(secs(10));
        assert_eq!(d.generation(), 1);
        d.submit(secs(20), MB, AccessKind::Random);
        assert_eq!(d.generation(), 2);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut d = disk();
        d.submit(secs(0), 58 * MB, AccessKind::Sequential);
        d.finalize(secs(10));
        let e1 = d.total_joules();
        d.finalize(secs(10));
        assert_eq!(d.total_joules(), e1);
    }

    #[test]
    fn is_idle_respects_queue_tail() {
        let mut d = disk();
        d.submit(secs(0), 58 * MB, AccessKind::Sequential);
        assert!(!d.is_idle(SimTime::from_millis(999)));
        assert!(d.is_idle(secs(1)));
    }

    #[test]
    fn spin_cycles_count_spin_downs() {
        let mut d = disk();
        assert_eq!(d.spin_cycles(), 0);
        d.sleep(secs(0));
        d.submit(secs(100), MB, AccessKind::Random);
        d.sleep(secs(200));
        assert_eq!(d.spin_cycles(), 2);
        assert_eq!(d.spin_cycles(), d.transitions().spin_downs);
    }

    #[test]
    fn wake_is_transparent_when_already_spun() {
        let mut d = disk();
        let c = d.submit(secs(5), MB, AccessKind::Random);
        assert!(!c.spun_up);
        assert!(c.waited.is_zero());
    }
}
