//! Per-state energy integration and the transition ledger.
//!
//! The paper's three metrics (§V-C) are energy consumed, number of power
//! state transitions, and response time. [`EnergyMeter`] produces the first
//! two for one drive: it integrates `power(state) × time` lazily as the
//! simulation pushes state changes at it in time order, and counts every
//! spin-up and spin-down (the transitions Fig 4 reports).

use crate::spec::DiskSpec;
use crate::state::PowerState;
use serde::{Deserialize, Serialize};
use sim_core::{SimTime, TimeSeries};

/// Counts of spin transitions, the unit of the paper's Fig 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionCounts {
    /// Standby → spinning transitions (each adds ~2 s of latency).
    pub spin_ups: u64,
    /// Spinning → standby transitions.
    pub spin_downs: u64,
}

impl TransitionCounts {
    /// Total transitions, the quantity plotted in the paper's Fig 4.
    pub fn total(&self) -> u64 {
        self.spin_ups + self.spin_downs
    }
}

/// Integrates one drive's energy over its power-state timeline.
///
/// Calls must be time-ordered; the meter panics (debug) on clock reversal.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    spec: DiskSpec,
    state: PowerState,
    last: SimTime,
    joules_by_state: [f64; 5],
    time_by_state_us: [u64; 5],
    transitions: TransitionCounts,
    /// Cumulative-energy curve, one sample per state change, for the
    /// harness's power-over-time plots.
    trace: TimeSeries,
    trace_enabled: bool,
    /// Every state edge as `(at, from, to)`, for trace-event export.
    state_log: Vec<(SimTime, PowerState, PowerState)>,
    state_log_enabled: bool,
}

impl EnergyMeter {
    /// A meter starting at `t = 0` in the Idle state (drives in the paper's
    /// testbed idle until the trace starts).
    pub fn new(spec: DiskSpec) -> Self {
        EnergyMeter {
            spec,
            state: PowerState::Idle,
            last: SimTime::ZERO,
            joules_by_state: [0.0; 5],
            time_by_state_us: [0; 5],
            transitions: TransitionCounts::default(),
            trace: TimeSeries::new(),
            trace_enabled: false,
            state_log: Vec::new(),
            state_log_enabled: false,
        }
    }

    /// Enables recording of the cumulative-energy curve (off by default to
    /// keep parameter sweeps lean). Samples land at every state change and
    /// at finalisation; since power is constant within a state, linear
    /// interpolation between samples reconstructs the curve exactly.
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
        self.record_sample();
    }

    /// Enables recording of every power-state edge (off by default; the
    /// log grows with transition count, so sweeps leave it disabled).
    pub fn enable_state_log(&mut self) {
        self.state_log_enabled = true;
    }

    /// The recorded `(at, from, to)` edges, in time order (empty unless
    /// [`Self::enable_state_log`] was called before the run).
    pub fn state_log(&self) -> &[(SimTime, PowerState, PowerState)] {
        &self.state_log
    }

    /// The drive's spec.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// The current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// The time of the last recorded change.
    pub fn last_update(&self) -> SimTime {
        self.last
    }

    /// Integrates energy in the current state up to `to`.
    pub fn advance(&mut self, to: SimTime) {
        debug_assert!(
            to >= self.last,
            "energy meter went backwards: {to} < {}",
            self.last
        );
        let to = to.max(self.last);
        let dt = (to - self.last).as_secs_f64();
        let idx = self.state.index();
        self.joules_by_state[idx] += self.spec.power(self.state) * dt;
        self.time_by_state_us[idx] += (to - self.last).as_micros();
        self.last = to;
    }

    /// Integrates up to `at`, then switches to `new_state`.
    ///
    /// Panics if the transition is not legal per
    /// [`PowerState::can_transition_to`]; catching protocol bugs here is
    /// what keeps the power-management policies honest.
    pub fn set_state(&mut self, at: SimTime, new_state: PowerState) {
        if new_state == self.state {
            self.advance(at);
            return;
        }
        assert!(
            self.state.can_transition_to(new_state),
            "illegal power transition {} -> {} at {at}",
            self.state,
            new_state
        );
        self.advance(at);
        match new_state {
            PowerState::SpinningUp => self.transitions.spin_ups += 1,
            PowerState::SpinningDown => self.transitions.spin_downs += 1,
            _ => {}
        }
        if self.state_log_enabled {
            self.state_log.push((at, self.state, new_state));
        }
        self.state = new_state;
        if self.trace_enabled {
            self.trace.push(at, self.total_joules());
        }
    }

    /// Total energy consumed so far, joules.
    pub fn total_joules(&self) -> f64 {
        self.joules_by_state.iter().sum()
    }

    /// Energy consumed in one state, joules.
    pub fn joules_in(&self, state: PowerState) -> f64 {
        self.joules_by_state[state.index()]
    }

    /// Time spent in one state, seconds.
    pub fn seconds_in(&self, state: PowerState) -> f64 {
        self.time_by_state_us[state.index()] as f64 / 1e6
    }

    /// Fraction of elapsed time spent in Standby — the "sleep fraction"
    /// EXPERIMENTS.md reports alongside energy.
    pub fn standby_fraction(&self) -> f64 {
        let total: u64 = self.time_by_state_us.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.time_by_state_us[PowerState::Standby.index()] as f64 / total as f64
        }
    }

    /// The transition ledger.
    pub fn transitions(&self) -> TransitionCounts {
        self.transitions
    }

    /// The cumulative-energy curve (empty unless [`Self::enable_trace`]).
    pub fn trace(&self) -> &TimeSeries {
        &self.trace
    }

    /// Appends a `(last_update, total_joules)` sample to the trace (used
    /// by finalisation so the curve covers the whole run).
    pub fn record_sample(&mut self) {
        if self.trace_enabled {
            self.trace.push(self.last, self.total_joules());
        }
    }

    /// Hypothetical energy had the drive idled from 0 to `t` with no
    /// requests and no power management — the paper's implicit baseline
    /// when it says prefetching "keeps disks in the standby state".
    pub fn idle_baseline_joules(&self, t: SimTime) -> f64 {
        self.spec.p_idle_w * t.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> EnergyMeter {
        EnergyMeter::new(DiskSpec::ata133_type1())
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pure_idle_energy() {
        let mut m = meter();
        m.advance(secs(100));
        let expect = DiskSpec::ata133_type1().p_idle_w * 100.0;
        assert!((m.total_joules() - expect).abs() < 1e-9);
        assert_eq!(m.transitions().total(), 0);
        assert!((m.seconds_in(PowerState::Idle) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn active_period_costs_more() {
        let spec = DiskSpec::ata133_type1();
        let mut m = meter();
        m.set_state(secs(10), PowerState::Active);
        m.set_state(secs(20), PowerState::Idle);
        m.advance(secs(30));
        let expect = spec.p_idle_w * 20.0 + spec.p_active_w * 10.0;
        assert!((m.total_joules() - expect).abs() < 1e-9);
        assert!((m.joules_in(PowerState::Active) - spec.p_active_w * 10.0).abs() < 1e-9);
    }

    #[test]
    fn full_sleep_cycle_counts_two_transitions() {
        let spec = DiskSpec::ata133_type1();
        let mut m = meter();
        m.set_state(secs(10), PowerState::SpinningDown);
        m.set_state(secs(12), PowerState::Standby); // 2 s spin-down plateau (test value)
        m.set_state(secs(100), PowerState::SpinningUp);
        m.set_state(secs(102), PowerState::Idle);
        m.advance(secs(110));
        assert_eq!(
            m.transitions(),
            TransitionCounts {
                spin_ups: 1,
                spin_downs: 1
            }
        );
        assert_eq!(m.transitions().total(), 2);
        let expect = spec.p_idle_w * (10.0 + 8.0)
            + spec.p_spindown_w * 2.0
            + spec.p_standby_w * 88.0
            + spec.p_spinup_w * 2.0;
        assert!(
            (m.total_joules() - expect).abs() < 1e-9,
            "got {}",
            m.total_joules()
        );
    }

    #[test]
    fn sleeping_saves_versus_idle_baseline_for_long_windows() {
        let mut m = meter();
        m.set_state(secs(0), PowerState::SpinningDown);
        m.set_state(secs(2), PowerState::Standby);
        m.set_state(secs(598), PowerState::SpinningUp);
        m.set_state(secs(600), PowerState::Idle);
        assert!(m.total_joules() < m.idle_baseline_joules(secs(600)));
    }

    #[test]
    #[should_panic(expected = "illegal power transition")]
    fn illegal_jump_panics() {
        let mut m = meter();
        m.set_state(secs(1), PowerState::Standby); // must pass through spin-down
    }

    #[test]
    fn same_state_set_is_advance() {
        let mut m = meter();
        m.set_state(secs(5), PowerState::Idle);
        assert_eq!(m.transitions().total(), 0);
        assert_eq!(m.last_update(), secs(5));
    }

    #[test]
    fn standby_fraction() {
        let mut m = meter();
        m.set_state(secs(10), PowerState::SpinningDown);
        m.set_state(secs(11), PowerState::Standby);
        m.advance(secs(100));
        // 89 s of 100 s in standby.
        assert!((m.standby_fraction() - 0.89).abs() < 1e-9);
    }

    #[test]
    fn trace_records_cumulative_energy() {
        let mut m = meter();
        m.enable_trace();
        m.set_state(secs(10), PowerState::Active);
        m.set_state(secs(20), PowerState::Idle);
        // Initial (0, 0) sample plus one per state change.
        assert_eq!(m.trace().len(), 3);
        assert_eq!(m.trace().get(0), (SimTime::ZERO, 0.0));
        let (t_last, e_last) = m.trace().last().expect("two samples");
        assert_eq!(t_last, secs(20));
        assert!((e_last - m.total_joules()).abs() < 1e-9);
        // The curve is non-decreasing.
        let vals: Vec<f64> = m.trace().iter().map(|(_, v)| v).collect();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn state_log_records_every_edge_in_order() {
        let mut m = meter();
        m.enable_state_log();
        m.set_state(secs(10), PowerState::SpinningDown);
        m.set_state(secs(12), PowerState::Standby);
        m.set_state(secs(12), PowerState::Standby); // same-state: no edge
        m.set_state(secs(100), PowerState::SpinningUp);
        assert_eq!(
            m.state_log(),
            &[
                (secs(10), PowerState::Idle, PowerState::SpinningDown),
                (secs(12), PowerState::SpinningDown, PowerState::Standby),
                (secs(100), PowerState::Standby, PowerState::SpinningUp),
            ]
        );
    }

    #[test]
    fn state_log_off_by_default() {
        let mut m = meter();
        m.set_state(secs(10), PowerState::Active);
        assert!(m.state_log().is_empty());
    }

    #[test]
    fn mid_spindown_reversal_is_legal_and_counted() {
        let mut m = meter();
        m.set_state(secs(10), PowerState::SpinningDown);
        // Request arrives during spin-down: reverse into spin-up.
        m.set_state(secs(11), PowerState::SpinningUp);
        m.set_state(secs(13), PowerState::Active);
        assert_eq!(
            m.transitions(),
            TransitionCounts {
                spin_ups: 1,
                spin_downs: 1
            }
        );
    }
}
