//! Per-block CRC32 checksums.
//!
//! EEVFS verifies every block it reads (and every block a scrub pass
//! touches) against a stored CRC32 so silent corruption — bit rot on a
//! platter, a latent sector error surfacing — is *detected* rather than
//! served. CRC32 (the IEEE 802.3 polynomial, reflected form) is the
//! classic storage-integrity choice: it catches every single-bit error,
//! every odd number of bit errors, and all burst errors up to 32 bits,
//! which covers the corruption model the fault layer injects.
//!
//! Hand-rolled with a lazily-built 256-entry table — no external crate,
//! and byte-for-byte compatible with the ubiquitous `crc32` (zlib/PNG)
//! checksum so stored values are recognisable in hexdumps.

/// Fixed logical block size used for checksum and scrub accounting, 64 KiB.
///
/// The paper's files are 1–50 MB, so a file spans tens to hundreds of
/// blocks; per-block (rather than per-file) checksums are what let a
/// repair fetch only the damaged fraction from a replica.
pub const BLOCK_SIZE: u64 = 64 * 1024;

/// Number of `BLOCK_SIZE` blocks needed to hold `bytes` (at least 1, so
/// even an empty file owns a checksummed block).
pub fn blocks_of(bytes: u64) -> u64 {
    bytes.div_ceil(BLOCK_SIZE).max(1)
}

/// The reflected CRC32 (IEEE 802.3 / zlib) lookup table.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 (IEEE/zlib) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feed `state` (start from `0xFFFF_FFFF`) through
/// successive chunks, then XOR with `0xFFFF_FFFF` to finish.
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Classic zlib/PNG test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"energy efficient prefetching with buffer disks";
        let mut state = 0xFFFF_FFFFu32;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn block_math() {
        assert_eq!(blocks_of(0), 1);
        assert_eq!(blocks_of(1), 1);
        assert_eq!(blocks_of(BLOCK_SIZE), 1);
        assert_eq!(blocks_of(BLOCK_SIZE + 1), 2);
        assert_eq!(blocks_of(50 * 1_000_000), 763);
    }
}
