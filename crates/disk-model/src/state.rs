//! Disk power states and the legal transitions between them.
//!
//! The paper's power management (§III-C) assumes the classic DPM model
//! [Benini et al.]: a drive is **Active** while servicing a request,
//! **Idle** (platters spinning, heads parked) between requests, and can be
//! sent to **Standby** (spun down) to save energy. Moving between Idle and
//! Standby is not free: the drive passes through timed **SpinningDown** /
//! **SpinningUp** phases that cost energy and — for spin-up — around two
//! seconds of added response time on the paper's drives.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A disk power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Servicing a request (heads seeking / transferring).
    Active,
    /// Spinning but not servicing; the default resting state.
    Idle,
    /// Spun down; minimal power; must spin up before servicing.
    Standby,
    /// Timed transition from Standby toward Idle/Active.
    SpinningUp,
    /// Timed transition from Idle toward Standby.
    SpinningDown,
}

impl PowerState {
    /// All states, in a fixed order usable for indexing tables.
    pub const ALL: [PowerState; 5] = [
        PowerState::Active,
        PowerState::Idle,
        PowerState::Standby,
        PowerState::SpinningUp,
        PowerState::SpinningDown,
    ];

    /// Dense index of this state into tables sized [`Self::ALL`].
    pub fn index(self) -> usize {
        match self {
            PowerState::Active => 0,
            PowerState::Idle => 1,
            PowerState::Standby => 2,
            PowerState::SpinningUp => 3,
            PowerState::SpinningDown => 4,
        }
    }

    /// True when the platters are spinning at full speed (the drive can
    /// accept a request without a spin-up delay).
    pub fn is_spun(self) -> bool {
        matches!(self, PowerState::Active | PowerState::Idle)
    }

    /// True during a timed spin transition.
    pub fn is_transitioning(self) -> bool {
        matches!(self, PowerState::SpinningUp | PowerState::SpinningDown)
    }

    /// Whether a direct move `self -> to` is physically meaningful.
    ///
    /// The model allows: Active<->Idle freely (request boundaries),
    /// Idle->SpinningDown->Standby, Standby->SpinningUp->{Idle,Active}, and
    /// the mid-spin-down reversal SpinningDown->SpinningUp (a request
    /// arriving while the drive is still winding down). Self-loops are not
    /// transitions.
    pub fn can_transition_to(self, to: PowerState) -> bool {
        use PowerState::*;
        matches!(
            (self, to),
            (Active, Idle)
                | (Idle, Active)
                | (Idle, SpinningDown)
                | (SpinningDown, Standby)
                | (SpinningDown, SpinningUp)
                | (Standby, SpinningUp)
                | (SpinningUp, Idle)
                | (SpinningUp, Active)
        )
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerState::Active => "active",
            PowerState::Idle => "idle",
            PowerState::Standby => "standby",
            PowerState::SpinningUp => "spinning-up",
            PowerState::SpinningDown => "spinning-down",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PowerState::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for s in PowerState::ALL {
            assert!(!seen[s.index()], "duplicate index for {s}");
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn spun_classification() {
        assert!(Active.is_spun());
        assert!(Idle.is_spun());
        assert!(!Standby.is_spun());
        assert!(!SpinningUp.is_spun());
        assert!(!SpinningDown.is_spun());
    }

    #[test]
    fn transition_legality() {
        assert!(Idle.can_transition_to(SpinningDown));
        assert!(SpinningDown.can_transition_to(Standby));
        assert!(Standby.can_transition_to(SpinningUp));
        assert!(SpinningUp.can_transition_to(Idle));
        assert!(SpinningUp.can_transition_to(Active));
        assert!(SpinningDown.can_transition_to(SpinningUp));
        assert!(Active.can_transition_to(Idle));
        assert!(Idle.can_transition_to(Active));

        // Illegal jumps.
        assert!(
            !Idle.can_transition_to(Standby),
            "must pass through spin-down"
        );
        assert!(
            !Standby.can_transition_to(Idle),
            "must pass through spin-up"
        );
        assert!(!Standby.can_transition_to(Active));
        assert!(!Active.can_transition_to(Standby));
        assert!(
            !Active.can_transition_to(SpinningDown),
            "finish the request first"
        );
    }

    #[test]
    fn no_self_loops() {
        for s in PowerState::ALL {
            assert!(
                !s.can_transition_to(s),
                "{s} -> {s} must not be a transition"
            );
        }
    }

    #[test]
    fn transitioning_classification() {
        assert!(SpinningUp.is_transitioning());
        assert!(SpinningDown.is_transitioning());
        assert!(!Active.is_transitioning());
        assert!(!Idle.is_transitioning());
        assert!(!Standby.is_transitioning());
    }

    #[test]
    fn display_names() {
        assert_eq!(Active.to_string(), "active");
        assert_eq!(SpinningDown.to_string(), "spinning-down");
    }
}
