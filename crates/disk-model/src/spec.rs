//! Drive parameter sets, including the paper's Table I testbed drives.
//!
//! The paper gives bandwidths and capacities for its drives but not power
//! constants; those come from contemporaneous ATA drive datasheets (IBM/
//! Hitachi Deskstar-class drives widely used in 2000s energy studies,
//! including the authors' own PRE-BUD simulations): ~13 W seeking, ~9 W
//! idle, ~2.5 W standby, a spin-up surge of ~24 W for ~2 s (the paper
//! itself reports "spin up operations ... average around 2 sec"), and a
//! gentler spin-down. EXPERIMENTS.md records how results depend on these.

use crate::state::PowerState;
use serde::{Deserialize, Serialize};

/// Bytes per megabyte as used for drive bandwidth figures (decimal MB, as
/// in the paper's "58 MBytes/sec").
pub const MB: u64 = 1_000_000;
/// Bytes per gigabyte (decimal, to match "80 GByte" marketing capacity).
pub const GB: u64 = 1_000_000_000;

/// Static description of a disk drive: geometry-free performance figures
/// plus the power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Human-readable model name.
    pub name: String,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Sustained media transfer rate, bytes/second.
    pub bandwidth_bps: u64,
    /// Average seek time, seconds.
    pub avg_seek_s: f64,
    /// Average rotational latency, seconds (half a revolution).
    pub avg_rotation_s: f64,
    /// Power draw while servicing a request, watts.
    pub p_active_w: f64,
    /// Power draw while idle (spinning), watts.
    pub p_idle_w: f64,
    /// Power draw in standby (spun down), watts.
    pub p_standby_w: f64,
    /// Power draw during spin-up, watts.
    pub p_spinup_w: f64,
    /// Power draw during spin-down, watts.
    pub p_spindown_w: f64,
    /// Spin-up duration, seconds.
    pub t_spinup_s: f64,
    /// Spin-down duration, seconds.
    pub t_spindown_s: f64,
}

impl DiskSpec {
    /// Power draw in a given state, watts.
    pub fn power(&self, state: PowerState) -> f64 {
        match state {
            PowerState::Active => self.p_active_w,
            PowerState::Idle => self.p_idle_w,
            PowerState::Standby => self.p_standby_w,
            PowerState::SpinningUp => self.p_spinup_w,
            PowerState::SpinningDown => self.p_spindown_w,
        }
    }

    /// Sanity-checks the parameter set; returns a description of the first
    /// problem found, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 {
            return Err("capacity must be positive".into());
        }
        if self.bandwidth_bps == 0 {
            return Err("bandwidth must be positive".into());
        }
        for (label, v) in [
            ("avg_seek_s", self.avg_seek_s),
            ("avg_rotation_s", self.avg_rotation_s),
            ("t_spinup_s", self.t_spinup_s),
            ("t_spindown_s", self.t_spindown_s),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{label} must be non-negative, got {v}"));
            }
        }
        for (label, v) in [
            ("p_active_w", self.p_active_w),
            ("p_idle_w", self.p_idle_w),
            ("p_standby_w", self.p_standby_w),
            ("p_spinup_w", self.p_spinup_w),
            ("p_spindown_w", self.p_spindown_w),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{label} must be non-negative, got {v}"));
            }
        }
        if self.p_standby_w > self.p_idle_w {
            return Err("standby power exceeds idle power: sleeping would waste energy".into());
        }
        if self.p_idle_w > self.p_active_w {
            return Err("idle power exceeds active power".into());
        }
        Ok(())
    }

    /// The paper's Type 1 storage-node drive: 80 GB ATA/133 at 58 MB/s
    /// (Table I).
    pub fn ata133_type1() -> DiskSpec {
        DiskSpec {
            name: "ATA/133 80GB (Type 1 node, 58 MB/s)".into(),
            capacity_bytes: 80 * GB,
            bandwidth_bps: 58 * MB,
            avg_seek_s: 0.0085,
            avg_rotation_s: 0.00417, // 7200 rpm: half-revolution
            p_active_w: 13.0,
            p_idle_w: 9.3,
            p_standby_w: 2.5,
            p_spinup_w: 24.0,
            p_spindown_w: 9.3,
            t_spinup_s: 2.0,
            t_spindown_s: 1.5,
        }
    }

    /// The paper's Type 2 storage-node drive: 80 GB ATA/133 at 34 MB/s
    /// (Table I).
    pub fn ata133_type2() -> DiskSpec {
        DiskSpec {
            name: "ATA/133 80GB (Type 2 node, 34 MB/s)".into(),
            bandwidth_bps: 34 * MB,
            ..DiskSpec::ata133_type1()
        }
    }

    /// The paper's storage-server drive: 120 GB SATA at 100 MB/s (Table I).
    pub fn sata_server() -> DiskSpec {
        DiskSpec {
            name: "SATA 120GB (server, 100 MB/s)".into(),
            capacity_bytes: 120 * GB,
            bandwidth_bps: 100 * MB,
            avg_seek_s: 0.0085,
            avg_rotation_s: 0.00417,
            p_active_w: 12.5,
            p_idle_w: 8.5,
            p_standby_w: 2.0,
            p_spinup_w: 22.0,
            p_spindown_w: 8.5,
            t_spinup_s: 2.0,
            t_spindown_s: 1.5,
        }
    }

    /// Emulation of a multi-speed (DRPM-style) drive from the paper's
    /// related work (§II): instead of a full spin-down, the drive drops to
    /// a low-RPM mode — modelled here as a "standby" that draws more power
    /// than a true standby but transitions in a fraction of the time,
    /// giving a much smaller break-even. The paper notes such drives were
    /// not commercially available; EEVFS targets stock hardware instead.
    pub fn multispeed_emulated() -> DiskSpec {
        DiskSpec {
            name: "Multi-speed ATA (DRPM emulation)".into(),
            p_standby_w: 4.0, // low-RPM idle, not spun down
            p_spinup_w: 14.0,
            p_spindown_w: 9.3,
            t_spinup_s: 0.4,
            t_spindown_s: 0.3,
            ..DiskSpec::ata133_type1()
        }
    }

    /// An SSD buffer tier (eevfs-power): flash has no platters, so "seek"
    /// is controller latency, rotation is zero, and the standby/active
    /// power gap is small — the device costs almost nothing to keep ready
    /// and transitions in ~0.1 s, making it an always-warm landing spot
    /// for reads that would otherwise spin up a data disk.
    pub fn ssd_buffer() -> DiskSpec {
        DiskSpec {
            name: "SATA SSD 240GB (buffer tier, 500 MB/s)".into(),
            capacity_bytes: 240 * GB,
            bandwidth_bps: 500 * MB,
            avg_seek_s: 0.0001,
            avg_rotation_s: 0.0,
            p_active_w: 3.0,
            p_idle_w: 1.2,
            p_standby_w: 0.8,
            p_spinup_w: 1.2,
            p_spindown_w: 1.2,
            t_spinup_s: 0.1,
            t_spindown_s: 0.05,
        }
    }

    /// A modern nearline SATA drive, for the scale-out ablations beyond the
    /// paper's 2010 hardware.
    pub fn nearline_sata() -> DiskSpec {
        DiskSpec {
            name: "Nearline SATA 4TB (180 MB/s)".into(),
            capacity_bytes: 4_000 * GB,
            bandwidth_bps: 180 * MB,
            avg_seek_s: 0.008,
            avg_rotation_s: 0.00417,
            p_active_w: 11.5,
            p_idle_w: 7.0,
            p_standby_w: 1.0,
            p_spinup_w: 20.0,
            p_spindown_w: 7.0,
            t_spinup_s: 2.0,
            t_spindown_s: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for spec in [
            DiskSpec::ata133_type1(),
            DiskSpec::ata133_type2(),
            DiskSpec::sata_server(),
            DiskSpec::nearline_sata(),
            DiskSpec::multispeed_emulated(),
            DiskSpec::ssd_buffer(),
        ] {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn presets_match_table_one() {
        // Table I: bandwidths 100 / 58 / 34 MB/s, capacities 120 / 80 / 80 GB.
        assert_eq!(DiskSpec::sata_server().bandwidth_bps, 100 * MB);
        assert_eq!(DiskSpec::sata_server().capacity_bytes, 120 * GB);
        assert_eq!(DiskSpec::ata133_type1().bandwidth_bps, 58 * MB);
        assert_eq!(DiskSpec::ata133_type1().capacity_bytes, 80 * GB);
        assert_eq!(DiskSpec::ata133_type2().bandwidth_bps, 34 * MB);
        assert_eq!(DiskSpec::ata133_type2().capacity_bytes, 80 * GB);
    }

    #[test]
    fn spinup_takes_two_seconds_like_the_paper_measured() {
        // §VI-C: "spin up operations, which average around 2 sec".
        assert!((DiskSpec::ata133_type1().t_spinup_s - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn power_lookup_by_state() {
        let s = DiskSpec::ata133_type1();
        assert_eq!(s.power(PowerState::Active), s.p_active_w);
        assert_eq!(s.power(PowerState::Idle), s.p_idle_w);
        assert_eq!(s.power(PowerState::Standby), s.p_standby_w);
        assert_eq!(s.power(PowerState::SpinningUp), s.p_spinup_w);
        assert_eq!(s.power(PowerState::SpinningDown), s.p_spindown_w);
    }

    #[test]
    fn power_ordering_is_physical() {
        for spec in [DiskSpec::ata133_type1(), DiskSpec::sata_server()] {
            assert!(spec.p_standby_w < spec.p_idle_w);
            assert!(spec.p_idle_w < spec.p_active_w);
            assert!(
                spec.p_active_w < spec.p_spinup_w,
                "spin-up surge exceeds active"
            );
        }
    }

    #[test]
    fn validate_catches_nonsense() {
        let mut s = DiskSpec::ata133_type1();
        s.p_standby_w = 100.0;
        assert!(s.validate().is_err());

        let mut s = DiskSpec::ata133_type1();
        s.bandwidth_bps = 0;
        assert!(s.validate().is_err());

        let mut s = DiskSpec::ata133_type1();
        s.avg_seek_s = f64::NAN;
        assert!(s.validate().is_err());

        let mut s = DiskSpec::ata133_type1();
        s.capacity_bytes = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn multispeed_has_much_smaller_breakeven() {
        // The whole point of DRPM drives (§II): small break-even times.
        let standard = crate::breakeven::breakeven_time(&DiskSpec::ata133_type1());
        let multi = crate::breakeven::breakeven_time(&DiskSpec::multispeed_emulated());
        assert!(
            multi.as_secs_f64() < standard.as_secs_f64() / 3.0,
            "multi {multi} vs standard {standard}"
        );
    }

    #[test]
    fn ssd_buffer_is_cheap_to_keep_warm() {
        let ssd = DiskSpec::ssd_buffer();
        let hdd = DiskSpec::ata133_type1();
        // Idle draw a fraction of the HDD's, and a tiny breakeven: the
        // tier never needs the spin-down machinery to be energy-sane.
        assert!(ssd.p_idle_w < hdd.p_idle_w / 4.0);
        let be = crate::breakeven::breakeven_time(&ssd);
        assert!(be.as_secs_f64() < 1.0, "ssd breakeven {be}");
        assert!(ssd.bandwidth_bps > 5 * hdd.bandwidth_bps);
    }

    #[test]
    fn serde_roundtrip() {
        let s = DiskSpec::ata133_type2();
        let json = serde_json::to_string(&s).expect("serialize");
        let back: DiskSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(s, back);
    }
}
