//! # disk-model
//!
//! Disk power-state, performance, and energy model — the substrate the
//! EEVFS paper exercised on physical ATA/SATA drives (Table I of the
//! paper). We reproduce the drives in simulation:
//!
//! * [`state`] — the power-state machine (Active / Idle / Standby plus the
//!   timed SpinningUp / SpinningDown transitions whose ~2 s spin-up the
//!   paper measures as the dominant response-time penalty).
//! * [`spec`] — drive parameter sets, including presets for the paper's
//!   testbed: the 58 MB/s ATA/133 Type 1 drive, the 34 MB/s Type 2 drive,
//!   and the server's SATA drive.
//! * [`perf`] — service-time model (seek + rotational latency + transfer).
//! * [`energy`] — per-state joule integration and the transition ledger
//!   behind the paper's "number of power state transitions" metric (Fig 4).
//! * [`disk`] — [`disk::Disk`]: a FIFO-queued simulated drive combining all
//!   of the above, driven in event order by the cluster simulation.
//! * [`breakeven`] — the standby break-even time the paper's related-work
//!   discussion centres on.
//! * [`checksum`] — per-block CRC32 integrity primitives used by the
//!   durability layer (detection on read, opportunistic scrubbing).

#![warn(missing_docs)]

pub mod breakeven;
pub mod checksum;
pub mod disk;
pub mod energy;
pub mod perf;
pub mod spec;
pub mod state;

pub use breakeven::breakeven_time;
pub use checksum::{blocks_of, crc32, BLOCK_SIZE};
pub use disk::{CompletionInfo, Disk};
pub use energy::{EnergyMeter, TransitionCounts};
pub use perf::service_time;
pub use spec::DiskSpec;
pub use state::PowerState;
