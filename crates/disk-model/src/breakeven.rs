//! Standby break-even time.
//!
//! The paper's related-work section (§II) hinges on this quantity: "the
//! break-even times of disk drives are usually very high and prefetch data
//! accuracy and size become a critical factor". A drive should only be
//! spun down when the expected idle window exceeds the break-even time,
//! otherwise the sleep *costs* energy.

use crate::spec::DiskSpec;
use sim_core::SimDuration;

/// The idle-window length at which spinning down exactly pays for itself.
///
/// Over a window of length `T`, staying idle costs `p_idle * T`. Sleeping
/// costs the wind-down (`t_dn * p_dn`), the spin-up (`t_up * p_up`) and
/// standby power for the remainder. Setting the two equal and solving:
///
/// ```text
/// T* = (t_dn·p_dn + t_up·p_up − (t_dn+t_up)·p_standby) / (p_idle − p_standby)
/// ```
///
/// Returns `SimDuration::MAX` when `p_idle <= p_standby` (sleeping can
/// never pay off on such a drive).
pub fn breakeven_time(spec: &DiskSpec) -> SimDuration {
    let saving_rate = spec.p_idle_w - spec.p_standby_w;
    if saving_rate <= 0.0 {
        return SimDuration::MAX;
    }
    let overhead = spec.t_spindown_s * spec.p_spindown_w + spec.t_spinup_s * spec.p_spinup_w
        - (spec.t_spindown_s + spec.t_spinup_s) * spec.p_standby_w;
    SimDuration::from_secs_f64(overhead / saving_rate)
}

/// Net joules saved (positive) or wasted (negative) by sleeping through an
/// idle window of `window` seconds instead of idling, assuming the window
/// is long enough to complete both transitions (windows shorter than
/// `t_dn + t_up` are treated as pure overhead).
pub fn sleep_benefit_joules(spec: &DiskSpec, window: SimDuration) -> f64 {
    let w = window.as_secs_f64();
    let idle_cost = spec.p_idle_w * w;
    let t_trans = spec.t_spindown_s + spec.t_spinup_s;
    let sleep_cost = if w <= t_trans {
        // Not even time to complete the cycle: model as full transition
        // energy (the drive reverses mid-flight).
        spec.t_spindown_s * spec.p_spindown_w + spec.t_spinup_s * spec.p_spinup_w
    } else {
        spec.t_spindown_s * spec.p_spindown_w
            + spec.t_spinup_s * spec.p_spinup_w
            + (w - t_trans) * spec.p_standby_w
    };
    idle_cost - sleep_cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakeven_is_positive_and_paper_scale() {
        // For 2000s ATA drives the literature quotes break-evens of a few
        // to ~15 seconds; our constants land in that band.
        let t = breakeven_time(&DiskSpec::ata133_type1());
        let s = t.as_secs_f64();
        assert!(s > 2.0 && s < 15.0, "break-even {s} s out of band");
    }

    #[test]
    fn benefit_is_zero_at_breakeven() {
        let spec = DiskSpec::ata133_type1();
        let t = breakeven_time(&spec);
        let b = sleep_benefit_joules(&spec, t);
        // Tolerance accounts for SimDuration's microsecond rounding.
        assert!(
            b.abs() < 1e-4,
            "benefit at break-even should vanish, got {b}"
        );
    }

    #[test]
    fn benefit_signs_bracket_breakeven() {
        let spec = DiskSpec::ata133_type1();
        let t = breakeven_time(&spec).as_secs_f64();
        assert!(sleep_benefit_joules(&spec, SimDuration::from_secs_f64(t * 2.0)) > 0.0);
        assert!(sleep_benefit_joules(&spec, SimDuration::from_secs_f64(t * 0.5)) < 0.0);
    }

    #[test]
    fn benefit_monotone_in_window() {
        let spec = DiskSpec::ata133_type2();
        let mut prev = f64::NEG_INFINITY;
        for s in [1u64, 3, 5, 10, 30, 100, 1000] {
            let b = sleep_benefit_joules(&spec, SimDuration::from_secs(s));
            assert!(b >= prev, "benefit not monotone at {s}s");
            prev = b;
        }
    }

    #[test]
    fn drive_that_cannot_save_returns_max() {
        let mut spec = DiskSpec::ata133_type1();
        spec.p_standby_w = spec.p_idle_w;
        assert_eq!(breakeven_time(&spec), SimDuration::MAX);
    }

    #[test]
    fn zero_window_is_pure_overhead() {
        let spec = DiskSpec::ata133_type1();
        let b = sleep_benefit_joules(&spec, SimDuration::ZERO);
        let overhead = spec.t_spindown_s * spec.p_spindown_w + spec.t_spinup_s * spec.p_spinup_w;
        assert!((b + overhead).abs() < 1e-9);
    }
}
