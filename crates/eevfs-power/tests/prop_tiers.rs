//! Property-based tests over the cache-tier invariants (proptest).
//!
//! The two load-bearing properties: a tier never holds more bytes than
//! its capacity no matter the op stream, and `Lru` evicts in exact
//! recency order (checked against a brute-force recency-list model).
//! On top of those, the policy comparison the design leans on: on a
//! Zipf-skewed reuse stream, sampled-LFU's hit rate is at least LRU's.

use eevfs_power::{CacheTier, Lru, SampledLfu};
use proptest::prelude::*;
use sim_core::rng::Zipf;
use sim_core::SimRng;

/// One step of a tier workload: touch a file of some size, or drop it.
#[derive(Debug, Clone)]
enum Op {
    Touch { file: u32, bytes: u64 },
    Invalidate { file: u32 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..40, 1u64..2000).prop_map(|(file, bytes)| Op::Touch { file, bytes }),
            (0u32..40).prop_map(|file| Op::Invalidate { file }),
        ],
        1..200,
    )
}

/// Drives `tier` through the stream the way the driver does: lookup
/// first, admit on miss.
fn drive(tier: &mut dyn CacheTier, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Touch { file, bytes } => {
                if !tier.lookup(file) {
                    tier.admit(file, bytes);
                }
            }
            Op::Invalidate { file } => tier.invalidate(file),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Capacity is a hard ceiling for every policy and every op stream.
    #[test]
    fn tiers_never_exceed_capacity(ops in arb_ops(), cap in 1u64..10_000) {
        let mut lru = Lru::new(cap);
        let mut lfu = SampledLfu::new(cap, 5, 7);
        drive(&mut lru, &ops);
        drive(&mut lfu, &ops);
        prop_assert!(lru.used_bytes() <= cap, "lru {} > {cap}", lru.used_bytes());
        prop_assert!(lfu.used_bytes() <= cap, "lfu {} > {cap}", lfu.used_bytes());
    }

    /// LRU retention matches a brute-force recency model: with unit-size
    /// entries and capacity `k`, exactly the `k` most recently touched
    /// distinct files survive, and everything older is gone.
    #[test]
    fn lru_evicts_in_exact_recency_order(
        touches in proptest::collection::vec(0u32..30, 1..150),
        cap in 1u64..12,
    ) {
        let mut lru = Lru::new(cap);
        let mut recency: Vec<u32> = Vec::new(); // most recent last
        for &file in &touches {
            if !lru.lookup(file) {
                lru.admit(file, 1);
            }
            recency.retain(|&f| f != file);
            recency.push(file);
        }
        let survivors: Vec<u32> = recency
            .iter()
            .rev()
            .take(cap as usize)
            .copied()
            .collect();
        for &f in &recency {
            prop_assert_eq!(
                lru.contains(f),
                survivors.contains(&f),
                "file {} (cap {}, survivors {:?})",
                f,
                cap,
                survivors
            );
        }
        prop_assert_eq!(lru.used_bytes(), survivors.len() as u64);
    }

    /// On a Zipf-skewed reuse stream, frequency-aware eviction keeps the
    /// hot set pinned: sampled-LFU's hit rate is at least LRU's.
    #[test]
    fn sampled_lfu_beats_lru_on_zipf(seed in 0u64..16) {
        let mut rng = SimRng::seed_from_u64(seed);
        let zipf = Zipf::new(256, 1.2);
        let mut lru = Lru::new(32);
        let mut lfu = SampledLfu::new(32, 5, seed ^ 0xA5A5);
        for _ in 0..4000 {
            let file = zipf.sample(&mut rng) as u32;
            if !lru.lookup(file) {
                lru.admit(file, 1);
            }
            if !lfu.lookup(file) {
                lfu.admit(file, 1);
            }
        }
        let lru_rate = lru.hits() as f64 / (lru.hits() + lru.misses()) as f64;
        let lfu_rate = lfu.hits() as f64 / (lfu.hits() + lfu.misses()) as f64;
        prop_assert!(
            lfu_rate >= lru_rate,
            "seed {}: sampled-lfu {:.3} < lru {:.3}",
            seed,
            lfu_rate,
            lru_rate
        );
    }
}
