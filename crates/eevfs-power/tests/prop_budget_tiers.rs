//! Property tests over the SpinBudget × cache-tier interaction
//! (proptest), the coupling DESIGN.md §13's invariant plane polices at
//! run scope.
//!
//! The load-bearing property: the spin-cycle ledger and the tier hit
//! counters are *independent* ledgers. A tier hit that lands while a
//! disk's budget is denying spin-ups must not double-count the denial,
//! and a denied spin-up must not leak into the tier counters (or the
//! SSD energy meter, which the plane never fills itself). Checked
//! against brute-force reference models and by interleaving-invariance.

use eevfs_power::{EvictionPolicy, PolicyPlane, PowerPolicy, TierConfig};
use proptest::prelude::*;
use sim_core::SimDuration;

const NODES: usize = 2;
const DISKS: usize = 2;

/// One step of a coupled workload: attempt a spin-down on a disk, touch
/// a file through the tiers, or invalidate one. `SleepThenTouch` is the
/// adversarial composite — a tier hit in the same step as a (possibly
/// denied) spin-up attempt.
#[derive(Debug, Clone)]
enum Op {
    Sleep { node: u8, disk: u8 },
    Touch { node: u8, file: u32, bytes: u64 },
    Invalidate { node: u8, file: u32 },
    SleepThenTouch { node: u8, disk: u8, file: u32 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..NODES as u8, 0u8..DISKS as u8).prop_map(|(node, disk)| Op::Sleep { node, disk }),
            (0u8..NODES as u8, 0u32..24, 1u64..4000).prop_map(|(node, file, bytes)| Op::Touch {
                node,
                file,
                bytes
            }),
            (0u8..NODES as u8, 0u32..24).prop_map(|(node, file)| Op::Invalidate { node, file }),
            (0u8..NODES as u8, 0u8..DISKS as u8, 0u32..24)
                .prop_map(|(node, disk, file)| Op::SleepThenTouch { node, disk, file }),
        ],
        1..160,
    )
}

fn plane(cap: u32, seed: u64) -> PolicyPlane {
    let policy = PowerPolicy::ewma()
        .with_tier(TierConfig {
            dram_bytes: 16 * 1024,
            ssd_bytes: 64 * 1024,
            policy: EvictionPolicy::Lru,
        })
        .with_spin_cap(cap)
        .with_seed(seed);
    let breakeven = vec![vec![SimDuration::from_secs(10); DISKS]; NODES];
    PolicyPlane::new(policy, &breakeven)
}

/// Brute-force reference ledgers kept alongside the plane.
#[derive(Default)]
struct Model {
    attempts: [[u64; DISKS]; NODES],
    dram_hits: u64,
    dram_misses: u64,
    ssd_hits: u64,
    ssd_misses: u64,
}

impl Model {
    /// Expected denials for a per-disk cap: everything past the cap.
    fn denied(&self, cap: u32) -> u64 {
        self.attempts
            .iter()
            .flatten()
            .map(|&a| a.saturating_sub(u64::from(cap)))
            .sum()
    }
}

/// Drives the plane the way the simulation driver does (tier lookup
/// first, admit on a full miss) while the model counts what the plane's
/// own return values said happened.
fn drive(plane: &mut PolicyPlane, model: &mut Model, cap: u32, ops: &[Op]) {
    let touch = |plane: &mut PolicyPlane, model: &mut Model, node: usize, file, bytes| {
        if plane.dram_lookup(node, file) {
            model.dram_hits += 1;
        } else {
            model.dram_misses += 1;
            if plane.ssd_lookup(node, file) {
                model.ssd_hits += 1;
            } else {
                model.ssd_misses += 1;
                plane.admit(node, file, bytes, true);
            }
        }
    };
    for op in ops {
        match *op {
            Op::Sleep { node, disk } => {
                let (n, d) = (node as usize, disk as usize);
                let granted = plane.try_charge_spin(n, d);
                model.attempts[n][d] += 1;
                // The plane's verdict must match the cap arithmetic.
                assert_eq!(granted, model.attempts[n][d] <= u64::from(cap));
            }
            Op::Touch { node, file, bytes } => touch(plane, model, node as usize, file, bytes),
            Op::Invalidate { node, file } => plane.invalidate(node as usize, file),
            Op::SleepThenTouch { node, disk, file } => {
                let (n, d) = (node as usize, disk as usize);
                plane.try_charge_spin(n, d);
                model.attempts[n][d] += 1;
                touch(plane, model, n, file, 512);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The denial ledger and the tier counters agree with independent
    /// reference models no matter how sleeps and touches interleave —
    /// one denial per over-cap attempt, one hit per hitting lookup,
    /// never more. The SSD energy meter stays untouched at plane scope.
    #[test]
    fn ledgers_never_cross_count(ops in arb_ops(), cap in 0u32..6, seed in 0u64..1024) {
        let mut plane = plane(cap, seed);
        let mut model = Model::default();
        drive(&mut plane, &mut model, cap, &ops);
        let stats = plane.stats();
        prop_assert_eq!(stats.sleeps_denied, model.denied(cap));
        prop_assert_eq!(stats.dram_hits, model.dram_hits);
        prop_assert_eq!(stats.dram_misses, model.dram_misses);
        prop_assert_eq!(stats.ssd_hits, model.ssd_hits);
        prop_assert_eq!(stats.ssd_misses, model.ssd_misses);
        prop_assert_eq!(stats.ssd_energy_j, 0.0);
    }

    /// Interleaving invariance, the no-double-count property stated
    /// directly: stripping every tier op from a stream leaves the spin
    /// ledger identical, and stripping every sleep op leaves the tier
    /// counters identical.
    #[test]
    fn stripped_streams_leave_the_other_ledger_fixed(
        ops in arb_ops(),
        cap in 0u32..6,
        seed in 0u64..1024,
    ) {
        let full = {
            let mut p = plane(cap, seed);
            let mut m = Model::default();
            drive(&mut p, &mut m, cap, &ops);
            p.stats()
        };

        // Sleeps only: composite ops keep their sleep half.
        let sleeps: Vec<Op> = ops
            .iter()
            .filter_map(|op| match *op {
                Op::Sleep { node, disk } | Op::SleepThenTouch { node, disk, .. } => {
                    Some(Op::Sleep { node, disk })
                }
                _ => None,
            })
            .collect();
        let sleeps_only = {
            let mut p = plane(cap, seed);
            let mut m = Model::default();
            drive(&mut p, &mut m, cap, &sleeps);
            p.stats()
        };
        prop_assert_eq!(full.sleeps_denied, sleeps_only.sleeps_denied);

        // Touches only: composite ops keep their touch half.
        let touches: Vec<Op> = ops
            .iter()
            .filter_map(|op| match *op {
                Op::Touch { node, file, bytes } => Some(Op::Touch { node, file, bytes }),
                Op::Invalidate { node, file } => Some(Op::Invalidate { node, file }),
                Op::SleepThenTouch { node, file, .. } => Some(Op::Touch {
                    node,
                    file,
                    bytes: 512,
                }),
                Op::Sleep { .. } => None,
            })
            .collect();
        let touches_only = {
            let mut p = plane(cap, seed);
            let mut m = Model::default();
            drive(&mut p, &mut m, cap, &touches);
            p.stats()
        };
        prop_assert_eq!(full.dram_hits, touches_only.dram_hits);
        prop_assert_eq!(full.dram_misses, touches_only.dram_misses);
        prop_assert_eq!(full.ssd_hits, touches_only.ssd_hits);
        prop_assert_eq!(full.ssd_misses, touches_only.ssd_misses);
    }
}
