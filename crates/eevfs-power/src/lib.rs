//! # eevfs-power — the adaptive power/caching policy plane
//!
//! The paper's energy win comes from a *static* spin-down threshold and a
//! single buffer disk. This crate owns the upgrade the paper could not
//! evaluate (ROADMAP item 5): online-adaptive idle-window predictors and a
//! tiered buffer cache, both behind traits so the DES driver stays policy
//! agnostic.
//!
//! * [`IdlePredictor`] — when should an idle data disk spin down?
//!   Implementations: the paper's [`FixedThreshold`], an
//!   [`EwmaIdleWindow`] estimator that learns per-disk idle-gap lengths
//!   online, and an epsilon-greedy [`BanditThreshold`] that picks among
//!   candidate thresholds using the `PredictionTracker` payoff signal from
//!   `eevfs-obs`. All are seeded and deterministic.
//! * [`CacheTier`] — a capacity-bounded file cache with pluggable
//!   admission/eviction: recency-based [`Lru`] and the frequency-aware
//!   [`SampledLfu`]. The driver stacks a small DRAM tier above an SSD
//!   buffer tier (modelled by `DiskSpec::ssd_buffer`) above the paper's
//!   buffer disk.
//! * [`SpinBudget`] — per-disk spin-cycle budgets honouring an MTTF-style
//!   start/stop-cycle cap: once a disk exhausts its budget the plane
//!   refuses further sleeps rather than wear the drive out.
//! * [`PolicyPlane`] — the per-run assembly of all of the above, built
//!   from a [`PowerPolicy`] config; the `eevfs` driver consults it on the
//!   read path (tier lookups) and at every idle/wake edge (predictor
//!   decisions, budget charging, payoff feedback).
//!
//! A run that carries a `PolicyPlane` remains a pure function of its
//! inputs: every random choice (bandit exploration, LFU sampling) draws
//! from `SimRng` streams seeded from the policy seed and the disk/node
//! coordinates, so same-seed replays are bit-identical at any parallelism.

#![warn(missing_docs)]

pub mod budget;
pub mod policy;
pub mod predictor;
pub mod tier;

pub use budget::{mttf_cycle_cap, SpinBudget};
pub use policy::{PolicyPlane, PowerPolicy, TierStats};
pub use predictor::{
    BanditThreshold, EwmaIdleWindow, FixedThreshold, IdlePredictor, IdleVerdict, PredictorConfig,
};
pub use tier::{dram_service_time, CacheTier, EvictionPolicy, Lru, SampledLfu, TierConfig};
