//! Capacity-bounded cache tiers above the buffer disk.
//!
//! Tiers cache whole files by id (the simulator's unit of access, as in
//! the buffer-disk catalog). Two eviction policies ship: recency-based
//! [`Lru`] and the frequency-aware [`SampledLfu`], which approximates
//! perfect LFU by evicting the least-frequently-used entry of a small
//! deterministic sample — the TinyLFU-style trick that keeps metadata
//! O(resident set) while resisting scan pollution.
//!
//! All state lives in `BTreeMap`s keyed by file id and a logical tick
//! counter, so iteration order — and therefore eviction order — is
//! deterministic across runs and platforms.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng};

/// A capacity-bounded file cache with pluggable admission/eviction.
///
/// The driver consults the tier on every read (`lookup`), fills it on
/// misses that reached a lower tier (`admit`), and drops entries that a
/// write made stale (`invalidate`). Implementations count their own hits,
/// misses, and evictions.
pub trait CacheTier: std::fmt::Debug {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;
    /// Looks up `file`, counting a hit or miss and refreshing the entry's
    /// recency/frequency bookkeeping on a hit.
    fn lookup(&mut self, file: u32) -> bool;
    /// Inserts `file` at `bytes`, evicting until it fits. Files larger
    /// than the whole tier are refused (no-op). Re-admitting a resident
    /// file refreshes it.
    fn admit(&mut self, file: u32, bytes: u64);
    /// Drops `file` if resident (not counted as an eviction).
    fn invalidate(&mut self, file: u32);
    /// Whether `file` is resident (no bookkeeping side effects).
    fn contains(&self, file: u32) -> bool;
    /// Bytes currently resident.
    fn used_bytes(&self) -> u64;
    /// Tier capacity in bytes.
    fn capacity_bytes(&self) -> u64;
    /// Lookups that hit.
    fn hits(&self) -> u64;
    /// Lookups that missed.
    fn misses(&self) -> u64;
    /// Entries evicted to make room (invalidations excluded).
    fn evictions(&self) -> u64;
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    bytes: u64,
    /// Logical timestamp of the last touch (admit or hit).
    touched: u64,
}

/// Least-recently-used eviction over a deterministic recency order.
#[derive(Debug, Clone)]
pub struct Lru {
    capacity: u64,
    used: u64,
    tick: u64,
    entries: BTreeMap<u32, Entry>,
    /// Recency index: (touch tick, file) → file. Ticks are unique, so the
    /// first key is always the coldest entry.
    order: BTreeMap<(u64, u32), u32>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Lru {
    /// An empty LRU tier with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Lru {
            capacity,
            used: 0,
            tick: 0,
            entries: BTreeMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, file: u32) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&file) {
            self.order.remove(&(e.touched, file));
            e.touched = tick;
            self.order.insert((tick, file), file);
        }
    }

    fn evict_coldest(&mut self) {
        if let Some((&key, &file)) = self.order.iter().next() {
            self.order.remove(&key);
            if let Some(e) = self.entries.remove(&file) {
                self.used -= e.bytes;
            }
            self.evictions += 1;
        }
    }
}

impl CacheTier for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn lookup(&mut self, file: u32) -> bool {
        if self.entries.contains_key(&file) {
            self.hits += 1;
            self.touch(file);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn admit(&mut self, file: u32, bytes: u64) {
        if bytes > self.capacity {
            return;
        }
        if self.entries.contains_key(&file) {
            self.touch(file);
            return;
        }
        while self.used + bytes > self.capacity {
            self.evict_coldest();
        }
        self.tick += 1;
        self.entries.insert(
            file,
            Entry {
                bytes,
                touched: self.tick,
            },
        );
        self.order.insert((self.tick, file), file);
        self.used += bytes;
    }

    fn invalidate(&mut self, file: u32) {
        if let Some(e) = self.entries.remove(&file) {
            self.order.remove(&(e.touched, file));
            self.used -= e.bytes;
        }
    }

    fn contains(&self, file: u32) -> bool {
        self.entries.contains_key(&file)
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn hits(&self) -> u64 {
        self.hits
    }

    fn misses(&self) -> u64 {
        self.misses
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Sampled least-frequently-used eviction with periodic aging.
///
/// Each victim search draws a deterministic sample of resident entries
/// and evicts the one with the lowest (frequency, last touch) — hot
/// entries survive scans that would flush an LRU. Frequency counters
/// halve every `AGE_PERIOD` touches so the tier adapts when popularity
/// shifts.
#[derive(Debug, Clone)]
pub struct SampledLfu {
    capacity: u64,
    used: u64,
    tick: u64,
    sample: usize,
    rng: SimRng,
    entries: BTreeMap<u32, Entry>,
    /// Access-frequency estimate per resident file.
    freq: BTreeMap<u32, u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Touches between frequency-halving passes.
const AGE_PERIOD: u64 = 4096;

impl SampledLfu {
    /// An empty sampled-LFU tier with the given byte capacity, victim
    /// sample size, and RNG seed.
    pub fn new(capacity: u64, sample: usize, seed: u64) -> Self {
        SampledLfu {
            capacity,
            used: 0,
            tick: 0,
            sample: sample.max(1),
            rng: SimRng::seed_from_u64(seed),
            entries: BTreeMap::new(),
            freq: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn bump(&mut self, file: u32) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&file) {
            e.touched = tick;
        }
        *self.freq.entry(file).or_insert(0) += 1;
        if self.tick.is_multiple_of(AGE_PERIOD) {
            for f in self.freq.values_mut() {
                *f /= 2;
            }
        }
    }

    fn evict_victim(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        let files: Vec<u32> = self.entries.keys().copied().collect();
        let n = files.len().min(self.sample);
        // Deterministic sample: n independent index draws (duplicates
        // only shrink the effective sample, never bias the victim).
        let mut victim: Option<(u64, u64, u32)> = None;
        for _ in 0..n {
            let file = files[self.rng.index(files.len())];
            let f = self.freq.get(&file).copied().unwrap_or(0);
            let touched = self.entries[&file].touched;
            let key = (f, touched, file);
            if victim.is_none() || key < victim.unwrap() {
                victim = Some(key);
            }
        }
        if let Some((_, _, file)) = victim {
            if let Some(e) = self.entries.remove(&file) {
                self.used -= e.bytes;
            }
            self.freq.remove(&file);
            self.evictions += 1;
        }
    }
}

impl CacheTier for SampledLfu {
    fn name(&self) -> &'static str {
        "slfu"
    }

    fn lookup(&mut self, file: u32) -> bool {
        if self.entries.contains_key(&file) {
            self.hits += 1;
            self.bump(file);
            true
        } else {
            self.misses += 1;
            // Track frequency of misses too: a file seen often but not
            // yet resident deserves to win admission over cold residents.
            self.bump(file);
            false
        }
    }

    fn admit(&mut self, file: u32, bytes: u64) {
        if bytes > self.capacity {
            return;
        }
        if self.entries.contains_key(&file) {
            self.bump(file);
            return;
        }
        while self.used + bytes > self.capacity {
            self.evict_victim();
        }
        self.tick += 1;
        self.entries.insert(
            file,
            Entry {
                bytes,
                touched: self.tick,
            },
        );
        self.used += bytes;
    }

    fn invalidate(&mut self, file: u32) {
        if let Some(e) = self.entries.remove(&file) {
            self.used -= e.bytes;
        }
        self.freq.remove(&file);
    }

    fn contains(&self, file: u32) -> bool {
        self.entries.contains_key(&file)
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn hits(&self) -> u64 {
        self.hits
    }

    fn misses(&self) -> u64 {
        self.misses
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Serializable eviction-policy choice for a tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Least-recently-used.
    Lru,
    /// Sampled least-frequently-used with the given victim sample size.
    SampledLfu {
        /// Resident entries examined per victim search.
        sample: usize,
    },
}

impl EvictionPolicy {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::SampledLfu { .. } => "slfu",
        }
    }

    /// Builds a tier with this policy at the given capacity; `seed` feeds
    /// the LFU sampler (LRU ignores it).
    pub fn build(&self, capacity: u64, seed: u64) -> Box<dyn CacheTier> {
        match *self {
            EvictionPolicy::Lru => Box::new(Lru::new(capacity)),
            EvictionPolicy::SampledLfu { sample } => {
                Box::new(SampledLfu::new(capacity, sample, seed))
            }
        }
    }
}

/// Tier sizing and eviction configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierConfig {
    /// Per-node DRAM cache capacity in bytes (0 disables the tier).
    pub dram_bytes: u64,
    /// Per-node SSD buffer capacity in bytes (0 disables the tier).
    pub ssd_bytes: u64,
    /// Eviction policy shared by both tiers.
    pub policy: EvictionPolicy,
}

impl TierConfig {
    /// No cache tiers: the paper's baseline buffer-disk-only data path.
    pub fn none() -> Self {
        TierConfig {
            dram_bytes: 0,
            ssd_bytes: 0,
            policy: EvictionPolicy::Lru,
        }
    }

    /// Short label for reports, e.g. `dram64m+ssd4g/lru`.
    pub fn label(&self) -> String {
        fn size(b: u64) -> String {
            if b == 0 {
                return "0".into();
            }
            if b.is_multiple_of(1 << 30) {
                return format!("{}g", b >> 30);
            }
            if b.is_multiple_of(1 << 20) {
                return format!("{}m", b >> 20);
            }
            format!("{b}b")
        }
        if self.dram_bytes == 0 && self.ssd_bytes == 0 {
            return "none".into();
        }
        let mut parts = Vec::new();
        if self.dram_bytes > 0 {
            parts.push(format!("dram{}", size(self.dram_bytes)));
        }
        if self.ssd_bytes > 0 {
            parts.push(format!("ssd{}", size(self.ssd_bytes)));
        }
        format!("{}/{}", parts.join("+"), self.policy.label())
    }
}

/// Service time for a DRAM-tier hit: a fixed lookup overhead plus copy
/// time at memory bandwidth (~3.2 GB/s), rounded up to a microsecond.
pub fn dram_service_time(bytes: u64) -> SimDuration {
    const LOOKUP_US: u64 = 100;
    const BYTES_PER_US: u64 = 3200;
    SimDuration::from_micros(LOOKUP_US + bytes.div_ceil(BYTES_PER_US))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_in_recency_order() {
        let mut lru = Lru::new(300);
        lru.admit(1, 100);
        lru.admit(2, 100);
        lru.admit(3, 100);
        assert!(lru.lookup(1)); // 1 is now hottest; 2 coldest
        lru.admit(4, 100);
        assert!(!lru.contains(2), "coldest entry should go first");
        assert!(lru.contains(1) && lru.contains(3) && lru.contains(4));
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.used_bytes(), 300);
    }

    #[test]
    fn lru_refuses_oversized_and_respects_capacity() {
        let mut lru = Lru::new(100);
        lru.admit(1, 500);
        assert!(!lru.contains(1));
        lru.admit(2, 60);
        lru.admit(3, 60);
        assert!(lru.used_bytes() <= 100);
    }

    #[test]
    fn lru_invalidate_is_not_an_eviction() {
        let mut lru = Lru::new(100);
        lru.admit(1, 50);
        lru.invalidate(1);
        assert!(!lru.contains(1));
        assert_eq!(lru.evictions(), 0);
        assert_eq!(lru.used_bytes(), 0);
    }

    #[test]
    fn slfu_protects_hot_entries_from_scans() {
        let mut lfu = SampledLfu::new(300, 8, 1);
        lfu.admit(1, 100);
        for _ in 0..50 {
            lfu.lookup(1);
        }
        // A cold scan through one-shot files must not displace file 1.
        for f in 100..140 {
            lfu.admit(f, 100);
        }
        assert!(lfu.contains(1), "hot entry evicted by scan");
        assert!(lfu.used_bytes() <= 300);
    }

    #[test]
    fn slfu_same_seed_same_contents() {
        let run = |seed: u64| {
            let mut t = SampledLfu::new(500, 4, seed);
            let mut rng = SimRng::seed_from_u64(99);
            for _ in 0..2000 {
                let f = rng.index(64) as u32;
                if !t.lookup(f) {
                    t.admit(f, 100);
                }
            }
            let resident: Vec<u32> = (0..64).filter(|f| t.contains(*f)).collect();
            (resident, t.hits(), t.evictions())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0.len(), 0);
    }

    #[test]
    fn dram_service_time_scales_with_bytes() {
        assert_eq!(dram_service_time(0), SimDuration::from_micros(100));
        assert!(dram_service_time(1 << 20) > dram_service_time(1 << 10));
    }

    #[test]
    fn tier_config_labels() {
        assert_eq!(TierConfig::none().label(), "none");
        let c = TierConfig {
            dram_bytes: 64 << 20,
            ssd_bytes: 4 << 30,
            policy: EvictionPolicy::SampledLfu { sample: 8 },
        };
        assert_eq!(c.label(), "dram64m+ssd4g/slfu");
        let json = serde_json::to_string(&c).expect("serialize");
        let back: TierConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }
}
