//! Idle-window predictors: when should an idle data disk spin down?
//!
//! The driver asks the predictor once per idle onset ([`IdlePredictor::
//! on_idle`]) and maps the verdict onto its sleep-check machinery: sleep
//! immediately, re-check after a timer, or stay up until the next access.
//! Two feedback channels keep adaptive predictors honest:
//!
//! * [`IdlePredictor::on_access`] reports every realised idle gap (busy
//!   end → next arrival) on the disk, whether or not the disk slept — the
//!   estimator's training signal.
//! * [`IdlePredictor::observe`] reports the closed [`PredictionSample`]
//!   for every sleep actually taken — the payoff signal the PR-3
//!   prediction ledger already computes (did the realised window meet the
//!   drive's breakeven time?).

use eevfs_obs::PredictionSample;
use serde::{Deserialize, Serialize};
use sim_core::SimRng;
use sim_core::{SimDuration, SimTime};

/// What the predictor wants done with a disk that just went idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleVerdict {
    /// Spin down immediately.
    SleepNow,
    /// Re-check after this much further idleness; sleep if still idle.
    After(SimDuration),
    /// Stay up until the next access (re-evaluated at the next idle
    /// onset).
    Stay,
}

/// An online policy deciding when an idle disk should spin down.
///
/// Implementations must be deterministic: any randomness flows from a
/// seeded `SimRng` owned by the predictor, so same-seed replays make the
/// same decisions.
pub trait IdlePredictor: std::fmt::Debug {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Called once when the disk goes idle at `now`.
    fn on_idle(&mut self, now: SimTime) -> IdleVerdict;

    /// Reports a realised idle gap on the disk (previous busy end to this
    /// access), slept through or not. Zero-length gaps (arrivals during a
    /// busy period) are not idle windows and are not reported.
    fn on_access(&mut self, idle_gap: SimDuration) {
        let _ = idle_gap;
    }

    /// Reports the closed prediction-ledger sample for a sleep this
    /// predictor's verdict caused.
    fn observe(&mut self, sample: &PredictionSample) {
        let _ = sample;
    }

    /// The predictor's current idle-window estimate, if it keeps one;
    /// recorded into the prediction ledger at sleep time.
    fn predicted_idle(&self) -> Option<SimDuration> {
        None
    }

    /// Whether an [`IdleVerdict::After`] timer that expired with the disk
    /// still idle should put it down. True for every bundled policy — the
    /// timer *was* the decision — but overridable for vetoing designs.
    fn timer_allows_sleep(&self) -> bool {
        true
    }
}

/// The paper's policy: wait out a fixed idle threshold, then sleep
/// (Table II fixes 5 s). No learning, no prediction.
#[derive(Debug, Clone)]
pub struct FixedThreshold {
    threshold: SimDuration,
}

impl FixedThreshold {
    /// A fixed-threshold predictor with the given idle threshold.
    pub fn new(threshold: SimDuration) -> Self {
        FixedThreshold { threshold }
    }
}

impl IdlePredictor for FixedThreshold {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn on_idle(&mut self, _now: SimTime) -> IdleVerdict {
        IdleVerdict::After(self.threshold)
    }
}

/// Exponentially-weighted moving average of the disk's realised idle
/// gaps, compared against the drive's breakeven time.
///
/// * Estimate clears `margin × breakeven` → sleep immediately: the 5 s
///   the fixed policy would idle away are saved on every window.
/// * Estimate below breakeven → stay up: the sleep would not pay off,
///   and the next access skips the 2 s spin-up penalty the fixed policy
///   would have inflicted.
/// * In between (expected to pay off, but not confidently) → wait out one
///   breakeven time first, the classic 2-competitive hedge.
#[derive(Debug, Clone)]
pub struct EwmaIdleWindow {
    alpha: f64,
    margin: f64,
    breakeven: SimDuration,
    /// Current idle-gap estimate, microseconds. `None` until the first
    /// observed gap.
    est_us: Option<f64>,
}

impl EwmaIdleWindow {
    /// An EWMA estimator with smoothing factor `alpha` in `(0, 1]` and a
    /// sleep-now confidence `margin ≥ 1` over the drive's breakeven time.
    pub fn new(alpha: f64, margin: f64, breakeven: SimDuration) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "bad EWMA alpha {alpha}");
        assert!(margin >= 1.0 && margin.is_finite(), "bad margin {margin}");
        EwmaIdleWindow {
            alpha,
            margin,
            breakeven,
            est_us: None,
        }
    }

    /// The current estimate, microseconds.
    pub fn estimate_us(&self) -> Option<f64> {
        self.est_us
    }
}

impl IdlePredictor for EwmaIdleWindow {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn on_idle(&mut self, _now: SimTime) -> IdleVerdict {
        let be = self.breakeven.as_micros() as f64;
        match self.est_us {
            // No data yet: hedge with one breakeven of patience.
            None => IdleVerdict::After(self.breakeven),
            Some(e) if e >= self.margin * be => IdleVerdict::SleepNow,
            Some(e) if e >= be => IdleVerdict::After(self.breakeven),
            Some(_) => IdleVerdict::Stay,
        }
    }

    fn on_access(&mut self, idle_gap: SimDuration) {
        let gap = idle_gap.as_micros() as f64;
        self.est_us = Some(match self.est_us {
            None => gap,
            Some(e) => self.alpha * gap + (1.0 - self.alpha) * e,
        });
    }

    fn observe(&mut self, sample: &PredictionSample) {
        // A slept-through window is also a realised idle gap; keep the
        // estimator fresh even when every window ends in a sleep.
        self.on_access(SimDuration::from_micros(sample.realized_us));
    }

    fn predicted_idle(&self) -> Option<SimDuration> {
        self.est_us.map(|e| SimDuration::from_micros(e as u64))
    }
}

/// Epsilon-greedy bandit over candidate idle thresholds.
///
/// Each idle onset pulls an arm (a threshold; zero = sleep immediately).
/// When the sleep it armed closes, the PR-3 prediction ledger's payoff
/// signal rewards the arm (+1 paid off, −1 did not), steering future
/// pulls toward the threshold that best fits the workload. Exploration is
/// seeded and deterministic.
#[derive(Debug, Clone)]
pub struct BanditThreshold {
    arms: Vec<SimDuration>,
    epsilon: f64,
    rng: SimRng,
    /// Running mean reward per arm.
    value: Vec<f64>,
    pulls: Vec<u64>,
    last_arm: usize,
}

impl BanditThreshold {
    /// A bandit over `arms` (at least one; a zero arm means sleep
    /// immediately) exploring with probability `epsilon`, seeded.
    pub fn new(arms: Vec<SimDuration>, epsilon: f64, seed: u64) -> Self {
        assert!(!arms.is_empty(), "bandit needs at least one arm");
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "bad bandit epsilon {epsilon}"
        );
        let n = arms.len();
        BanditThreshold {
            arms,
            epsilon,
            rng: SimRng::seed_from_u64(seed),
            value: vec![0.0; n],
            pulls: vec![0; n],
            last_arm: 0,
        }
    }

    /// The default candidate set for a drive with the given breakeven
    /// time: sleep now, one/two breakevens of patience, and the paper's
    /// 5 s threshold.
    pub fn default_arms(breakeven: SimDuration) -> Vec<SimDuration> {
        vec![
            SimDuration::ZERO,
            breakeven,
            SimDuration::from_micros(breakeven.as_micros().saturating_mul(2)),
            SimDuration::from_secs(5),
        ]
    }

    /// Mean observed reward per arm (reporting/tests).
    pub fn arm_values(&self) -> &[f64] {
        &self.value
    }

    fn pick(&mut self) -> usize {
        if self.rng.uniform() < self.epsilon {
            return self.rng.index(self.arms.len());
        }
        // Greedy, ties to the lowest index (deterministic).
        let mut best = 0;
        for i in 1..self.arms.len() {
            if self.value[i] > self.value[best] {
                best = i;
            }
        }
        best
    }
}

impl IdlePredictor for BanditThreshold {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn on_idle(&mut self, _now: SimTime) -> IdleVerdict {
        let arm = self.pick();
        self.last_arm = arm;
        let t = self.arms[arm];
        if t == SimDuration::ZERO {
            IdleVerdict::SleepNow
        } else {
            IdleVerdict::After(t)
        }
    }

    fn observe(&mut self, sample: &PredictionSample) {
        let reward = if sample.paid_off() { 1.0 } else { -1.0 };
        let arm = self.last_arm;
        self.pulls[arm] += 1;
        self.value[arm] += (reward - self.value[arm]) / self.pulls[arm] as f64;
    }
}

/// Serializable predictor choice; built per disk by the policy plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PredictorConfig {
    /// The paper's fixed idle threshold.
    FixedThreshold {
        /// Idle time to wait out before sleeping, seconds.
        threshold_s: f64,
    },
    /// Online EWMA idle-window estimation.
    EwmaIdleWindow {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
        /// Sleep-now confidence margin over breakeven, `≥ 1`.
        margin: f64,
    },
    /// Epsilon-greedy threshold selection rewarded by sleep payoff.
    BanditThreshold {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
    },
}

impl PredictorConfig {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PredictorConfig::FixedThreshold { .. } => "fixed",
            PredictorConfig::EwmaIdleWindow { .. } => "ewma",
            PredictorConfig::BanditThreshold { .. } => "bandit",
        }
    }

    /// Builds the per-disk predictor instance. `seed` already mixes the
    /// policy seed with the disk coordinates; `breakeven` is the drive's
    /// breakeven time.
    pub fn build(&self, breakeven: SimDuration, seed: u64) -> Box<dyn IdlePredictor> {
        match *self {
            PredictorConfig::FixedThreshold { threshold_s } => {
                Box::new(FixedThreshold::new(SimDuration::from_secs_f64(threshold_s)))
            }
            PredictorConfig::EwmaIdleWindow { alpha, margin } => {
                Box::new(EwmaIdleWindow::new(alpha, margin, breakeven))
            }
            PredictorConfig::BanditThreshold { epsilon } => Box::new(BanditThreshold::new(
                BanditThreshold::default_arms(breakeven),
                epsilon,
                seed,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn sample(realized: SimDuration, breakeven: SimDuration) -> PredictionSample {
        PredictionSample {
            node: 0,
            disk: 0,
            predicted_us: None,
            realized_us: realized.as_micros(),
            breakeven_us: breakeven.as_micros(),
        }
    }

    #[test]
    fn fixed_always_arms_the_threshold_timer() {
        let mut p = FixedThreshold::new(secs(5));
        assert_eq!(
            p.on_idle(SimTime::from_secs(3)),
            IdleVerdict::After(secs(5))
        );
        p.on_access(secs(100)); // learning signal ignored
        assert_eq!(
            p.on_idle(SimTime::from_secs(9)),
            IdleVerdict::After(secs(5))
        );
        assert_eq!(p.predicted_idle(), None);
        assert!(p.timer_allows_sleep());
    }

    #[test]
    fn ewma_sleeps_fast_when_gaps_are_long() {
        let be = secs(13);
        let mut p = EwmaIdleWindow::new(0.5, 1.5, be);
        // Cold start: one breakeven of patience.
        assert_eq!(p.on_idle(SimTime::ZERO), IdleVerdict::After(be));
        for _ in 0..4 {
            p.on_access(secs(60));
        }
        assert_eq!(p.on_idle(SimTime::ZERO), IdleVerdict::SleepNow);
        assert!(p.predicted_idle().unwrap() >= secs(59));
    }

    #[test]
    fn ewma_stays_up_when_gaps_are_short() {
        let be = secs(13);
        let mut p = EwmaIdleWindow::new(0.5, 1.5, be);
        for _ in 0..6 {
            p.on_access(secs(3));
        }
        assert_eq!(p.on_idle(SimTime::ZERO), IdleVerdict::Stay);
    }

    #[test]
    fn ewma_hedges_in_the_uncertain_middle() {
        let be = secs(10);
        let mut p = EwmaIdleWindow::new(1.0, 2.0, be);
        p.on_access(secs(12)); // >= breakeven, < 2x margin
        assert_eq!(p.on_idle(SimTime::ZERO), IdleVerdict::After(be));
    }

    #[test]
    fn ewma_tracks_shifting_workloads() {
        let mut p = EwmaIdleWindow::new(0.5, 1.5, secs(10));
        for _ in 0..8 {
            p.on_access(secs(100));
        }
        assert_eq!(p.on_idle(SimTime::ZERO), IdleVerdict::SleepNow);
        for _ in 0..8 {
            p.on_access(secs(1));
        }
        assert_eq!(p.on_idle(SimTime::ZERO), IdleVerdict::Stay);
    }

    #[test]
    fn ewma_learns_from_sleep_samples_too() {
        let be = secs(10);
        let mut p = EwmaIdleWindow::new(1.0, 1.5, be);
        p.observe(&sample(secs(60), be));
        assert_eq!(p.on_idle(SimTime::ZERO), IdleVerdict::SleepNow);
    }

    #[test]
    fn bandit_is_deterministic_per_seed() {
        let arms = BanditThreshold::default_arms(secs(13));
        let mut a = BanditThreshold::new(arms.clone(), 0.2, 42);
        let mut b = BanditThreshold::new(arms, 0.2, 42);
        for i in 0..200 {
            let t = SimTime::from_secs(i);
            assert_eq!(a.on_idle(t), b.on_idle(t));
        }
    }

    #[test]
    fn bandit_converges_to_the_paying_arm() {
        let be = secs(13);
        // Two arms: sleep-now (always pays off here) and a 5 s timer
        // (never does).
        let mut p = BanditThreshold::new(vec![SimDuration::ZERO, secs(5)], 0.1, 7);
        for _ in 0..300 {
            let v = p.on_idle(SimTime::ZERO);
            let paid = v == IdleVerdict::SleepNow;
            let realized = if paid { secs(60) } else { secs(1) };
            p.observe(&sample(realized, be));
        }
        // The zero arm must dominate: exploit pulls all go to it.
        let exploit: Vec<IdleVerdict> = (0..50).map(|_| p.on_idle(SimTime::ZERO)).collect();
        let sleep_now = exploit
            .iter()
            .filter(|v| **v == IdleVerdict::SleepNow)
            .count();
        assert!(sleep_now > 40, "bandit failed to converge: {sleep_now}/50");
        assert!(p.arm_values()[0] > p.arm_values()[1]);
    }

    #[test]
    fn config_builds_the_right_impl() {
        let be = secs(13);
        for (cfg, name) in [
            (
                PredictorConfig::FixedThreshold { threshold_s: 5.0 },
                "fixed",
            ),
            (
                PredictorConfig::EwmaIdleWindow {
                    alpha: 0.25,
                    margin: 1.5,
                },
                "ewma",
            ),
            (PredictorConfig::BanditThreshold { epsilon: 0.1 }, "bandit"),
        ] {
            assert_eq!(cfg.label(), name);
            assert_eq!(cfg.build(be, 1).name(), name);
        }
    }

    #[test]
    fn config_roundtrips_through_json() {
        let cfg = PredictorConfig::EwmaIdleWindow {
            alpha: 0.25,
            margin: 1.5,
        };
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: PredictorConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
    }
}
