//! The per-run policy plane: predictors, tiers, and budgets assembled
//! from one [`PowerPolicy`] config.
//!
//! The `eevfs` driver owns the event loop and the device models; this
//! plane owns every *decision*: whether an idle disk sleeps, whether a
//! read is served from DRAM or SSD before touching the spin-up path, and
//! whether a spin-down is still within the drive's MTTF cycle allowance.
//! Keeping decisions here means a new policy is a new `PowerPolicy`
//! value, not a driver change.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

use eevfs_obs::PredictionSample;

use crate::budget::SpinBudget;
use crate::predictor::{IdlePredictor, IdleVerdict, PredictorConfig};
use crate::tier::{CacheTier, TierConfig};

/// Complete power/caching policy for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerPolicy {
    /// Idle-window predictor governing data-disk spin-downs.
    pub predictor: PredictorConfig,
    /// Cache-tier sizing above the buffer disk.
    pub tier: TierConfig,
    /// Per-disk spin-down cycle cap (`None` = uncapped).
    pub spin_cycle_cap: Option<u32>,
    /// Seed for every random policy choice (bandit exploration, LFU
    /// sampling), mixed with disk coordinates per instance.
    pub seed: u64,
}

impl PowerPolicy {
    /// The paper's static policy: a fixed 5 s idle threshold, no cache
    /// tiers, no cycle cap.
    pub fn paper_fixed() -> Self {
        PowerPolicy {
            predictor: PredictorConfig::FixedThreshold { threshold_s: 5.0 },
            tier: TierConfig::none(),
            spin_cycle_cap: None,
            seed: 0x5EED_0001,
        }
    }

    /// EWMA idle-window estimation with default smoothing and margin.
    pub fn ewma() -> Self {
        PowerPolicy {
            predictor: PredictorConfig::EwmaIdleWindow {
                alpha: 0.25,
                margin: 1.5,
            },
            ..Self::paper_fixed()
        }
    }

    /// Epsilon-greedy bandit over candidate thresholds.
    pub fn bandit() -> Self {
        PowerPolicy {
            predictor: PredictorConfig::BanditThreshold { epsilon: 0.1 },
            ..Self::paper_fixed()
        }
    }

    /// Returns the policy with the given tier configuration.
    pub fn with_tier(mut self, tier: TierConfig) -> Self {
        self.tier = tier;
        self
    }

    /// Returns the policy with the given per-disk spin-cycle cap.
    pub fn with_spin_cap(mut self, cap: u32) -> Self {
        self.spin_cycle_cap = Some(cap);
        self
    }

    /// Returns the policy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Short `predictor/tier` label for reports.
    pub fn label(&self) -> String {
        format!("{}/{}", self.predictor.label(), self.tier.label())
    }
}

/// Tier and budget outcomes for one run, embedded in `RunMetrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TierStats {
    /// Reads served from the DRAM tier.
    pub dram_hits: u64,
    /// Reads that missed the DRAM tier (tier enabled only).
    pub dram_misses: u64,
    /// DRAM-tier capacity evictions.
    pub dram_evictions: u64,
    /// Reads served from the SSD buffer tier.
    pub ssd_hits: u64,
    /// Reads that missed the SSD tier (tier enabled only).
    pub ssd_misses: u64,
    /// SSD-tier capacity evictions.
    pub ssd_evictions: u64,
    /// Sleeps refused because a disk's spin-cycle budget was exhausted.
    pub sleeps_denied: u64,
    /// Total data-disk spin-down cycles actually taken.
    pub spin_cycles: u64,
    /// Energy drawn by the SSD buffer tier, joules (also folded into the
    /// run's disk energy total).
    pub ssd_energy_j: f64,
}

/// Deterministic per-instance seed: policy seed mixed with coordinates
/// via splitmix64 so adjacent disks get uncorrelated streams.
fn mix_seed(seed: u64, node: u32, disk: u32, salt: u64) -> u64 {
    let mut z =
        seed ^ (u64::from(node) << 32) ^ u64::from(disk) ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct DiskPolicy {
    predictor: Box<dyn IdlePredictor>,
    budget: SpinBudget,
}

/// Per-run assembly of predictors, budgets, and cache tiers.
///
/// Indexed by `(node, disk)` for power decisions and by `node` for tier
/// lookups (tiers are node-local, like the buffer disk they sit above).
pub struct PolicyPlane {
    policy: PowerPolicy,
    disks: Vec<Vec<DiskPolicy>>,
    dram: Vec<Box<dyn CacheTier>>,
    ssd: Vec<Box<dyn CacheTier>>,
}

impl std::fmt::Debug for PolicyPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyPlane")
            .field("policy", &self.policy)
            .field("nodes", &self.disks.len())
            .finish()
    }
}

impl PolicyPlane {
    /// Builds the plane for a cluster where node `n` has
    /// `data_disks[n].len()` data disks with the given per-disk breakeven
    /// times.
    pub fn new(policy: PowerPolicy, breakeven: &[Vec<SimDuration>]) -> Self {
        let disks = breakeven
            .iter()
            .enumerate()
            .map(|(n, node_be)| {
                node_be
                    .iter()
                    .enumerate()
                    .map(|(d, &be)| DiskPolicy {
                        predictor: policy
                            .predictor
                            .build(be, mix_seed(policy.seed, n as u32, d as u32, 1)),
                        budget: match policy.spin_cycle_cap {
                            Some(cap) => SpinBudget::new(cap),
                            None => SpinBudget::unlimited(),
                        },
                    })
                    .collect()
            })
            .collect();
        let nodes = breakeven.len();
        let dram = (0..nodes)
            .map(|n| {
                policy.tier.policy.build(
                    policy.tier.dram_bytes,
                    mix_seed(policy.seed, n as u32, 0, 2),
                )
            })
            .collect();
        let ssd = (0..nodes)
            .map(|n| {
                policy
                    .tier
                    .policy
                    .build(policy.tier.ssd_bytes, mix_seed(policy.seed, n as u32, 0, 3))
            })
            .collect();
        PolicyPlane {
            policy,
            disks,
            dram,
            ssd,
        }
    }

    /// The policy this plane was built from.
    pub fn policy(&self) -> &PowerPolicy {
        &self.policy
    }

    /// Whether the DRAM tier is enabled.
    pub fn has_dram(&self) -> bool {
        self.policy.tier.dram_bytes > 0
    }

    /// Whether the SSD buffer tier is enabled (the driver instantiates an
    /// `ssd_buffer` disk per node when true).
    pub fn has_ssd(&self) -> bool {
        self.policy.tier.ssd_bytes > 0
    }

    /// Predictor verdict for a disk that went idle at `now`.
    pub fn on_idle(&mut self, node: usize, disk: usize, now: SimTime) -> IdleVerdict {
        self.disks[node][disk].predictor.on_idle(now)
    }

    /// Whether an expired idle timer should still put the disk down.
    pub fn timer_allows_sleep(&self, node: usize, disk: usize) -> bool {
        self.disks[node][disk].predictor.timer_allows_sleep()
    }

    /// Charges one spin-down against the disk's cycle budget; a `false`
    /// return means the sleep must be skipped (counted as denied).
    pub fn try_charge_spin(&mut self, node: usize, disk: usize) -> bool {
        self.disks[node][disk].budget.try_charge()
    }

    /// The predictor's current idle estimate for the ledger.
    pub fn predicted_idle(&self, node: usize, disk: usize) -> Option<SimDuration> {
        self.disks[node][disk].predictor.predicted_idle()
    }

    /// Feeds a realised idle gap (busy end → this access) to the disk's
    /// predictor. Zero gaps are ignored.
    pub fn on_access(&mut self, node: usize, disk: usize, idle_gap: SimDuration) {
        if !idle_gap.is_zero() {
            self.disks[node][disk].predictor.on_access(idle_gap);
        }
    }

    /// Feeds a closed sleep sample (the ledger's payoff signal) back to
    /// the predictor that caused it.
    pub fn observe(&mut self, sample: &PredictionSample) {
        let (n, d) = (sample.node as usize, sample.disk as usize);
        if let Some(dp) = self.disks.get_mut(n).and_then(|v| v.get_mut(d)) {
            dp.predictor.observe(sample);
        }
    }

    /// DRAM-tier lookup for `file` on `node` (false when disabled).
    pub fn dram_lookup(&mut self, node: usize, file: u32) -> bool {
        self.has_dram() && self.dram[node].lookup(file)
    }

    /// SSD-tier lookup for `file` on `node` (false when disabled).
    pub fn ssd_lookup(&mut self, node: usize, file: u32) -> bool {
        self.has_ssd() && self.ssd[node].lookup(file)
    }

    /// Admits a just-served file into the tiers: DRAM always, SSD only
    /// when the read had to reach a data disk (`reached_data_disk`) —
    /// buffer-disk hits are already cheap and would churn the SSD.
    pub fn admit(&mut self, node: usize, file: u32, bytes: u64, reached_data_disk: bool) {
        if self.has_dram() {
            self.dram[node].admit(file, bytes);
        }
        if self.has_ssd() && reached_data_disk {
            self.ssd[node].admit(file, bytes);
        }
    }

    /// Drops `file` from every tier on `node` (a write made it stale).
    pub fn invalidate(&mut self, node: usize, file: u32) {
        if self.has_dram() {
            self.dram[node].invalidate(file);
        }
        if self.has_ssd() {
            self.ssd[node].invalidate(file);
        }
    }

    /// Snapshot of tier and budget outcomes. `spin_cycles` and
    /// `ssd_energy_j` are filled by the driver from the device models.
    pub fn stats(&self) -> TierStats {
        let mut s = TierStats::default();
        for t in &self.dram {
            s.dram_hits += t.hits();
            s.dram_misses += t.misses();
            s.dram_evictions += t.evictions();
        }
        for t in &self.ssd {
            s.ssd_hits += t.hits();
            s.ssd_misses += t.misses();
            s.ssd_evictions += t.evictions();
        }
        for node in &self.disks {
            for dp in node {
                s.sleeps_denied += u64::from(dp.budget.denied());
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::EvictionPolicy;

    fn breakevens() -> Vec<Vec<SimDuration>> {
        vec![vec![SimDuration::from_secs(13); 2]; 2]
    }

    #[test]
    fn policy_roundtrips_through_json() {
        let p = PowerPolicy::ewma()
            .with_tier(TierConfig {
                dram_bytes: 64 << 20,
                ssd_bytes: 1 << 30,
                policy: EvictionPolicy::SampledLfu { sample: 8 },
            })
            .with_spin_cap(100)
            .with_seed(42);
        let json = serde_json::to_string(&p).expect("serialize");
        let back: PowerPolicy = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(p, back);
        assert_eq!(p.label(), "ewma/dram64m+ssd1g/slfu");
    }

    #[test]
    fn plane_routes_decisions_per_disk() {
        let mut plane = PolicyPlane::new(PowerPolicy::paper_fixed(), &breakevens());
        assert_eq!(
            plane.on_idle(0, 0, SimTime::ZERO),
            IdleVerdict::After(SimDuration::from_secs_f64(5.0))
        );
        assert!(plane.timer_allows_sleep(1, 1));
        assert!(!plane.has_dram());
        assert!(!plane.has_ssd());
        assert!(!plane.dram_lookup(0, 7));
        // Disabled tiers count nothing.
        assert_eq!(plane.stats(), TierStats::default());
    }

    #[test]
    fn plane_enforces_spin_budgets_per_disk() {
        let mut plane =
            PolicyPlane::new(PowerPolicy::paper_fixed().with_spin_cap(1), &breakevens());
        assert!(plane.try_charge_spin(0, 0));
        assert!(!plane.try_charge_spin(0, 0));
        // Budgets are per disk, not shared.
        assert!(plane.try_charge_spin(0, 1));
        assert_eq!(plane.stats().sleeps_denied, 1);
    }

    #[test]
    fn plane_tiers_hit_after_admit_and_invalidate() {
        let tier = TierConfig {
            dram_bytes: 1 << 20,
            ssd_bytes: 1 << 20,
            policy: EvictionPolicy::Lru,
        };
        let mut plane = PolicyPlane::new(PowerPolicy::paper_fixed().with_tier(tier), &breakevens());
        assert!(!plane.dram_lookup(0, 7));
        plane.admit(0, 7, 4096, true);
        assert!(plane.dram_lookup(0, 7));
        assert!(plane.ssd_lookup(0, 7));
        // Buffer-disk-served reads stay out of the SSD tier.
        plane.admit(0, 8, 4096, false);
        assert!(plane.dram_lookup(0, 8));
        assert!(!plane.ssd_lookup(0, 8));
        // Tiers are node-local.
        assert!(!plane.dram_lookup(1, 7));
        plane.invalidate(0, 7);
        assert!(!plane.dram_lookup(0, 7));
        assert!(!plane.ssd_lookup(0, 7));
        let s = plane.stats();
        assert_eq!(s.dram_hits, 2);
        assert!(s.ssd_hits >= 1);
    }

    #[test]
    fn plane_feeds_payoff_to_predictors() {
        let mut plane = PolicyPlane::new(PowerPolicy::ewma(), &breakevens());
        // Before any signal: cold-start hedge.
        assert_eq!(
            plane.on_idle(0, 0, SimTime::ZERO),
            IdleVerdict::After(SimDuration::from_secs(13))
        );
        plane.observe(&PredictionSample {
            node: 0,
            disk: 0,
            predicted_us: None,
            realized_us: SimDuration::from_secs(60).as_micros(),
            breakeven_us: SimDuration::from_secs(13).as_micros(),
        });
        assert_eq!(plane.on_idle(0, 0, SimTime::ZERO), IdleVerdict::SleepNow);
        // Disk (0,1) saw nothing and still hedges.
        assert_eq!(
            plane.on_idle(0, 1, SimTime::ZERO),
            IdleVerdict::After(SimDuration::from_secs(13))
        );
    }
}
