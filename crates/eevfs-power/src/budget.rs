//! Per-disk spin-cycle budgets.
//!
//! Every spin-down/up pair wears the drive: datasheet MTTF figures assume
//! a bounded number of start/stop cycles (≈50 000 for the paper's
//! ATA-133 class drives). An aggressive predictor could burn through that
//! allowance in weeks, converting energy savings into early drive
//! mortality. [`SpinBudget`] caps the cycles a single run may spend; the
//! policy plane charges it before every sleep and counts refusals.

/// Datasheet start/stop-cycle rating assumed for the modelled drives.
pub const RATED_CYCLES: u64 = 50_000;

/// An MTTF-style per-run spin-cycle cap: the share of the drive's rated
/// start/stop cycles a run of `duration_s` may consume if the drive is to
/// survive `service_years` of continuous operation at this rate.
///
/// Returns at least 1 so short runs can still demonstrate sleeping.
pub fn mttf_cycle_cap(duration_s: f64, service_years: f64) -> u32 {
    let service_s = service_years * 365.25 * 86_400.0;
    if duration_s <= 0.0 || service_s <= 0.0 {
        return 1;
    }
    let share = RATED_CYCLES as f64 * (duration_s / service_s);
    share.floor().max(1.0) as u32
}

/// A consumable spin-cycle allowance for one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpinBudget {
    cap: u32,
    used: u32,
    denied: u32,
}

impl SpinBudget {
    /// A fresh budget of `cap` spin-down cycles.
    pub fn new(cap: u32) -> Self {
        SpinBudget {
            cap,
            used: 0,
            denied: 0,
        }
    }

    /// An effectively unlimited budget (no MTTF cap configured).
    pub fn unlimited() -> Self {
        SpinBudget::new(u32::MAX)
    }

    /// Charges one spin-down if the allowance permits; returns whether
    /// the sleep may proceed. Refusals are counted.
    pub fn try_charge(&mut self) -> bool {
        if self.used < self.cap {
            self.used += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Spin-down cycles charged so far.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Sleeps refused because the allowance was exhausted.
    pub fn denied(&self) -> u32 {
        self.denied
    }

    /// The configured cap.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Whether the allowance is exhausted.
    pub fn exhausted(&self) -> bool {
        self.used >= self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_charges_then_denies() {
        let mut b = SpinBudget::new(2);
        assert!(b.try_charge());
        assert!(b.try_charge());
        assert!(!b.try_charge());
        assert!(!b.try_charge());
        assert_eq!(b.used(), 2);
        assert_eq!(b.denied(), 2);
        assert!(b.exhausted());
    }

    #[test]
    fn unlimited_budget_never_denies() {
        let mut b = SpinBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.try_charge());
        }
        assert_eq!(b.denied(), 0);
    }

    #[test]
    fn mttf_cap_scales_with_run_length() {
        // 5 years of service: ~50k cycles over ~1.58e8 s.
        let hour = mttf_cycle_cap(3600.0, 5.0);
        let day = mttf_cycle_cap(86_400.0, 5.0);
        assert!(day > hour);
        assert!(hour >= 1);
        // A 3-hour run at a 5-year pace allows only a handful of cycles.
        assert!(mttf_cycle_cap(3.0 * 3600.0, 5.0) < 10);
        // Degenerate inputs clamp to the floor.
        assert_eq!(mttf_cycle_cap(0.0, 5.0), 1);
    }
}
