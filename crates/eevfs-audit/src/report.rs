//! The versioned attribution report (`REPORT_sim.json`), its ASCII
//! top-K tables, and the CI regression gates.
//!
//! A report is a pure function of the simulation inputs, so it is
//! byte-identical across `--jobs` counts and across runs — which is what
//! lets CI `cmp` two reports and diff against a committed baseline. The
//! gates are deliberately asymmetric: only *worsening* beyond tolerance
//! fails ([`compare_reports`], [`compare_bench`]); improvements pass and
//! should prompt a baseline refresh.

use crate::ledger::{EnergyLedger, LedgerRow};
use crate::span::{RequestSpan, ResidencyTable, ServeSource};
use eevfs::RunMetrics;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema version of [`AuditReport`]. Bump on any field change; the gate
/// refuses to compare across versions.
pub const REPORT_VERSION: u32 = 1;

/// Relative worsening of `energy_per_request_j` tolerated before the
/// gate fails. The simulator is deterministic, so any drift at all is a
/// code change; 2% separates "rounding-level refactor noise" from a real
/// energy regression.
pub const ENERGY_REGRESSION_TOL: f64 = 0.02;

/// Relative worsening of `mean_response_s` tolerated before the gate
/// fails.
pub const RESPONSE_REGRESSION_TOL: f64 = 0.10;

/// Throughput floor for the bench gate: `runs/sec` may drop to this
/// fraction of baseline before failing. Generous because wall-clock
/// varies across CI machines; it exists to catch order-of-magnitude
/// collapses, not jitter.
pub const BENCH_FLOOR: f64 = 0.10;

/// The ledger's closed views, without the per-request share list (which
/// scales with the workload; the report keeps top-K instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// Exact copy of `RunMetrics::total_energy_j`.
    pub total_j: f64,
    /// Exact copy of `RunMetrics::disk_energy_j`.
    pub disk_j: f64,
    /// Exact copy of `RunMetrics::base_energy_j`.
    pub base_j: f64,
    /// Exact copy of `RunMetrics::scrub_energy_j`.
    pub scrub_j: f64,
    /// Warm-up energy (excluded from `total_j`, reported for context).
    pub warmup_j: f64,
    /// Joules attributed to requests.
    pub attributed_j: f64,
    /// Joules no request caused; `(attributed + unattributed) + carry ==
    /// total` bit-exactly.
    pub unattributed_j: f64,
    /// Sub-ULP rounding carry of the request view.
    pub carry_j: f64,
    /// Disk view rows (fold to `disk_j`).
    pub disk_rows: Vec<LedgerRow>,
    /// Base view rows (fold to `base_j`).
    pub base_rows: Vec<LedgerRow>,
    /// Power-state view rows (fold to `total_j`).
    pub state_rows: Vec<LedgerRow>,
}

impl From<&EnergyLedger> for LedgerSummary {
    fn from(l: &EnergyLedger) -> LedgerSummary {
        LedgerSummary {
            total_j: l.total_j,
            disk_j: l.disk_j,
            base_j: l.base_j,
            scrub_j: l.scrub_j,
            warmup_j: l.warmup_j,
            attributed_j: l.attributed_j,
            unattributed_j: l.unattributed_j,
            carry_j: l.carry_j,
            disk_rows: l.disk_rows.clone(),
            base_rows: l.base_rows.clone(),
            state_rows: l.state_rows.clone(),
        }
    }
}

/// One top-K row of the joules-per-request table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopRequest {
    /// Request ID.
    pub req: u64,
    /// File touched.
    pub file: u64,
    /// Serving node, when observed.
    pub node: Option<u32>,
    /// Request bytes.
    pub bytes: u64,
    /// Attributed joules.
    pub joules: f64,
    /// End-to-end latency, µs.
    pub total_us: u64,
    /// Spin-up wait on the critical path, µs.
    pub spinup_us: u64,
    /// Where the bytes came from.
    pub source: ServeSource,
}

/// One row of the per-file energy-vs-hotness table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileEnergy {
    /// File ID.
    pub file: u64,
    /// Requests that touched the file (hotness).
    pub requests: u32,
    /// Total bytes moved for the file.
    pub bytes: u64,
    /// Total joules attributed to the file's requests.
    pub joules: f64,
}

/// One row of the per-disk residency table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskResidencyRow {
    /// `n<node>.buf` or `n<node>.d<disk>`.
    pub label: String,
    /// µs in Active.
    pub active_us: u64,
    /// µs in Idle.
    pub idle_us: u64,
    /// µs in Standby.
    pub standby_us: u64,
    /// µs spinning up.
    pub spinup_us: u64,
    /// µs spinning down.
    pub spindown_us: u64,
    /// Standby→up transitions inside the window.
    pub spin_ups: u64,
}

/// One workload/config point of the attribution report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionCell {
    /// Stable cell name (the gate joins on it).
    pub name: String,
    /// Workload description.
    pub workload: String,
    /// Config description.
    pub config: String,
    /// Requests served.
    pub requests: u32,
    /// Exact copy of `RunMetrics::total_energy_j`.
    pub total_energy_j: f64,
    /// `total_energy_j / requests` — the gated headline number.
    pub energy_per_request_j: f64,
    /// Mean response time, seconds — also gated.
    pub mean_response_s: f64,
    /// Σ queue wait across all spans, µs.
    pub queue_us: u64,
    /// Σ dispatch/RPC segments across all spans, µs.
    pub dispatch_us: u64,
    /// Σ spin-up wait across all spans, µs.
    pub spinup_us: u64,
    /// Σ transfer time across all spans, µs.
    pub transfer_us: u64,
    /// Σ unaccounted remainder across all spans, µs.
    pub unaccounted_us: u64,
    /// Requests that waited on a spin-up.
    pub spun_up_requests: u64,
    /// Total RPC retries across requests.
    pub retries: u64,
    /// Total hedged RPCs across requests.
    pub hedges: u64,
    /// The closed ledger views.
    pub ledger: LedgerSummary,
    /// Top-K requests by attributed joules.
    pub top_requests: Vec<TopRequest>,
    /// Top-K files by attributed joules.
    pub top_files: Vec<FileEnergy>,
    /// Per-disk power-state residency.
    pub residency: Vec<DiskResidencyRow>,
}

impl AttributionCell {
    /// Folds one observed run (metrics + spans + ledger + residency)
    /// into a report cell, keeping the `k` most energetic requests and
    /// files.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        name: &str,
        workload: &str,
        config: &str,
        metrics: &RunMetrics,
        spans: &[RequestSpan],
        ledger: &EnergyLedger,
        residency: &ResidencyTable,
        k: usize,
    ) -> AttributionCell {
        let mean_response_s = if metrics.response_samples_s.is_empty() {
            0.0
        } else {
            metrics.response_samples_s.iter().sum::<f64>() / metrics.response_samples_s.len() as f64
        };
        let mut top: Vec<(&RequestSpan, f64)> = spans
            .iter()
            .zip(ledger.requests.iter().map(|r| r.joules))
            .collect();
        top.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.req.cmp(&b.0.req)));
        let top_requests = top
            .iter()
            .take(k)
            .map(|(s, j)| TopRequest {
                req: s.req,
                file: s.file,
                node: s.node,
                bytes: s.bytes,
                joules: *j,
                total_us: s.total_us,
                spinup_us: s.spinup_us,
                source: s.source,
            })
            .collect();
        let mut files: BTreeMap<u64, FileEnergy> = BTreeMap::new();
        for share in &ledger.requests {
            let e = files.entry(share.file).or_insert(FileEnergy {
                file: share.file,
                requests: 0,
                bytes: 0,
                joules: 0.0,
            });
            e.requests += 1;
            e.bytes += share.bytes;
            e.joules += share.joules;
        }
        let mut top_files: Vec<FileEnergy> = files.into_values().collect();
        top_files.sort_by(|a, b| b.joules.total_cmp(&a.joules).then(a.file.cmp(&b.file)));
        top_files.truncate(k);
        let residency = residency
            .disks
            .iter()
            .map(|(&(node, disk), r)| DiskResidencyRow {
                label: if disk == u32::MAX {
                    format!("n{node}.buf")
                } else {
                    format!("n{node}.d{disk}")
                },
                active_us: r.active_us,
                idle_us: r.idle_us,
                standby_us: r.standby_us,
                spinup_us: r.spinup_us,
                spindown_us: r.spindown_us,
                spin_ups: r.spin_ups,
            })
            .collect();
        AttributionCell {
            name: name.to_string(),
            workload: workload.to_string(),
            config: config.to_string(),
            requests: spans.len() as u32,
            total_energy_j: metrics.total_energy_j,
            energy_per_request_j: if spans.is_empty() {
                0.0
            } else {
                metrics.total_energy_j / spans.len() as f64
            },
            mean_response_s,
            queue_us: spans.iter().map(|s| s.queue_us).sum(),
            dispatch_us: spans.iter().map(|s| s.dispatch_us).sum(),
            spinup_us: spans.iter().map(|s| s.spinup_us).sum(),
            transfer_us: spans.iter().map(|s| s.transfer_us).sum(),
            unaccounted_us: spans.iter().map(|s| s.unaccounted_us).sum(),
            spun_up_requests: spans.iter().filter(|s| s.spinup_us > 0).count() as u64,
            retries: spans.iter().map(|s| s.retries as u64).sum(),
            hedges: spans.iter().map(|s| s.hedges as u64).sum(),
            ledger: LedgerSummary::from(ledger),
            top_requests,
            top_files,
            residency,
        }
    }
}

/// The versioned `REPORT_sim.json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u32,
    /// Requests per cell (the sweep parameter).
    pub requests: u32,
    /// Workload seed.
    pub seed: u64,
    /// One cell per workload/config point.
    pub cells: Vec<AttributionCell>,
}

/// The bench harness snapshot persisted as `BENCH_sim.json` — shared by
/// the harness (writer) and the regression gate (reader).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Requests per run.
    pub requests: u32,
    /// Workload seed.
    pub seed: u64,
    /// Worker count used for the parallel leg.
    pub jobs: usize,
    /// Grid points in the sweep.
    pub grid_points: usize,
    /// Total runs executed.
    pub runs: usize,
    /// Serial wall-clock, seconds.
    pub serial_s: f64,
    /// Parallel wall-clock, seconds.
    pub parallel_s: f64,
    /// Serial throughput.
    pub serial_runs_per_sec: f64,
    /// Parallel throughput.
    pub parallel_runs_per_sec: f64,
    /// `serial_s / parallel_s`.
    pub speedup: f64,
    /// Whether serial and parallel results were byte-identical.
    pub byte_identical: bool,
}

/// One gate failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Cell name (or `"bench"` / `"report"` for global checks).
    pub cell: String,
    /// Metric that regressed.
    pub metric: String,
    /// Current value.
    pub current: f64,
    /// Baseline value.
    pub baseline: f64,
    /// The limit the current value crossed.
    pub limit: f64,
}

impl Regression {
    /// One human line for the CI log.
    pub fn describe(&self) -> String {
        format!(
            "REGRESSION [{}] {}: current {:.6} vs baseline {:.6} (limit {:.6})",
            self.cell, self.metric, self.current, self.baseline, self.limit
        )
    }
}

fn worse(cell: &str, metric: &str, current: f64, baseline: f64, tol: f64) -> Option<Regression> {
    let limit = baseline * (1.0 + tol);
    (current > limit).then(|| Regression {
        cell: cell.to_string(),
        metric: metric.to_string(),
        current,
        baseline,
        limit,
    })
}

/// The report regression gate: compares `current` against a committed
/// `baseline` and returns every failure. Empty ⇒ gate passes.
///
/// Fails on: schema version mismatch, a baseline cell missing from the
/// current report, `energy_per_request_j` worsening beyond
/// [`ENERGY_REGRESSION_TOL`], or `mean_response_s` worsening beyond
/// [`RESPONSE_REGRESSION_TOL`]. Improvements never fail.
pub fn compare_reports(current: &AuditReport, baseline: &AuditReport) -> Vec<Regression> {
    let mut out = Vec::new();
    if current.version != baseline.version {
        out.push(Regression {
            cell: "report".into(),
            metric: "version".into(),
            current: current.version as f64,
            baseline: baseline.version as f64,
            limit: baseline.version as f64,
        });
        return out;
    }
    for base in &baseline.cells {
        let Some(cur) = current.cells.iter().find(|c| c.name == base.name) else {
            out.push(Regression {
                cell: base.name.clone(),
                metric: "cell-present".into(),
                current: 0.0,
                baseline: 1.0,
                limit: 1.0,
            });
            continue;
        };
        out.extend(worse(
            &base.name,
            "energy_per_request_j",
            cur.energy_per_request_j,
            base.energy_per_request_j,
            ENERGY_REGRESSION_TOL,
        ));
        out.extend(worse(
            &base.name,
            "mean_response_s",
            cur.mean_response_s,
            base.mean_response_s,
            RESPONSE_REGRESSION_TOL,
        ));
    }
    out
}

/// The bench regression gate: fails when serial/parallel results stopped
/// being byte-identical, or when throughput fell below [`BENCH_FLOOR`] ×
/// baseline.
pub fn compare_bench(current: &BenchSnapshot, baseline: &BenchSnapshot) -> Vec<Regression> {
    let mut out = Vec::new();
    if !current.byte_identical {
        out.push(Regression {
            cell: "bench".into(),
            metric: "byte_identical".into(),
            current: 0.0,
            baseline: 1.0,
            limit: 1.0,
        });
    }
    for (metric, cur, base) in [
        (
            "serial_runs_per_sec",
            current.serial_runs_per_sec,
            baseline.serial_runs_per_sec,
        ),
        (
            "parallel_runs_per_sec",
            current.parallel_runs_per_sec,
            baseline.parallel_runs_per_sec,
        ),
    ] {
        let floor = base * BENCH_FLOOR;
        if cur < floor {
            out.push(Regression {
                cell: "bench".into(),
                metric: metric.into(),
                current: cur,
                baseline: base,
                limit: floor,
            });
        }
    }
    out
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        100.0 * part / whole
    } else {
        0.0
    }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Renders the ASCII tables for one cell: the energy component tree
/// (flamegraph-style), the joules-per-request distribution with top-K
/// rows, per-file energy vs hotness, and per-disk residency. Pass the
/// full [`EnergyLedger`] so the distribution covers every request, not
/// just the stored top-K. Deterministic for a deterministic cell.
pub fn render_cell_tables(cell: &AttributionCell, ledger: &EnergyLedger) -> String {
    let mut out = String::new();
    let l = &cell.ledger;
    out.push_str(&format!(
        "=== {} | {} | {} ===\n",
        cell.name, cell.workload, cell.config
    ));
    out.push_str(&format!(
        "energy {:.3} J over {} requests = {:.4} J/request | mean response {:.4} s\n",
        cell.total_energy_j, cell.requests, cell.energy_per_request_j, cell.mean_response_s
    ));
    out.push_str(&format!(
        "latency sums (us): queue {} | dispatch {} | spinup {} | transfer {} | unaccounted {} | spun-up reqs {} | retries {} | hedges {}\n",
        cell.queue_us,
        cell.dispatch_us,
        cell.spinup_us,
        cell.transfer_us,
        cell.unaccounted_us,
        cell.spun_up_requests,
        cell.retries,
        cell.hedges
    ));

    out.push_str("\n-- energy component tree --\n");
    out.push_str(&format!("total {:>14.3} J\n", l.total_j));
    out.push_str(&format!(
        "+- disk {:>12.3} J ({:.1}%)\n",
        l.disk_j,
        pct(l.disk_j, l.total_j)
    ));
    for row in &l.disk_rows {
        out.push_str(&format!(
            "|  +- {:<12} {:>12.3} J ({:.1}%)\n",
            row.name,
            row.joules,
            pct(row.joules, l.total_j)
        ));
    }
    out.push_str(&format!(
        "+- base {:>12.3} J ({:.1}%)\n",
        l.base_j,
        pct(l.base_j, l.total_j)
    ));
    for row in &l.base_rows {
        out.push_str(&format!(
            "|  +- {:<12} {:>12.3} J ({:.1}%)\n",
            row.name,
            row.joules,
            pct(row.joules, l.total_j)
        ));
    }
    out.push_str(&format!(
        "overlays: scrub {:.3} J | warm-up (excluded) {:.3} J\n",
        l.scrub_j, l.warmup_j
    ));
    out.push_str("power-state view:\n");
    for row in &l.state_rows {
        out.push_str(&format!(
            "  {:<14} {:>12.3} J ({:.1}%)\n",
            row.name,
            row.joules,
            pct(row.joules, l.total_j)
        ));
    }

    out.push_str("\n-- joules per request --\n");
    let mut shares: Vec<f64> = ledger.requests.iter().map(|r| r.joules).collect();
    shares.sort_by(f64::total_cmp);
    let mean = if shares.is_empty() {
        0.0
    } else {
        ledger.attributed_j / shares.len() as f64
    };
    out.push_str(&format!(
        "attributed {:.3} J ({:.1}%) | unattributed {:.3} J ({:.1}%)\n",
        ledger.attributed_j,
        pct(ledger.attributed_j, l.total_j),
        ledger.unattributed_j,
        pct(ledger.unattributed_j, l.total_j)
    ));
    out.push_str(&format!(
        "share dist: min {:.4} | p50 {:.4} | p90 {:.4} | p99 {:.4} | max {:.4} | mean {:.4}\n",
        quantile(&shares, 0.0),
        quantile(&shares, 0.5),
        quantile(&shares, 0.9),
        quantile(&shares, 0.99),
        quantile(&shares, 1.0),
        mean
    ));
    out.push_str(&format!(
        "{:>8} {:>6} {:>5} {:>10} {:>10} {:>10} {:>9} source\n",
        "req", "file", "node", "bytes", "joules", "total_us", "spinup_us"
    ));
    for t in &cell.top_requests {
        out.push_str(&format!(
            "{:>8} {:>6} {:>5} {:>10} {:>10.4} {:>10} {:>9} {:?}\n",
            t.req,
            t.file,
            t.node.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
            t.bytes,
            t.joules,
            t.total_us,
            t.spinup_us,
            t.source
        ));
    }

    out.push_str("\n-- per-file energy vs hotness --\n");
    out.push_str(&format!(
        "{:>6} {:>8} {:>12} {:>10} {:>10}\n",
        "file", "requests", "bytes", "joules", "J/request"
    ));
    for f in &cell.top_files {
        out.push_str(&format!(
            "{:>6} {:>8} {:>12} {:>10.4} {:>10.4}\n",
            f.file,
            f.requests,
            f.bytes,
            f.joules,
            if f.requests > 0 {
                f.joules / f.requests as f64
            } else {
                0.0
            }
        ));
    }

    out.push_str("\n-- per-disk residency --\n");
    out.push_str(&format!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8}\n",
        "disk", "active%", "idle%", "standby%", "spinup%", "spindown%", "spin-ups"
    ));
    for r in &cell.residency {
        let total = (r.active_us + r.idle_us + r.standby_us + r.spinup_us + r.spindown_us) as f64;
        let p = |us: u64| {
            if total > 0.0 {
                100.0 * us as f64 / total
            } else {
                0.0
            }
        };
        out.push_str(&format!(
            "{:>8} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>8}\n",
            r.label,
            p(r.active_us),
            p(r.idle_us),
            p(r.standby_us),
            p(r.spinup_us),
            p(r.spindown_us),
            r.spin_ups
        ));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tiny_report() -> AuditReport {
        AuditReport {
            version: REPORT_VERSION,
            requests: 2,
            seed: 7,
            cells: vec![AttributionCell {
                name: "cell-a".into(),
                workload: "synthetic".into(),
                config: "PF(70)".into(),
                requests: 2,
                total_energy_j: 100.0,
                energy_per_request_j: 50.0,
                mean_response_s: 0.5,
                queue_us: 10,
                dispatch_us: 20,
                spinup_us: 0,
                transfer_us: 30,
                unaccounted_us: 0,
                spun_up_requests: 0,
                retries: 0,
                hedges: 0,
                ledger: LedgerSummary {
                    total_j: 100.0,
                    disk_j: 40.0,
                    base_j: 60.0,
                    scrub_j: 0.0,
                    warmup_j: 5.0,
                    attributed_j: 10.0,
                    unattributed_j: 90.0,
                    carry_j: 0.0,
                    disk_rows: vec![LedgerRow {
                        name: "n0.disks".into(),
                        joules: 40.0,
                    }],
                    base_rows: vec![LedgerRow {
                        name: "n0.base".into(),
                        joules: 60.0,
                    }],
                    state_rows: vec![LedgerRow {
                        name: "disks-active".into(),
                        joules: 100.0,
                    }],
                },
                top_requests: vec![],
                top_files: vec![],
                residency: vec![],
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = tiny_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = tiny_report();
        assert!(compare_reports(&r, &r).is_empty());
    }

    #[test]
    fn energy_regression_fails_the_gate_and_improvement_passes() {
        let base = tiny_report();
        let mut worse = base.clone();
        worse.cells[0].energy_per_request_j *= 1.0 + ENERGY_REGRESSION_TOL + 0.01;
        let regs = compare_reports(&worse, &base);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "energy_per_request_j");
        assert!(regs[0].describe().contains("REGRESSION"));
        let mut better = base.clone();
        better.cells[0].energy_per_request_j *= 0.5;
        assert!(compare_reports(&better, &base).is_empty());
    }

    #[test]
    fn version_mismatch_and_missing_cell_fail_the_gate() {
        let base = tiny_report();
        let mut newer = base.clone();
        newer.version += 1;
        assert_eq!(compare_reports(&newer, &base)[0].metric, "version");
        let mut empty = base.clone();
        empty.cells.clear();
        assert_eq!(compare_reports(&empty, &base)[0].metric, "cell-present");
    }

    #[test]
    fn bench_gate_checks_identity_and_throughput_floor() {
        let base = BenchSnapshot {
            requests: 100,
            seed: 7,
            jobs: 4,
            grid_points: 8,
            runs: 16,
            serial_s: 1.0,
            parallel_s: 0.4,
            serial_runs_per_sec: 16.0,
            parallel_runs_per_sec: 40.0,
            speedup: 2.5,
            byte_identical: true,
        };
        assert!(compare_bench(&base, &base).is_empty());
        let mut slow = base.clone();
        slow.parallel_runs_per_sec = base.parallel_runs_per_sec * BENCH_FLOOR * 0.5;
        assert_eq!(
            compare_bench(&slow, &base)[0].metric,
            "parallel_runs_per_sec"
        );
        let mut diverged = base.clone();
        diverged.byte_identical = false;
        assert_eq!(compare_bench(&diverged, &base)[0].metric, "byte_identical");
    }

    #[test]
    fn rendering_is_deterministic_and_names_every_table() {
        let r = tiny_report();
        let ledger = EnergyLedger {
            total_j: 100.0,
            disk_j: 40.0,
            base_j: 60.0,
            scrub_j: 0.0,
            warmup_j: 5.0,
            disk_rows: r.cells[0].ledger.disk_rows.clone(),
            base_rows: r.cells[0].ledger.base_rows.clone(),
            state_rows: r.cells[0].ledger.state_rows.clone(),
            requests: vec![],
            attributed_j: 10.0,
            unattributed_j: 90.0,
            carry_j: 0.0,
        };
        let a = render_cell_tables(&r.cells[0], &ledger);
        let b = render_cell_tables(&r.cells[0], &ledger);
        assert_eq!(a, b);
        for needle in [
            "energy component tree",
            "joules per request",
            "per-file energy vs hotness",
            "per-disk residency",
            "power-state view",
        ] {
            assert!(a.contains(needle), "missing {needle}: {a}");
        }
    }
}
