//! # eevfs-audit — the energy attribution plane
//!
//! `eevfs-obs` (DESIGN.md §9) records *what happened*; this crate answers
//! *where the joules and milliseconds went* (DESIGN.md §14). Three layers:
//!
//! * [`span`] — a **causal span reconstructor** that folds the
//!   deterministic trace into one [`RequestSpan`] per request, with a
//!   critical-path latency decomposition (queue wait, dispatch/RPC,
//!   spin-up wait, transfer) plus retry/hedge annotations, and a
//!   [`ResidencyTable`] integrating per-disk power-state residency from
//!   the `DiskTransition` stream.
//! * [`ledger`] — an **energy attribution ledger** apportioning every
//!   joule of [`eevfs::RunMetrics::total_energy_j`] along four views
//!   (component tree, per-request, per-power-state, per-node), each view
//!   closed by an explicit residual row so that re-summing the rows in
//!   ledger order reproduces the `RunMetrics` totals **bit-exactly** —
//!   the property the `eevfs-chaos` plane attests on every campaign.
//! * [`report`] — the versioned `REPORT_sim.json` schema, its ASCII
//!   top-K tables, and the baseline regression gate `harness report`
//!   enforces in CI.
//!
//! Everything here is a pure function of a trace and its metrics: no
//! randomness, no wall clock, deterministic iteration orders throughout.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod ledger;
pub mod report;
pub mod span;

pub use ledger::{build_ledger, AttributionModel, EnergyLedger, LedgerRow, RequestShare};
pub use report::{
    compare_bench, compare_reports, render_cell_tables, AttributionCell, AuditReport,
    BenchSnapshot, Regression, REPORT_VERSION,
};
pub use span::{reconstruct_spans, DiskResidency, RequestSpan, ResidencyTable, ServeSource};
