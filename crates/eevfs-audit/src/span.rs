//! Causal span reconstruction: from a flat deterministic trace to one
//! span per request, with a critical-path latency decomposition.
//!
//! The trace schema (eevfs-obs) timestamps every milestone a request
//! crosses: arrival, server admission, RPC dispatch (with retries and
//! hedges), spin-up waits, disk/tier service, and completion. Because
//! the recorder sorts events by `(at_us, seq)` and every field is an
//! integer, folding the stream into spans is a pure function of the
//! trace — two same-seed runs reconstruct byte-identical spans.
//!
//! The decomposition telescopes: for a request with every milestone
//! present, `queue + dispatch + spinup + transfer == total` exactly
//! (integer microseconds, no rounding). Requests missing milestones
//! (failed requests, tier hits that skip the disk) carry the remainder
//! in `unaccounted_us` so the identity still holds by construction.

use disk_model::PowerState;
use eevfs_obs::{EventKind, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a request's winning service came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ServeSource {
    /// The node's always-on buffer disk absorbed the access.
    Buffer,
    /// A data disk serviced the access.
    Data,
    /// The DRAM cache tier above the buffer disk (eevfs-power).
    Dram,
    /// The SSD cache tier above the buffer disk (eevfs-power).
    Ssd,
    /// No serve event observed (the request failed or was dropped).
    #[default]
    Unserved,
}

/// One request's reconstructed causal span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestSpan {
    /// Request ID (hedge mirrors are folded into their parent).
    pub req: u64,
    /// File the request touched.
    pub file: u64,
    /// Request size in bytes.
    pub bytes: u64,
    /// True for writes.
    pub write: bool,
    /// Serving node, when a serve was observed.
    pub node: Option<u32>,
    /// Serving disk index (`u32::MAX` = buffer disk), data/buffer only.
    pub disk: Option<u32>,
    /// Where the winning service came from.
    pub source: ServeSource,
    /// Arrival timestamp, µs.
    pub arrive_us: u64,
    /// Completion timestamp, µs (present for every completed request).
    pub complete_us: Option<u64>,
    /// End-to-end latency, µs (completion − arrival).
    pub total_us: u64,
    /// Server admission/queue wait: arrival → routed to a node.
    pub queue_us: u64,
    /// Dispatch: routed → first disk/tier activity. Includes the RPC
    /// flight plus any retry backoff and hedge races.
    pub dispatch_us: u64,
    /// Spin-up wait: the paper's ~2 s wake penalty, when the request hit
    /// a standby disk.
    pub spinup_us: u64,
    /// Service/transfer: disk or tier begins → response at the client.
    pub transfer_us: u64,
    /// Remainder for spans missing milestones; zero when the full
    /// milestone chain was observed.
    pub unaccounted_us: u64,
    /// RPC attempts observed (1 for a clean send).
    pub attempts: u32,
    /// Retries scheduled after drops/resets/timeouts.
    pub retries: u32,
    /// Flights the network dropped.
    pub drops: u32,
    /// Speculative hedge duplicates launched for this request.
    pub hedges: u32,
    /// True when a hedge flight produced the winning response.
    pub hedge_won: bool,
}

impl RequestSpan {
    /// The decomposition identity every span satisfies by construction.
    pub fn segments_sum(&self) -> u64 {
        self.queue_us + self.dispatch_us + self.spinup_us + self.transfer_us + self.unaccounted_us
    }
}

#[derive(Default)]
struct SpanBuilder {
    file: u64,
    bytes: u64,
    write: bool,
    arrive_us: Option<u64>,
    queued_us: Option<u64>,
    spinup_us_at: Option<u64>,
    serve_us_at: Option<u64>,
    complete_us: Option<u64>,
    response_us: Option<u64>,
    node: Option<u32>,
    disk: Option<u32>,
    source: ServeSource,
    attempts: u32,
    retries: u32,
    drops: u32,
    hedges: u32,
    hedge_won: bool,
}

/// Folds a time-sorted trace into per-request spans, in request-ID order.
///
/// Hedge mirrors are canonicalised onto the request they cover (the
/// `RpcHedge` event names both IDs), so a span counts its duplicates
/// instead of leaking phantom requests. Requests that never complete
/// still produce a span with `complete_us: None`.
pub fn reconstruct_spans(events: &[TraceEvent]) -> Vec<RequestSpan> {
    // Pass 1: hedge-mirror ID → parent ID.
    let mut parent_of: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in events {
        if let EventKind::RpcHedge { req, parent, .. } = ev.kind {
            parent_of.insert(req, parent);
        }
    }
    let canon = |req: u64| -> u64 { parent_of.get(&req).copied().unwrap_or(req) };

    // Pass 2: accumulate milestones per canonical request.
    let mut builders: BTreeMap<u64, SpanBuilder> = BTreeMap::new();
    for ev in events {
        let Some(raw) = ev.kind.request_id() else {
            continue;
        };
        let is_mirror = parent_of.contains_key(&raw);
        let b = builders.entry(canon(raw)).or_default();
        match &ev.kind {
            EventKind::RequestArrive {
                file, write, bytes, ..
            } => {
                b.arrive_us.get_or_insert(ev.at_us);
                b.file = *file;
                b.bytes = *bytes;
                b.write = *write;
            }
            EventKind::RequestQueued { .. } => {
                b.queued_us.get_or_insert(ev.at_us);
            }
            // Keep the last wait before service: under retries the
            // final replica's wake is the one on the critical path.
            EventKind::SpinupWait { node, disk, .. } if b.serve_us_at.is_none() => {
                b.spinup_us_at = Some(ev.at_us);
                b.node.get_or_insert(*node);
                b.disk.get_or_insert(*disk);
            }
            EventKind::RequestServe {
                node,
                disk,
                from_buffer,
                ..
            } => {
                b.serve_us_at = Some(ev.at_us);
                b.node = Some(*node);
                b.source = if *from_buffer {
                    b.disk = Some(u32::MAX);
                    ServeSource::Buffer
                } else {
                    b.disk = Some(*disk);
                    ServeSource::Data
                };
            }
            EventKind::TierServe { node, ssd, .. } => {
                b.serve_us_at = Some(ev.at_us);
                b.node = Some(*node);
                b.source = if *ssd {
                    ServeSource::Ssd
                } else {
                    ServeSource::Dram
                };
            }
            EventKind::RequestComplete { response_us, .. } if !is_mirror => {
                b.complete_us = Some(ev.at_us);
                b.response_us = Some(*response_us);
            }
            EventKind::RpcSend { .. } => b.attempts += 1,
            EventKind::RpcRetry { .. } => b.retries += 1,
            EventKind::RpcDropped { .. } => b.drops += 1,
            EventKind::RpcHedge { .. } => b.hedges += 1,
            EventKind::RpcComplete { won_by_hedge, .. } => b.hedge_won |= *won_by_hedge,
            _ => {}
        }
    }

    // Pass 3: close the decomposition. Only IDs that actually arrived
    // become spans (stray mirrors without an RpcHedge record do not).
    builders
        .into_iter()
        .filter_map(|(req, b)| {
            let arrive = b.arrive_us?;
            let total = b.complete_us.map(|c| c - arrive).unwrap_or(0);
            let queue = b.queued_us.map(|q| q.saturating_sub(arrive)).unwrap_or(0);
            let first_disk = b.spinup_us_at.or(b.serve_us_at);
            let dispatch = match (b.queued_us, first_disk) {
                (Some(q), Some(d)) => d.saturating_sub(q),
                _ => 0,
            };
            let spinup = match (b.spinup_us_at, b.serve_us_at) {
                (Some(w), Some(s)) => s.saturating_sub(w),
                _ => 0,
            };
            let transfer = match (b.serve_us_at, b.complete_us) {
                (Some(s), Some(c)) => c.saturating_sub(s),
                _ => 0,
            };
            let accounted = queue + dispatch + spinup + transfer;
            Some(RequestSpan {
                req,
                file: b.file,
                bytes: b.bytes,
                write: b.write,
                node: b.node,
                disk: b.disk,
                source: b.source,
                arrive_us: arrive,
                complete_us: b.complete_us,
                total_us: total,
                queue_us: queue,
                dispatch_us: dispatch,
                spinup_us: spinup,
                transfer_us: transfer,
                unaccounted_us: total.saturating_sub(accounted),
                attempts: b.attempts,
                retries: b.retries,
                drops: b.drops,
                hedges: b.hedges,
                hedge_won: b.hedge_won,
            })
        })
        .collect()
}

/// Power-state residency of one disk over an accounting window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiskResidency {
    /// Microseconds spent Active.
    pub active_us: u64,
    /// Microseconds spent Idle (spinning, not serving).
    pub idle_us: u64,
    /// Microseconds spent Standby (spun down).
    pub standby_us: u64,
    /// Microseconds spent spinning up.
    pub spinup_us: u64,
    /// Microseconds spent spinning down.
    pub spindown_us: u64,
    /// Spin-up transitions inside the window.
    pub spin_ups: u64,
}

impl DiskResidency {
    fn charge(&mut self, state: PowerState, us: u64) {
        match state {
            PowerState::Active => self.active_us += us,
            PowerState::Idle => self.idle_us += us,
            PowerState::Standby => self.standby_us += us,
            PowerState::SpinningUp => self.spinup_us += us,
            PowerState::SpinningDown => self.spindown_us += us,
        }
    }

    /// Total microseconds accounted (equals the window length).
    pub fn total_us(&self) -> u64 {
        self.active_us + self.idle_us + self.standby_us + self.spinup_us + self.spindown_us
    }
}

/// Per-disk power-state residency integrated from `DiskTransition`
/// events, keyed `(node, disk)` with `disk == u32::MAX` for buffer
/// disks. Deterministic: BTreeMap order is `(node, disk)` order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResidencyTable {
    /// Residency rows in `(node, disk)` order.
    pub disks: BTreeMap<(u32, u32), DiskResidency>,
    /// Window start, µs (the replay window excludes the prefetch warm-up).
    pub window_start_us: u64,
    /// Window end, µs.
    pub window_end_us: u64,
}

impl ResidencyTable {
    /// Integrates residency over `[window_start_us, window_end_us]`,
    /// matching the driver's energy accounting window (replay only; the
    /// warm-up is metered separately). Disks start Idle at `t = 0`, the
    /// meter's initial state.
    pub fn from_events(events: &[TraceEvent], window_start_us: u64, window_end_us: u64) -> Self {
        let mut edges: BTreeMap<(u32, u32), Vec<(u64, PowerState)>> = BTreeMap::new();
        for ev in events {
            if let EventKind::DiskTransition { node, disk, to, .. } = ev.kind {
                edges.entry((node, disk)).or_default().push((ev.at_us, to));
            }
        }
        let mut disks = BTreeMap::new();
        for (key, log) in edges {
            let mut r = DiskResidency::default();
            let mut state = PowerState::Idle;
            let mut cursor = window_start_us;
            for (at, to) in log {
                let at_clipped = at.clamp(window_start_us, window_end_us);
                if at_clipped > cursor {
                    r.charge(state, at_clipped - cursor);
                    cursor = at_clipped;
                }
                if at <= window_end_us {
                    if to == PowerState::SpinningUp && at >= window_start_us {
                        r.spin_ups += 1;
                    }
                    state = to;
                }
            }
            if window_end_us > cursor {
                r.charge(state, window_end_us - cursor);
            }
            disks.insert(key, r);
        }
        ResidencyTable {
            disks,
            window_start_us,
            window_end_us,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use eevfs_obs::Severity;

    fn ev(at_us: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq: at_us,
            at_us,
            sev: Severity::Debug,
            kind,
        }
    }

    #[test]
    fn clean_request_decomposition_telescopes() {
        let events = vec![
            ev(
                100,
                EventKind::RequestArrive {
                    req: 0,
                    file: 7,
                    write: false,
                    bytes: 4096,
                },
            ),
            ev(150, EventKind::RequestQueued { req: 0, node: 2 }),
            ev(
                200,
                EventKind::RpcSend {
                    req: 0,
                    node: 2,
                    attempt: 1,
                },
            ),
            ev(
                300,
                EventKind::SpinupWait {
                    req: 0,
                    node: 2,
                    disk: 1,
                },
            ),
            ev(
                2_300_300,
                EventKind::RequestServe {
                    req: 0,
                    node: 2,
                    disk: 1,
                    from_buffer: false,
                },
            ),
            ev(
                2_400_000,
                EventKind::RequestComplete {
                    req: 0,
                    response_us: 2_399_900,
                },
            ),
        ];
        let spans = reconstruct_spans(&events);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.queue_us, 50);
        assert_eq!(s.dispatch_us, 150);
        assert_eq!(s.spinup_us, 2_300_000);
        assert_eq!(s.transfer_us, 99_700);
        assert_eq!(s.unaccounted_us, 0);
        assert_eq!(s.segments_sum(), s.total_us);
        assert_eq!(s.source, ServeSource::Data);
        assert_eq!(s.node, Some(2));
        assert_eq!(s.attempts, 1);
    }

    #[test]
    fn hedge_mirror_folds_into_parent() {
        let events = vec![
            ev(
                0,
                EventKind::RequestArrive {
                    req: 5,
                    file: 1,
                    write: false,
                    bytes: 10,
                },
            ),
            ev(10, EventKind::RequestQueued { req: 5, node: 0 }),
            ev(
                20,
                EventKind::RpcHedge {
                    req: 900,
                    parent: 5,
                    node: 1,
                },
            ),
            ev(
                30,
                EventKind::RequestServe {
                    req: 900,
                    node: 1,
                    disk: 0,
                    from_buffer: true,
                },
            ),
            ev(
                40,
                EventKind::RpcComplete {
                    req: 5,
                    won_by_hedge: true,
                },
            ),
            ev(
                40,
                EventKind::RequestComplete {
                    req: 5,
                    response_us: 40,
                },
            ),
        ];
        let spans = reconstruct_spans(&events);
        assert_eq!(spans.len(), 1, "mirror must not become its own span");
        let s = &spans[0];
        assert_eq!(s.req, 5);
        assert_eq!(s.hedges, 1);
        assert!(s.hedge_won);
        assert_eq!(s.source, ServeSource::Buffer);
        assert_eq!(s.segments_sum(), s.total_us);
    }

    #[test]
    fn unserved_request_carries_unaccounted_remainder() {
        let events = vec![
            ev(
                0,
                EventKind::RequestArrive {
                    req: 1,
                    file: 2,
                    write: false,
                    bytes: 10,
                },
            ),
            ev(5, EventKind::RequestQueued { req: 1, node: 0 }),
            ev(
                100,
                EventKind::RequestComplete {
                    req: 1,
                    response_us: 100,
                },
            ),
        ];
        let spans = reconstruct_spans(&events);
        let s = &spans[0];
        assert_eq!(s.source, ServeSource::Unserved);
        assert_eq!(s.queue_us, 5);
        assert_eq!(s.unaccounted_us, 95);
        assert_eq!(s.segments_sum(), s.total_us);
    }

    #[test]
    fn residency_integrates_and_clips_to_window() {
        use PowerState::*;
        let events = vec![
            ev(
                1_000,
                EventKind::DiskTransition {
                    node: 0,
                    disk: 0,
                    from: Idle,
                    to: Active,
                },
            ),
            ev(
                5_000,
                EventKind::DiskTransition {
                    node: 0,
                    disk: 0,
                    from: Active,
                    to: Standby,
                },
            ),
            ev(
                9_000,
                EventKind::DiskTransition {
                    node: 0,
                    disk: 0,
                    from: Standby,
                    to: SpinningUp,
                },
            ),
        ];
        let t = ResidencyTable::from_events(&events, 2_000, 10_000);
        let r = t.disks.get(&(0, 0)).unwrap();
        // [2000,5000) Active (edge at 1000 predates the window), then
        // Standby to 9000, SpinningUp to the end.
        assert_eq!(r.active_us, 3_000);
        assert_eq!(r.standby_us, 4_000);
        assert_eq!(r.spinup_us, 1_000);
        assert_eq!(r.spin_ups, 1);
        assert_eq!(r.total_us(), 8_000);
    }

    #[test]
    fn reconstruction_is_deterministic() {
        let events = vec![
            ev(
                0,
                EventKind::RequestArrive {
                    req: 3,
                    file: 0,
                    write: false,
                    bytes: 1,
                },
            ),
            ev(
                9,
                EventKind::RequestComplete {
                    req: 3,
                    response_us: 9,
                },
            ),
        ];
        assert_eq!(reconstruct_spans(&events), reconstruct_spans(&events));
    }
}
