//! The energy attribution ledger: every joule of a run's
//! [`RunMetrics::total_energy_j`] apportioned to requests, nodes, and
//! power states — with each view **closed bit-exactly** against the
//! `RunMetrics` totals.
//!
//! ## The closure argument (DESIGN.md §14)
//!
//! Floating-point addition is not associative, so a ledger that
//! recomputes energy bottom-up (power × residency) can never promise
//! bit-equality with the driver's meters. Instead every view closes *by
//! construction*: rows that exist in `RunMetrics` are **exact copies**
//! (per-node meters, the SSD tier, the scrub meter), estimated rows are
//! derived from spans and residency, and each view ends in an explicit
//! **residual pair** — a main residual `parent − fold(other rows)` plus
//! a sub-ULP `rounding-carry` row computed exactly via Sterbenz's lemma
//! — so that re-folding the rows in ledger order reproduces the parent
//! bit-for-bit (`closing_residual`, private). The main
//! residual is not error swept under a rug — it is itself meaningful
//! (the server disk's idle draw in the disk view, the meter-vs-model gap
//! in the power-state view) and [`EnergyLedger::verify_closure`] bounds
//! it where theory says it must be small.
//!
//! What the verifier then attests — on every chaos scenario and under
//! the proptest plane — is the conjunction of: exact-copy rows match
//! `RunMetrics` bit-for-bit, every fold closes bit-exactly, request
//! shares are finite, non-negative, and never over-allocate
//! (`unattributed ≥ 0`), and the per-node/SSD semantic identities hold.

use crate::span::{RequestSpan, ResidencyTable, ServeSource};
use disk_model::{DiskSpec, PowerState};
use eevfs::config::ClusterSpec;
use eevfs::RunMetrics;
use serde::{Deserialize, Serialize};

/// One named row of a ledger view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerRow {
    /// Stable row name (deterministic order within its view).
    pub name: String,
    /// Joules attributed to this row.
    pub joules: f64,
}

/// The joules one request carries out of the attribution pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestShare {
    /// Request ID.
    pub req: u64,
    /// File the request touched.
    pub file: u64,
    /// Serving node, when observed.
    pub node: Option<u32>,
    /// Request size in bytes.
    pub bytes: u64,
    /// Attributed joules: the request's share of its node's disk pool
    /// (active transfer + spin-up transient) or of the SSD tier's draw.
    pub joules: f64,
}

/// Per-state power draw of one disk, watts.
#[derive(Debug, Clone, Copy)]
struct StatePowers {
    active_w: f64,
    idle_w: f64,
    standby_w: f64,
    spinup_w: f64,
    spindown_w: f64,
}

impl StatePowers {
    fn of(spec: &DiskSpec) -> StatePowers {
        StatePowers {
            active_w: spec.p_active_w,
            idle_w: spec.p_idle_w,
            standby_w: spec.p_standby_w,
            spinup_w: spec.p_spinup_w,
            spindown_w: spec.p_spindown_w,
        }
    }

    fn power(&self, state: PowerState) -> f64 {
        match state {
            PowerState::Active => self.active_w,
            PowerState::Idle => self.idle_w,
            PowerState::Standby => self.standby_w,
            PowerState::SpinningUp => self.spinup_w,
            PowerState::SpinningDown => self.spindown_w,
        }
    }
}

/// The watt model attribution prices spans against, extracted from the
/// cluster spec the run used.
#[derive(Debug, Clone)]
pub struct AttributionModel {
    nodes: Vec<NodePowers>,
}

#[derive(Debug, Clone)]
struct NodePowers {
    buffer: StatePowers,
    data: Vec<StatePowers>,
}

impl AttributionModel {
    /// Builds the model from the cluster spec (pure; no defaults hidden
    /// inside — attribution must price spans with the same constants the
    /// simulator metered).
    pub fn from_cluster(cluster: &ClusterSpec) -> AttributionModel {
        AttributionModel {
            nodes: cluster
                .nodes
                .iter()
                .map(|n| NodePowers {
                    buffer: StatePowers::of(&n.buffer_disk),
                    data: n.data_disks.iter().map(StatePowers::of).collect(),
                })
                .collect(),
        }
    }

    /// Power of `(node, disk)` in `state`; `disk == u32::MAX` addresses
    /// the buffer disk. Unknown coordinates price at zero (they then
    /// land in the residual row instead of inventing joules).
    fn power(&self, node: u32, disk: u32, state: PowerState) -> f64 {
        let Some(n) = self.nodes.get(node as usize) else {
            return 0.0;
        };
        if disk == u32::MAX {
            return n.buffer.power(state);
        }
        n.data
            .get(disk as usize)
            .map(|d| d.power(state))
            .unwrap_or(0.0)
    }
}

/// The closed ledger over one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Exact copy of [`RunMetrics::total_energy_j`].
    pub total_j: f64,
    /// Exact copy of [`RunMetrics::disk_energy_j`].
    pub disk_j: f64,
    /// Exact copy of [`RunMetrics::base_energy_j`].
    pub base_j: f64,
    /// Exact copy of [`RunMetrics::scrub_energy_j`] (overlay meter: the
    /// integrity work's joules are *also* inside the disk/base rows).
    pub scrub_j: f64,
    /// Exact copy of the prefetch warm-up energy, which the paper — and
    /// therefore `total_j` — excludes.
    pub warmup_j: f64,
    /// Disk view: per-node disk meters, the SSD tier, then the
    /// server-disk residual. Folds to `disk_j` bit-exactly.
    pub disk_rows: Vec<LedgerRow>,
    /// Base view: per-node base meters, then the server-base residual.
    /// Folds to `base_j` bit-exactly.
    pub base_rows: Vec<LedgerRow>,
    /// Power-state view: residency × spec watts per state, the base
    /// power and SSD rows copied exactly, then the meter-model residual.
    /// Folds to `total_j` bit-exactly.
    pub state_rows: Vec<LedgerRow>,
    /// Request view, in span order (request-ID order).
    pub requests: Vec<RequestShare>,
    /// Joules attribution assigned to requests: `fold(requests)`.
    pub attributed_j: f64,
    /// Joules no request caused (idle residency, base power, scrub,
    /// residuals): closes the request view to `total_j` together with
    /// [`carry_j`](EnergyLedger::carry_j).
    pub unattributed_j: f64,
    /// Sub-ULP rounding carry of the request view:
    /// `(attributed + unattributed) + carry == total` bit-exactly.
    /// Usually 0.0; never larger than one ULP of `total_j`.
    pub carry_j: f64,
}

/// Left-fold in row order — THE summation order every closure check and
/// re-reader must use.
fn fold(values: impl Iterator<Item = f64>) -> f64 {
    values.fold(0.0, |acc, x| acc + x)
}

/// The residual pair that closes a view bit-exactly: a main residual
/// `r = fl(parent − partial)` plus a sub-ULP rounding carry
/// `c = parent − fl(partial + r)`.
///
/// No *single* float can always close a fold — when `partial ≪ parent`,
/// round-to-nearest-even can make `fl(partial + r)` skip over `parent`
/// for every representable `r`. The pair is guaranteed: `fl(partial+r)`
/// lands within one ULP of `parent`, so their difference is computed
/// **exactly** (Sterbenz's lemma — the operands are within a factor of
/// two), and `fl(fl(partial + r) + c) = fl(parent) = parent` holds
/// bit-for-bit. The carry is 0.0 in the common case and never exceeds an
/// ULP of the parent.
fn closing_residual(parent: f64, partial: f64) -> (f64, f64) {
    let r = parent - partial;
    let v = partial + r;
    if v == parent {
        return (r, 0.0);
    }
    (r, parent - v)
}

/// Builds the closed ledger for one observed run.
///
/// Attribution policy, per request: a disk-served request's raw cost is
/// `transfer × p_active` of its serving disk plus `spinup_wait ×
/// p_spinup` when it woke a drive; raw costs are scaled down (never up)
/// so a node's requests can never claim more than that node's metered
/// disk energy. SSD-tier hits split the SSD meter by bytes served.
/// DRAM hits cost zero disk joules (DRAM draw lives in base power).
/// Everything unclaimed — idle/standby residency, base power, scrub
/// overhead, hedging losers' duplicate work — stays in `unattributed_j`.
pub fn build_ledger(
    metrics: &RunMetrics,
    spans: &[RequestSpan],
    residency: &ResidencyTable,
    model: &AttributionModel,
) -> EnergyLedger {
    // --- disk + base views: exact per-node copies, residual closes. ---
    let mut disk_rows: Vec<LedgerRow> = Vec::with_capacity(metrics.per_node.len() + 2);
    let mut base_rows: Vec<LedgerRow> = Vec::with_capacity(metrics.per_node.len() + 1);
    for (i, n) in metrics.per_node.iter().enumerate() {
        disk_rows.push(LedgerRow {
            name: format!("n{i}.disks"),
            joules: n.buffer_disk_energy_j + n.data_disk_energy_j,
        });
        base_rows.push(LedgerRow {
            name: format!("n{i}.base"),
            joules: n.base_energy_j,
        });
    }
    disk_rows.push(LedgerRow {
        name: "ssd-tier".into(),
        joules: metrics.tier.ssd_energy_j,
    });
    let disk_partial = fold(disk_rows.iter().map(|r| r.joules));
    let (disk_residual, disk_carry) = closing_residual(metrics.disk_energy_j, disk_partial);
    disk_rows.push(LedgerRow {
        name: "server-disk".into(),
        joules: disk_residual,
    });
    disk_rows.push(LedgerRow {
        name: "rounding-carry".into(),
        joules: disk_carry,
    });
    let base_partial = fold(base_rows.iter().map(|r| r.joules));
    let (base_residual, base_carry) = closing_residual(metrics.base_energy_j, base_partial);
    base_rows.push(LedgerRow {
        name: "server-base".into(),
        joules: base_residual,
    });
    base_rows.push(LedgerRow {
        name: "rounding-carry".into(),
        joules: base_carry,
    });

    // --- power-state view: residency × spec watts, residual closes. ---
    let mut by_state = [0.0f64; 5];
    for (&(node, disk), r) in &residency.disks {
        let charge =
            |state: PowerState, us: u64| model.power(node, disk, state) * (us as f64 / 1e6);
        by_state[0] += charge(PowerState::Active, r.active_us);
        by_state[1] += charge(PowerState::Idle, r.idle_us);
        by_state[2] += charge(PowerState::Standby, r.standby_us);
        by_state[3] += charge(PowerState::SpinningUp, r.spinup_us);
        by_state[4] += charge(PowerState::SpinningDown, r.spindown_us);
    }
    let mut state_rows = vec![
        LedgerRow {
            name: "disks-active".into(),
            joules: by_state[0],
        },
        LedgerRow {
            name: "disks-idle".into(),
            joules: by_state[1],
        },
        LedgerRow {
            name: "disks-standby".into(),
            joules: by_state[2],
        },
        LedgerRow {
            name: "disks-spinup".into(),
            joules: by_state[3],
        },
        LedgerRow {
            name: "disks-spindown".into(),
            joules: by_state[4],
        },
        LedgerRow {
            name: "base-power".into(),
            joules: metrics.base_energy_j,
        },
        LedgerRow {
            name: "ssd-tier".into(),
            joules: metrics.tier.ssd_energy_j,
        },
    ];
    let state_partial = fold(state_rows.iter().map(|r| r.joules));
    let (state_residual, state_carry) = closing_residual(metrics.total_energy_j, state_partial);
    state_rows.push(LedgerRow {
        name: "meter-residual".into(),
        joules: state_residual,
    });
    state_rows.push(LedgerRow {
        name: "rounding-carry".into(),
        joules: state_carry,
    });

    // --- request view: raw watt-priced costs, capped per node pool. ---
    let nodes = metrics.per_node.len();
    let mut raw: Vec<f64> = Vec::with_capacity(spans.len());
    let mut node_raw = vec![0.0f64; nodes];
    let mut ssd_weight: Vec<u64> = Vec::with_capacity(spans.len());
    let mut ssd_total_weight: u64 = 0;
    for s in spans {
        let mut j = 0.0;
        let mut w = 0u64;
        if let Some(node) = s.node {
            match s.source {
                ServeSource::Buffer | ServeSource::Data => {
                    let disk = s.disk.unwrap_or(u32::MAX);
                    j = model.power(node, disk, PowerState::Active) * (s.transfer_us as f64 / 1e6)
                        + model.power(node, disk, PowerState::SpinningUp)
                            * (s.spinup_us as f64 / 1e6);
                    if let Some(n) = node_raw.get_mut(node as usize) {
                        *n += j;
                    }
                }
                ServeSource::Ssd => {
                    // Weight by bytes; a zero-byte request still weighs 1
                    // so the SSD pool cannot strand on degenerate sizes.
                    w = s.bytes.max(1);
                    ssd_total_weight += w;
                }
                ServeSource::Dram | ServeSource::Unserved => {}
            }
        }
        raw.push(j);
        ssd_weight.push(w);
    }
    let scale: Vec<f64> = (0..nodes)
        .map(|i| {
            let pool =
                metrics.per_node[i].buffer_disk_energy_j + metrics.per_node[i].data_disk_energy_j;
            if node_raw[i] > pool && node_raw[i] > 0.0 {
                pool / node_raw[i]
            } else {
                1.0
            }
        })
        .collect();
    let requests: Vec<RequestShare> = spans
        .iter()
        .zip(raw.iter().zip(&ssd_weight))
        .map(|(s, (&j, &w))| {
            let scaled = match s.node {
                Some(n) => j * scale.get(n as usize).copied().unwrap_or(1.0),
                None => j,
            };
            let ssd_share = if w > 0 && ssd_total_weight > 0 {
                metrics.tier.ssd_energy_j * (w as f64 / ssd_total_weight as f64)
            } else {
                0.0
            };
            RequestShare {
                req: s.req,
                file: s.file,
                node: s.node,
                bytes: s.bytes,
                joules: scaled + ssd_share,
            }
        })
        .collect();
    let attributed_j = fold(requests.iter().map(|r| r.joules));
    let (unattributed_j, carry_j) = closing_residual(metrics.total_energy_j, attributed_j);

    EnergyLedger {
        total_j: metrics.total_energy_j,
        disk_j: metrics.disk_energy_j,
        base_j: metrics.base_energy_j,
        scrub_j: metrics.scrub_energy_j,
        warmup_j: metrics.prefetch.energy_j,
        disk_rows,
        base_rows,
        state_rows,
        requests,
        attributed_j,
        unattributed_j,
        carry_j,
    }
}

fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

impl EnergyLedger {
    /// The hard invariant the chaos plane and the proptests attest: the
    /// ledger sums bit-exactly to the `RunMetrics` totals.
    ///
    /// Checks, in order: every exact-copy row matches `metrics`
    /// bit-for-bit; `disk + base == total` exactly (the driver's own
    /// identity); each view re-folds to its parent bit-exactly; request
    /// shares are finite, non-negative, and never over-allocate; all
    /// rows are finite.
    pub fn verify_closure(&self, metrics: &RunMetrics) -> Result<(), String> {
        // Exact copies.
        let copies = [
            ("total", self.total_j, metrics.total_energy_j),
            ("disk", self.disk_j, metrics.disk_energy_j),
            ("base", self.base_j, metrics.base_energy_j),
            ("scrub", self.scrub_j, metrics.scrub_energy_j),
            ("warmup", self.warmup_j, metrics.prefetch.energy_j),
        ];
        for (name, ours, theirs) in copies {
            if !bits_eq(ours, theirs) {
                return Err(format!("{name} copy {ours} != RunMetrics {theirs}"));
            }
        }
        // The driver's own total identity, bit-exact.
        if !bits_eq(self.disk_j + self.base_j, self.total_j) {
            return Err(format!(
                "disk {} + base {} != total {}",
                self.disk_j, self.base_j, self.total_j
            ));
        }
        // View folds.
        let views = [
            ("disk view", &self.disk_rows, self.disk_j),
            ("base view", &self.base_rows, self.base_j),
            ("state view", &self.state_rows, self.total_j),
        ];
        for (name, rows, parent) in views {
            let sum = fold(rows.iter().map(|r| r.joules));
            if !bits_eq(sum, parent) {
                return Err(format!("{name} folds to {sum}, parent is {parent}"));
            }
            if let Some(bad) = rows.iter().find(|r| !r.joules.is_finite()) {
                return Err(format!("{name} row {} is {}", bad.name, bad.joules));
            }
        }
        // Per-node rows mirror the metrics bit-for-bit.
        for (i, n) in metrics.per_node.iter().enumerate() {
            let disk_row = self
                .disk_rows
                .get(i)
                .ok_or_else(|| format!("missing disk row for node {i}"))?;
            if !bits_eq(
                disk_row.joules,
                n.buffer_disk_energy_j + n.data_disk_energy_j,
            ) {
                return Err(format!("disk row n{i} diverges from the node meter"));
            }
            let base_row = self
                .base_rows
                .get(i)
                .ok_or_else(|| format!("missing base row for node {i}"))?;
            if !bits_eq(base_row.joules, n.base_energy_j) {
                return Err(format!("base row n{i} diverges from the node meter"));
            }
        }
        // Request view: closed, finite, non-negative, never over-allocated.
        let attributed = fold(self.requests.iter().map(|r| r.joules));
        if !bits_eq(attributed, self.attributed_j) {
            return Err(format!(
                "request fold {attributed} != recorded attributed {}",
                self.attributed_j
            ));
        }
        if !bits_eq(
            (self.attributed_j + self.unattributed_j) + self.carry_j,
            self.total_j,
        ) {
            return Err(format!(
                "attributed {} + unattributed {} + carry {} != total {}",
                self.attributed_j, self.unattributed_j, self.carry_j, self.total_j
            ));
        }
        // The carry is a rounding artifact, not a place to hide energy.
        if !self.carry_j.is_finite() || self.carry_j.abs() > self.total_j.abs() * 1e-12 {
            return Err(format!("rounding carry {} is not sub-ULP", self.carry_j));
        }
        if let Some(bad) = self
            .requests
            .iter()
            .find(|r| !r.joules.is_finite() || r.joules < 0.0)
        {
            return Err(format!("request {} share is {}", bad.req, bad.joules));
        }
        if !self.unattributed_j.is_finite() || self.unattributed_j < 0.0 {
            return Err(format!(
                "attribution over-allocated: unattributed pool is {}",
                self.unattributed_j
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::span::reconstruct_spans;
    use eevfs::config::EevfsConfig;
    use eevfs::driver::run_cluster_observed;
    use eevfs_obs::{Recorder, TraceEvent};
    use fault_model::FaultPlan;
    use workload::synthetic::{generate, SyntheticSpec};

    fn observed_ledger(requests: u32, seed: u64) -> (RunMetrics, EnergyLedger) {
        let trace = generate(&SyntheticSpec {
            requests,
            seed,
            ..SyntheticSpec::paper_default()
        });
        let cluster = ClusterSpec::paper_testbed();
        let (metrics, report) = run_cluster_observed(
            &cluster,
            &EevfsConfig::paper_pf(70),
            &trace,
            &FaultPlan::none(),
            None,
            Recorder::default(),
        );
        let events: Vec<TraceEvent> = report.recorder.events().cloned().collect();
        let spans = reconstruct_spans(&events);
        assert_eq!(spans.len() as u32, requests);
        let warmup_us = metrics.prefetch.warmup_us;
        let end_us = warmup_us + (metrics.duration_s * 1e6).round() as u64;
        let residency = ResidencyTable::from_events(&events, warmup_us, end_us);
        let model = AttributionModel::from_cluster(&cluster);
        let ledger = build_ledger(&metrics, &spans, &residency, &model);
        (metrics, ledger)
    }

    #[test]
    fn ledger_closes_bit_exactly_on_the_paper_workload() {
        let (metrics, ledger) = observed_ledger(120, 7);
        ledger.verify_closure(&metrics).unwrap();
        // The run does real work, so some energy must be attributed…
        assert!(ledger.attributed_j > 0.0);
        // …but base power and idle residency dominate a PF run.
        assert!(ledger.unattributed_j > ledger.attributed_j);
    }

    #[test]
    fn ledger_is_deterministic() {
        let (_, a) = observed_ledger(60, 11);
        let (_, b) = observed_ledger(60, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn closure_detects_tampering() {
        let (metrics, mut ledger) = observed_ledger(40, 3);
        ledger.requests[0].joules += 0.5;
        assert!(ledger.verify_closure(&metrics).is_err());
    }

    #[test]
    fn closing_residual_closes_hard_cases() {
        for (parent, partial) in [
            (1.0e9, 1.0e9 - 1.0),
            (0.1 + 0.2, 0.1),
            (5.0e5, 3.0),
            (0.0, 0.0),
            (7.25e4, 7.24999e4),
            // From a real chaos campaign: no single residual closes this
            // pair (round-to-nearest-even skips the parent), so the
            // carry must be non-zero.
            (99408.28702529999, 1463.068944999999),
            (43249.7785198, 1393.2988159999986),
        ] {
            let (r, c) = closing_residual(parent, partial);
            assert_eq!(
                ((partial + r) + c).to_bits(),
                parent.to_bits(),
                "parent {parent}, partial {partial}"
            );
            assert!(
                c.abs() <= parent.abs() * 1e-12,
                "carry {c} not sub-ULP of {parent}"
            );
        }
    }
}
