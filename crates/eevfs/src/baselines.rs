//! Baseline configurations from the paper's related-work section (§II),
//! used by the ablation benchmarks.

use crate::config::{BufferPolicy, EevfsConfig, PlacementPolicy, PowerPolicy};
use sim_core::SimDuration;

/// EEVFS with prefetching — the paper's PF line.
pub fn pf(k: u32) -> EevfsConfig {
    EevfsConfig::paper_pf(k)
}

/// EEVFS without prefetching — the paper's NPF line.
pub fn npf() -> EevfsConfig {
    EevfsConfig::paper_npf()
}

/// MAID-style disk-as-cache [Colarelli & Grunwald]: on-demand LRU caching
/// into the buffer disk, classic idle-timer power management, no
/// popularity prefetching. The paper's §II contrast: "MAID caches blocks
/// that are stored in a LRU order. Our strategy attempts to analyze
/// requests['] look-ahead window".
pub fn maid(capacity_bytes: u64) -> EevfsConfig {
    EevfsConfig {
        buffer: BufferPolicy::MaidLru { capacity_bytes },
        power: PowerPolicy::IdleTimer,
        ..EevfsConfig::paper_npf()
    }
}

/// PDC-style popular data concentration [Pinheiro & Bianchini]: hot files
/// packed onto the first disks, per-disk idle timers, no buffer disk.
pub fn pdc() -> EevfsConfig {
    EevfsConfig {
        placement: PlacementPolicy::PdcConcentration,
        power: PowerPolicy::IdleTimer,
        ..EevfsConfig::paper_npf()
    }
}

/// Energy-oblivious cluster file system (the PVFS/Lustre contrast): no
/// caching, no power management, plain round-robin placement.
pub fn energy_oblivious() -> EevfsConfig {
    EevfsConfig {
        buffer: BufferPolicy::None,
        power: PowerPolicy::None,
        placement: PlacementPolicy::PlainRoundRobin,
        write_buffer: false,
        ..EevfsConfig::paper_npf()
    }
}

/// EEVFS-PF with application hints disabled (§IV-C ablation): the node
/// falls back to waiting out the idle threshold before each spin-down.
pub fn pf_without_hints(k: u32) -> EevfsConfig {
    EevfsConfig {
        hints: false,
        ..EevfsConfig::paper_pf(k)
    }
}

/// EEVFS-PF with intra-node striping (§VII future work).
pub fn pf_striped(k: u32) -> EevfsConfig {
    EevfsConfig::paper_pf_striped(k)
}

/// EEVFS-PF with a custom idle threshold (§VI-B: "the idle threshold can
/// be increased to prevent disks from transitioning frequently").
pub fn pf_with_threshold(k: u32, threshold: SimDuration) -> EevfsConfig {
    EevfsConfig {
        idle_threshold: threshold,
        ..EevfsConfig::paper_pf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maid_uses_lru_and_timers() {
        let c = maid(1 << 30);
        assert!(
            matches!(c.buffer, BufferPolicy::MaidLru { capacity_bytes } if capacity_bytes == 1 << 30)
        );
        assert_eq!(c.power, PowerPolicy::IdleTimer);
        assert_eq!(c.prefetch_k(), 0);
    }

    #[test]
    fn pdc_concentrates() {
        let c = pdc();
        assert_eq!(c.placement, PlacementPolicy::PdcConcentration);
        assert!(!c.caching_enabled());
    }

    #[test]
    fn energy_oblivious_is_fully_off() {
        let c = energy_oblivious();
        assert_eq!(c.power, PowerPolicy::None);
        assert!(!c.write_buffer);
        assert!(!c.caching_enabled());
    }

    #[test]
    fn hint_ablation_only_flips_hints() {
        let with = pf(70);
        let without = pf_without_hints(70);
        assert!(with.hints && !without.hints);
        assert_eq!(with.buffer, without.buffer);
        assert_eq!(with.power, without.power);
    }

    #[test]
    fn striped_flag_set() {
        assert!(pf_striped(70).striping);
        assert!(!pf(70).striping);
    }

    #[test]
    fn threshold_override() {
        let c = pf_with_threshold(70, SimDuration::from_secs(30));
        assert_eq!(c.idle_threshold, SimDuration::from_secs(30));
    }
}
