//! # eevfs — Energy Efficient Virtual File System
//!
//! Reproduction of the system contributed by *"Energy Efficient
//! Prefetching with Buffer Disks for Cluster File Systems"* (ICPP 2010).
//!
//! EEVFS is a cluster file system that trades a little response time for a
//! lot of disk energy. A central **storage server** keeps coarse metadata
//! (file → storage node) and performs popularity-aware placement; each
//! **storage node** manages one always-on **buffer disk** plus several
//! **data disks**, prefetches the most popular files into the buffer disk,
//! and uses the expected access pattern to spin data disks down to standby
//! through predicted idle windows.
//!
//! The crate is organised around the paper's sections:
//!
//! | Paper | Module |
//! |---|---|
//! | §III-A system architecture, Table I testbed | [`config`] |
//! | §III-B / §IV-A data placement & process flow | [`placement`], [`server`] |
//! | §III-C power management | [`power`] |
//! | §IV-B prefetching | [`prefetch`], [`buffer`] |
//! | §IV-C application hints | [`power`] (hint source) |
//! | §IV-D distributed metadata | [`metadata`] |
//! | §V metrics | [`metrics`] |
//! | §VI experiments (the whole cluster in motion) | [`driver`] |
//! | §II baselines (MAID, PDC, plain DPM) | [`baselines`] |
//!
//! Beyond the paper, the durability layer adds a buffer-disk write-ahead
//! journal ([`journal`]) and an energy-aware scrubber ([`scrub`]) driven
//! by seeded corruption/crash plans from `fault_model::durability`.
//!
//! # Quick start
//!
//! ```
//! use eevfs::config::{ClusterSpec, EevfsConfig};
//! use eevfs::driver::run_cluster;
//! use workload::synthetic::{generate, SyntheticSpec};
//!
//! let trace = generate(&SyntheticSpec { requests: 50, ..SyntheticSpec::paper_default() });
//! let cluster = ClusterSpec::paper_testbed();
//!
//! let pf = run_cluster(&cluster, &EevfsConfig::paper_pf(70), &trace);
//! let npf = run_cluster(&cluster, &EevfsConfig::paper_npf(), &trace);
//! assert!(pf.total_energy_j <= npf.total_energy_j * 1.001);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod buffer;
pub mod config;
pub mod driver;
pub mod journal;
pub mod metadata;
pub mod metrics;
pub mod overload;
pub mod placement;
pub mod power;
pub mod prefetch;
pub mod replication;
pub mod scrub;
pub mod server;

pub use config::{ClusterSpec, EevfsConfig, NodeSpec};
pub use driver::{
    run_cluster, run_cluster_powered, run_cluster_powered_observed, try_run_cluster_chaos,
    ChaosSetup, DriverError,
};
pub use metrics::RunMetrics;
