//! Energy-aware prefetch planning (§IV-B, PRE-BUD lineage).
//!
//! The storage server ranks files by popularity and instructs storage
//! nodes to copy the global top-K into their buffer disks. Planning also
//! runs the paper's "energy prediction model" (§III-C): from the expected
//! access pattern it derives the idle windows prefetching would create and
//! estimates the joules a run would save. When the estimate is negative
//! the server tells nodes not to bother — "if there are none then EEVFS
//! will not place disks into the standby state" (§IV-C).

use crate::config::EevfsConfig;
use crate::placement::PlacementPlan;
use disk_model::breakeven::sleep_benefit_joules;
use disk_model::DiskSpec;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};
use workload::lookahead::idle_windows;
use workload::popularity::PopularityTable;
use workload::record::{FileId, Op, Trace};

/// The prefetch directive the server sends each node (§IV-A step 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefetchPlan {
    /// The global prefetch set, by descending popularity.
    pub files: Vec<FileId>,
    /// Per-node slices of the set (files each node hosts), popularity
    /// order — the order the node streams them into its buffer disk.
    pub per_node: Vec<Vec<FileId>>,
    /// Files that did not fit in their node's buffer disk.
    pub dropped: Vec<FileId>,
}

impl PrefetchPlan {
    /// An empty plan (NPF).
    pub fn empty(n_nodes: usize) -> Self {
        PrefetchPlan {
            files: Vec::new(),
            per_node: vec![Vec::new(); n_nodes],
            dropped: Vec::new(),
        }
    }

    /// Total bytes the plan will copy.
    pub fn planned_bytes(&self, sizes: &[u64]) -> u64 {
        self.files.iter().map(|f| sizes[f.index()]).sum()
    }

    /// Fast membership test table over the file population.
    pub fn membership(&self, files: usize) -> Vec<bool> {
        let mut m = vec![false; files];
        for f in &self.files {
            m[f.index()] = true;
        }
        m
    }
}

/// Plans a top-K prefetch, respecting each node's buffer capacity.
///
/// `buffer_capacity[n]` is the byte budget of node `n`'s buffer disk
/// (minus any write-buffer reservation the caller makes). Files that do
/// not fit are dropped, never spilled to other nodes — a copy on the wrong
/// node could not serve requests, since the server routes by file.
pub fn plan_topk(
    k: u32,
    popularity: &PopularityTable,
    placement: &PlacementPlan,
    sizes: &[u64],
    buffer_capacity: &[u64],
) -> PrefetchPlan {
    let n_nodes = buffer_capacity.len();
    let mut per_node: Vec<Vec<FileId>> = vec![Vec::new(); n_nodes];
    let mut used = vec![0u64; n_nodes];
    let mut files = Vec::new();
    let mut dropped = Vec::new();
    for &f in popularity.top_k(k as usize) {
        let node = placement.node_of_file[f.index()] as usize;
        let size = sizes[f.index()];
        if used[node] + size <= buffer_capacity[node] {
            used[node] += size;
            per_node[node].push(f);
            files.push(f);
        } else {
            dropped.push(f);
        }
    }
    PrefetchPlan {
        files,
        per_node,
        dropped,
    }
}

/// Outcome of the energy prediction model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenefitReport {
    /// Predicted joules saved by sleeping through every window the policy
    /// would act on (gross of prefetch cost).
    pub predicted_window_benefit_j: f64,
    /// Predicted extra joules spent copying the prefetch set.
    pub prefetch_cost_j: f64,
    /// Number of actionable windows found.
    pub windows: usize,
    /// Whether power management should engage at all.
    pub worthwhile: bool,
}

impl BenefitReport {
    /// Net predicted joules saved.
    pub fn net_j(&self) -> f64 {
        self.predicted_window_benefit_j - self.prefetch_cost_j
    }
}

/// Runs the energy prediction model over the expected pattern.
///
/// For each data disk, the predicted *physical* touch times are the
/// arrivals of requests that prefetching will not absorb; the gaps longer
/// than the idle threshold are sleep candidates whose benefit is summed
/// with [`sleep_benefit_joules`]. Prefetch cost models the extra active
/// time on data and buffer disks ((p_active − p_idle) × transfer time per
/// copy).
/// `data_disk_specs` and `buffer_specs` are generic over ownership so
/// callers can pass either owned tables (`Vec<Vec<DiskSpec>>`, tests) or
/// views borrowed straight from a [`ClusterSpec`](crate::config::ClusterSpec)
/// (`Vec<&[DiskSpec]>` / `Vec<&DiskSpec>`, the driver) without cloning a
/// spec per run.
pub fn predict_benefit<D, B>(
    trace: &Trace,
    placement: &PlacementPlan,
    plan: &PrefetchPlan,
    data_disk_specs: &[D],
    buffer_specs: &[B],
    cfg: &EevfsConfig,
) -> BenefitReport
where
    D: AsRef<[DiskSpec]>,
    B: std::borrow::Borrow<DiskSpec>,
{
    let member = plan.membership(trace.file_count());
    // Collect per-disk predicted physical touch times.
    let n_nodes = data_disk_specs.len();
    let mut touches: Vec<Vec<Vec<SimTime>>> = data_disk_specs
        .iter()
        .map(|disks| vec![Vec::new(); disks.as_ref().len()])
        .collect();
    for r in &trace.records {
        let absorbed = match r.op {
            Op::Read => member[r.file.index()],
            Op::Write => cfg.write_buffer,
        };
        if absorbed {
            continue;
        }
        let node = placement.node_of_file[r.file.index()] as usize;
        let disk = placement.disk_of_file[r.file.index()] as usize;
        touches[node][disk].push(r.at);
    }

    let horizon = trace.end_time();
    let mut benefit = 0.0;
    let mut windows = 0usize;
    for node in 0..n_nodes {
        for (disk, spec) in data_disk_specs[node].as_ref().iter().enumerate() {
            let ws = idle_windows(
                &touches[node][disk],
                SimTime::ZERO,
                horizon,
                cfg.idle_threshold,
            );
            windows += ws.len();
            for w in &ws {
                benefit += sleep_benefit_joules(spec, w.len());
            }
        }
    }

    // Prefetch copy cost: read on the data disk + write on the buffer disk.
    let mut cost = 0.0;
    for (node, files) in plan.per_node.iter().enumerate() {
        for &f in files {
            let size = trace.file_sizes[f.index()];
            let disk = placement.disk_of_file[f.index()] as usize;
            let dspec = &data_disk_specs[node].as_ref()[disk];
            let bspec = buffer_specs[node].borrow();
            let read_s = size as f64 / dspec.bandwidth_bps as f64;
            let write_s = size as f64 / bspec.bandwidth_bps as f64;
            cost += read_s * (dspec.p_active_w - dspec.p_idle_w)
                + write_s * (bspec.p_active_w - bspec.p_idle_w);
        }
    }

    BenefitReport {
        predicted_window_benefit_j: benefit,
        prefetch_cost_j: cost,
        windows,
        worthwhile: benefit - cost > 0.0,
    }
}

/// Convenience: threshold used when deciding whether a *single* window is
/// worth a transition pair (the paper raises the idle threshold to avoid
/// "a small amount of energy savings \[that\] may not be worth the stress").
pub fn min_worthwhile_window(spec: &DiskSpec, threshold: SimDuration) -> SimDuration {
    threshold.max(disk_model::breakeven_time(spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlacementPolicy;
    use crate::placement::place;
    use workload::synthetic::{generate, SyntheticSpec};

    fn setup(mu: f64, k: u32) -> (Trace, PopularityTable, PlacementPlan, PrefetchPlan) {
        let trace = generate(&SyntheticSpec {
            mu,
            files: 100,
            requests: 200,
            ..SyntheticSpec::paper_default()
        });
        let pop = PopularityTable::from_trace(&trace);
        let plan = place(PlacementPolicy::PopularityRoundRobin, &pop, &[2; 4]);
        let capacity = vec![80_000_000_000u64; 4];
        let pf = plan_topk(k, &pop, &plan, &trace.file_sizes, &capacity);
        (trace, pop, plan, pf)
    }

    #[test]
    fn plan_topk_groups_by_owner() {
        let (_, pop, plan, pf) = setup(10.0, 8);
        assert_eq!(pf.files.len(), 8);
        assert!(pf.dropped.is_empty());
        for (node, files) in pf.per_node.iter().enumerate() {
            for f in files {
                assert_eq!(plan.node_of_file[f.index()] as usize, node);
            }
        }
        // The union of per-node lists is the global set.
        let total: usize = pf.per_node.iter().map(|v| v.len()).sum();
        assert_eq!(total, 8);
        // Set contents are the popularity top-8.
        assert_eq!(pf.files, pop.top_k(8));
    }

    #[test]
    fn capacity_limits_drop_files() {
        let (trace, pop, plan, _) = setup(10.0, 8);
        // Tiny buffers: only one 10 MB file fits per node.
        let pf = plan_topk(8, &pop, &plan, &trace.file_sizes, &[10_000_000u64; 4]);
        assert!(pf.files.len() <= 4, "kept {}", pf.files.len());
        assert_eq!(pf.files.len() + pf.dropped.len(), 8);
        for node in 0..4 {
            assert!(pf.per_node[node].len() <= 1);
        }
    }

    #[test]
    fn membership_table() {
        let (trace, _, _, pf) = setup(10.0, 8);
        let m = pf.membership(trace.file_count());
        assert_eq!(m.iter().filter(|&&b| b).count(), pf.files.len());
        for f in &pf.files {
            assert!(m[f.index()]);
        }
    }

    #[test]
    fn zero_k_is_empty_plan() {
        let (_, pop, plan, _) = setup(10.0, 0);
        let pf = plan_topk(0, &pop, &plan, &vec![1; 100], &[1000; 4]);
        assert!(pf.files.is_empty());
        assert!(pf.dropped.is_empty());
        let _ = (pop, plan);
    }

    #[test]
    fn benefit_grows_with_coverage() {
        let (trace, pop, plan, _) = setup(10.0, 0);
        let specs: Vec<Vec<DiskSpec>> = vec![vec![DiskSpec::ata133_type1(); 2]; 4];
        let buffers = vec![DiskSpec::ata133_type1(); 4];
        let cfg = EevfsConfig::paper_pf(0);
        let capacity = vec![80_000_000_000u64; 4];

        let small = plan_topk(2, &pop, &plan, &trace.file_sizes, &capacity);
        let large = plan_topk(50, &pop, &plan, &trace.file_sizes, &capacity);
        let b_small = predict_benefit(&trace, &plan, &small, &specs, &buffers, &cfg);
        let b_large = predict_benefit(&trace, &plan, &large, &specs, &buffers, &cfg);
        assert!(
            b_large.predicted_window_benefit_j > b_small.predicted_window_benefit_j,
            "large {} <= small {}",
            b_large.predicted_window_benefit_j,
            b_small.predicted_window_benefit_j
        );
        assert!(b_large.prefetch_cost_j > b_small.prefetch_cost_j);
    }

    #[test]
    fn full_coverage_at_small_mu_is_worthwhile() {
        // MU=10 over 100 files: the top-50 prefetch absorbs everything;
        // every disk sleeps the whole trace.
        let (trace, pop, plan, pf) = setup(10.0, 50);
        let specs: Vec<Vec<DiskSpec>> = vec![vec![DiskSpec::ata133_type1(); 2]; 4];
        let buffers = vec![DiskSpec::ata133_type1(); 4];
        let cfg = EevfsConfig::paper_pf(50);
        let report = predict_benefit(&trace, &plan, &pf, &specs, &buffers, &cfg);
        assert!(report.worthwhile, "report: {report:?}");
        assert!(report.net_j() > 0.0);
        let _ = pop;
    }

    #[test]
    fn npf_has_no_windows_to_act_on_under_heavy_uniform_load() {
        // A dense trace (0 ms inter-arrival) with no prefetching: no
        // window clears the 5 s threshold, so the predicted benefit is ~0.
        let trace = generate(&SyntheticSpec {
            mu: 1000.0,
            inter_arrival: sim_core::SimDuration::ZERO,
            ..SyntheticSpec::paper_default()
        });
        let pop = PopularityTable::from_trace(&trace);
        let plan = place(PlacementPolicy::PopularityRoundRobin, &pop, &[2; 8]);
        let pf = PrefetchPlan::empty(8);
        let specs: Vec<Vec<DiskSpec>> = vec![vec![DiskSpec::ata133_type1(); 2]; 8];
        let buffers = vec![DiskSpec::ata133_type1(); 8];
        let cfg = EevfsConfig::paper_npf();
        let report = predict_benefit(&trace, &plan, &pf, &specs, &buffers, &cfg);
        assert_eq!(report.windows, 0);
        assert!(!report.worthwhile);
    }

    #[test]
    fn min_worthwhile_window_respects_breakeven() {
        let spec = DiskSpec::ata133_type1();
        let be = disk_model::breakeven_time(&spec);
        assert_eq!(min_worthwhile_window(&spec, SimDuration::from_secs(1)), be);
        assert_eq!(
            min_worthwhile_window(&spec, SimDuration::from_secs(100)),
            SimDuration::from_secs(100)
        );
    }
}
