//! The storage server (§III-A, §IV-A steps 1–5).
//!
//! The server is intentionally thin — it resolves file → storage node and
//! forwards, never touching data — but it is still a *serialised* software
//! stage in the prototype, and under a 0 ms inter-arrival burst it is the
//! queue that builds first (the paper notes "a large amount of queuing
//! that took place on the storage server node" for 50 MB runs).
//! [`ServerQueue`] models that stage: FIFO, fixed per-request service
//! time.

use crate::metadata::ServerMetadata;
use sim_core::{SimDuration, SimTime};
use workload::record::FileId;

/// The serialised request-processing stage of the storage server.
#[derive(Debug, Clone)]
pub struct ServerQueue {
    proc_time: SimDuration,
    free_at: SimTime,
    processed: u64,
    busy_us: u64,
}

impl ServerQueue {
    /// A new idle server stage.
    pub fn new(proc_time: SimDuration) -> Self {
        ServerQueue {
            proc_time,
            free_at: SimTime::ZERO,
            processed: 0,
            busy_us: 0,
        }
    }

    /// Admits a request arriving at `now`; returns when the server is done
    /// with it (metadata resolved, forward underway).
    pub fn process(&mut self, now: SimTime) -> SimTime {
        let start = now.max(self.free_at);
        let done = start + self.proc_time;
        self.free_at = done;
        self.processed += 1;
        self.busy_us += self.proc_time.as_micros();
        done
    }

    /// Requests processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Utilisation over a horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            (self.busy_us as f64 / 1e6) / horizon.as_secs_f64()
        }
    }
}

/// The full server state: metadata plus the processing stage.
#[derive(Debug, Clone)]
pub struct StorageServer {
    metadata: ServerMetadata,
    queue: ServerQueue,
}

impl StorageServer {
    /// Builds the server from resolved metadata.
    pub fn new(metadata: ServerMetadata, proc_time: SimDuration) -> Self {
        StorageServer {
            metadata,
            queue: ServerQueue::new(proc_time),
        }
    }

    /// Handles one request: resolves the owning node and returns
    /// `(node, done_time)`.
    pub fn route(&mut self, now: SimTime, file: FileId) -> (usize, SimTime) {
        let node = self.metadata.node_of(file);
        let done = self.queue.process(now);
        (node, done)
    }

    /// Admits a request whose target replica the caller already chose
    /// (health- and energy-aware routing); pays the same serialised
    /// metadata-handling time as [`Self::route`].
    pub fn admit(&mut self, now: SimTime) -> SimTime {
        self.queue.process(now)
    }

    /// The metadata table.
    pub fn metadata(&self) -> &ServerMetadata {
        &self.metadata
    }

    /// The processing stage (for utilisation reporting).
    pub fn queue(&self) -> &ServerQueue {
        &self.queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serialisation() {
        let mut q = ServerQueue::new(SimDuration::from_millis(10));
        let a = q.process(SimTime::ZERO);
        let b = q.process(SimTime::ZERO);
        let c = q.process(SimTime::from_millis(100));
        assert_eq!(a, SimTime::from_millis(10));
        assert_eq!(b, SimTime::from_millis(20));
        assert_eq!(c, SimTime::from_millis(110));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn burst_builds_queue_linearly() {
        let mut q = ServerQueue::new(SimDuration::from_millis(8));
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            last = q.process(SimTime::ZERO);
        }
        assert_eq!(last, SimTime::from_millis(800));
    }

    #[test]
    fn utilization() {
        let mut q = ServerQueue::new(SimDuration::from_millis(10));
        q.process(SimTime::ZERO);
        assert!((q.utilization(SimTime::from_secs(1)) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn routing_uses_metadata() {
        let meta = ServerMetadata::new(vec![2, 0, 1], vec![10, 10, 10]);
        let mut s = StorageServer::new(meta, SimDuration::from_millis(5));
        let (node, done) = s.route(SimTime::ZERO, FileId(0));
        assert_eq!(node, 2);
        assert_eq!(done, SimTime::from_millis(5));
        let (node2, done2) = s.route(SimTime::ZERO, FileId(2));
        assert_eq!(node2, 1);
        assert_eq!(done2, SimTime::from_millis(10), "second request queues");
    }
}
