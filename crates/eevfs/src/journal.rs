//! Write-ahead metadata journal hosted on the buffer disk.
//!
//! EEVFS keeps the buffer disk always spinning, which makes it the one
//! place node-local metadata can be durably appended without waking a
//! sleeping data disk. Every metadata mutation — a file created on a data
//! disk, a copy pulled into the buffer area, a write absorbed by the
//! buffer, the server's placement decisions — is journalled *before* it
//! is acted on, so a crashed node (or server) replays the journal and
//! recovers exactly the metadata it held.
//!
//! # Record format
//!
//! ```text
//! u32 payload_len (LE) | u32 crc32(payload) | payload
//! payload = u8 tag | fields (LE)
//! ```
//!
//! A crash can tear the final record (short write) or corrupt any byte of
//! the tail; [`replay`] therefore applies records only while frames stay
//! intact and CRC-valid, truncating at the first damaged frame — never
//! panicking, never applying a half-written record.
//!
//! # Idempotence
//!
//! [`MetaState::apply`] is idempotent by construction (set/map inserts
//! keyed on the file id), so replaying a journal — or a crashed prefix of
//! it — any number of times converges to the same state. The recovery
//! protocol leans on this: a node that crashes *during* replay just
//! replays again from the top.

use disk_model::checksum::crc32;
use std::collections::{BTreeMap, BTreeSet};

/// Fixed per-record framing overhead (length + CRC), bytes.
pub const RECORD_OVERHEAD: u64 = 8;

/// One journalled metadata mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalRecord {
    /// A file was created on a local data disk.
    Create {
        /// File id.
        file: u32,
        /// File size, bytes.
        size: u64,
        /// Local data-disk index.
        disk: u32,
    },
    /// A file's contents were copied into the buffer area (prefetch).
    Prefetch {
        /// File id.
        file: u32,
    },
    /// A write to the file was absorbed by the buffer area (the buffer
    /// copy is now the authoritative one until destaged).
    BufferWrite {
        /// File id.
        file: u32,
    },
    /// A server-side placement decision: `file` lives on `(node, disk)`.
    /// Replicas append one record per copy, primary first.
    Placement {
        /// File id.
        file: u32,
        /// Owning storage node.
        node: u32,
        /// Data disk within that node.
        disk: u32,
    },
}

impl JournalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(16);
        match *self {
            JournalRecord::Create { file, size, disk } => {
                p.push(1);
                p.extend_from_slice(&file.to_le_bytes());
                p.extend_from_slice(&size.to_le_bytes());
                p.extend_from_slice(&disk.to_le_bytes());
            }
            JournalRecord::Prefetch { file } => {
                p.push(2);
                p.extend_from_slice(&file.to_le_bytes());
            }
            JournalRecord::BufferWrite { file } => {
                p.push(3);
                p.extend_from_slice(&file.to_le_bytes());
            }
            JournalRecord::Placement { file, node, disk } => {
                p.push(4);
                p.extend_from_slice(&file.to_le_bytes());
                p.extend_from_slice(&node.to_le_bytes());
                p.extend_from_slice(&disk.to_le_bytes());
            }
        }
        p
    }

    fn decode_payload(p: &[u8]) -> Option<JournalRecord> {
        let (&tag, rest) = p.split_first()?;
        let u32_at = |at: usize| -> Option<u32> {
            Some(u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?))
        };
        let u64_at = |at: usize| -> Option<u64> {
            Some(u64::from_le_bytes(rest.get(at..at + 8)?.try_into().ok()?))
        };
        let rec = match tag {
            1 if rest.len() == 16 => JournalRecord::Create {
                file: u32_at(0)?,
                size: u64_at(4)?,
                disk: u32_at(12)?,
            },
            2 if rest.len() == 4 => JournalRecord::Prefetch { file: u32_at(0)? },
            3 if rest.len() == 4 => JournalRecord::BufferWrite { file: u32_at(0)? },
            4 if rest.len() == 12 => JournalRecord::Placement {
                file: u32_at(0)?,
                node: u32_at(4)?,
                disk: u32_at(8)?,
            },
            _ => return None,
        };
        Some(rec)
    }
}

/// Appends one framed record to a journal byte buffer.
pub fn append_record(journal: &mut Vec<u8>, rec: &JournalRecord) {
    let payload = rec.encode_payload();
    journal.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    journal.extend_from_slice(&crc32(&payload).to_le_bytes());
    journal.extend_from_slice(&payload);
}

/// Encodes a record sequence into journal bytes.
pub fn encode(records: &[JournalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        append_record(&mut out, r);
    }
    out
}

/// Outcome of scanning journal bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Intact records, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte offset where scanning stopped (== input length on a clean
    /// journal; earlier when a torn or corrupt tail was truncated).
    pub valid_len: usize,
    /// True when the whole input was intact.
    pub clean: bool,
}

/// Scans journal bytes, returning every intact record and truncating at
/// the first torn or corrupt frame. Total: never panics on any input.
pub fn replay(bytes: &[u8]) -> Replay {
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        let Some(header) = bytes.get(at..at + 8) else {
            // Clean EOF only when exactly at the end.
            return Replay {
                records,
                valid_len: at,
                clean: at == bytes.len(),
            };
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let want_crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
            // Torn final record (short write mid-crash).
            return Replay {
                records,
                valid_len: at,
                clean: false,
            };
        };
        if crc32(payload) != want_crc {
            return Replay {
                records,
                valid_len: at,
                clean: false,
            };
        }
        let Some(rec) = JournalRecord::decode_payload(payload) else {
            // CRC-valid but structurally unknown: treat as tail damage
            // (a future record kind this build cannot apply).
            return Replay {
                records,
                valid_len: at,
                clean: false,
            };
        };
        records.push(rec);
        at += 8 + len;
    }
}

/// The metadata state a journal replay reconstructs.
///
/// All maps are `BTree*` so iteration — and any serialisation derived
/// from it — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaState {
    /// Local files: id → (size, data disk).
    pub files: BTreeMap<u32, (u64, u32)>,
    /// Files with a copy in the buffer area.
    pub buffered: BTreeSet<u32>,
    /// Files whose buffer copy is dirty (absorbed write not yet destaged).
    pub dirty: BTreeSet<u32>,
    /// Placement decisions: file → ordered copy list `(node, disk)`,
    /// primary first (server-side journals only).
    pub placements: BTreeMap<u32, Vec<(u32, u32)>>,
}

impl MetaState {
    /// Applies one record. Idempotent: applying the same record again
    /// leaves the state unchanged.
    pub fn apply(&mut self, rec: &JournalRecord) {
        match *rec {
            JournalRecord::Create { file, size, disk } => {
                self.files.insert(file, (size, disk));
            }
            JournalRecord::Prefetch { file } => {
                self.buffered.insert(file);
            }
            JournalRecord::BufferWrite { file } => {
                self.buffered.insert(file);
                self.dirty.insert(file);
            }
            JournalRecord::Placement { file, node, disk } => {
                let copies = self.placements.entry(file).or_default();
                if !copies.contains(&(node, disk)) {
                    copies.push((node, disk));
                }
            }
        }
    }

    /// Replays a record sequence into a fresh state.
    pub fn from_records(records: &[JournalRecord]) -> MetaState {
        let mut s = MetaState::default();
        for r in records {
            s.apply(r);
        }
        s
    }

    /// Replays journal bytes (truncating any damaged tail) into a fresh
    /// state.
    pub fn from_bytes(bytes: &[u8]) -> MetaState {
        MetaState::from_records(&replay(bytes).records)
    }
}

/// An append-only journal buffer with an explicit fsync cursor.
///
/// `append` stages a record; [`Journal::mark_fsync`] declares everything
/// staged so far durable. [`Journal::durable_bytes`] is what survives a
/// crash — the un-fsynced tail may be torn arbitrarily (the simulator's
/// crash model truncates it; the proptests additionally corrupt it).
#[derive(Debug, Clone, Default)]
pub struct Journal {
    bytes: Vec<u8>,
    fsynced: usize,
    records: u64,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Appends one record (staged, not yet durable).
    pub fn append(&mut self, rec: &JournalRecord) {
        append_record(&mut self.bytes, rec);
        self.records += 1;
    }

    /// Declares everything appended so far durable.
    pub fn mark_fsync(&mut self) {
        self.fsynced = self.bytes.len();
    }

    /// The full journal image (durable prefix + staged tail).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The crash-surviving prefix (up to the last fsync point).
    pub fn durable_bytes(&self) -> &[u8] {
        &self.bytes[..self.fsynced]
    }

    /// Total bytes appended so far.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Create {
                file: 7,
                size: 1_000_000,
                disk: 2,
            },
            JournalRecord::Prefetch { file: 7 },
            JournalRecord::Create {
                file: 8,
                size: 42,
                disk: 0,
            },
            JournalRecord::BufferWrite { file: 8 },
            JournalRecord::Placement {
                file: 7,
                node: 1,
                disk: 2,
            },
            JournalRecord::Placement {
                file: 7,
                node: 3,
                disk: 0,
            },
        ]
    }

    #[test]
    fn roundtrip_is_clean() {
        let bytes = encode(&sample());
        let r = replay(&bytes);
        assert!(r.clean);
        assert_eq!(r.valid_len, bytes.len());
        assert_eq!(r.records, sample());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let r = replay(&bytes[..cut]);
            assert!(r.records.len() <= sample().len());
            // Records recovered from a prefix are a prefix of the originals.
            assert_eq!(r.records[..], sample()[..r.records.len()]);
        }
    }

    #[test]
    fn corrupt_byte_truncates_at_that_record() {
        let bytes = encode(&sample());
        let mut bad = bytes.clone();
        // Flip a byte inside the third record's payload.
        let third_start = replay(&encode(&sample()[..2])).valid_len;
        bad[third_start + 9] ^= 0x40;
        let r = replay(&bad);
        assert!(!r.clean);
        assert_eq!(r.records, sample()[..2]);
    }

    #[test]
    fn replay_twice_equals_replay_once() {
        let bytes = encode(&sample());
        let once = MetaState::from_bytes(&bytes);
        let mut twice = MetaState::from_bytes(&bytes);
        for rec in &replay(&bytes).records {
            twice.apply(rec);
        }
        assert_eq!(once, twice);
    }

    #[test]
    fn meta_state_contents() {
        let s = MetaState::from_records(&sample());
        assert_eq!(s.files.get(&7), Some(&(1_000_000, 2)));
        assert_eq!(s.files.get(&8), Some(&(42, 0)));
        assert!(s.buffered.contains(&7) && s.buffered.contains(&8));
        assert!(s.dirty.contains(&8) && !s.dirty.contains(&7));
        assert_eq!(s.placements.get(&7), Some(&vec![(1, 2), (3, 0)]));
    }

    #[test]
    fn fsync_cursor_bounds_the_durable_prefix() {
        let mut j = Journal::new();
        j.append(&sample()[0]);
        j.append(&sample()[1]);
        j.mark_fsync();
        j.append(&sample()[2]);
        assert_eq!(j.records(), 3);
        // The un-fsynced tail is not part of the durable image.
        let durable = replay(j.durable_bytes());
        assert!(durable.clean);
        assert_eq!(durable.records, sample()[..2]);
        // The full image still holds all three.
        assert_eq!(replay(j.bytes()).records, sample()[..3]);
    }

    #[test]
    fn duplicate_placement_records_are_idempotent() {
        let rec = JournalRecord::Placement {
            file: 1,
            node: 0,
            disk: 0,
        };
        let mut s = MetaState::default();
        s.apply(&rec);
        s.apply(&rec);
        assert_eq!(s.placements.get(&1), Some(&vec![(0, 0)]));
    }

    #[test]
    fn unknown_record_kind_truncates_cleanly() {
        // A CRC-valid frame whose payload tag this build does not know.
        let mut bytes = encode(&sample()[..1]);
        let payload = [99u8, 1, 2, 3];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let r = replay(&bytes);
        assert!(!r.clean);
        assert_eq!(r.records, sample()[..1]);
    }
}
