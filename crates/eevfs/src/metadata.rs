//! Distributed metadata (§III-A, §IV-D).
//!
//! The storage server is deliberately thin: it knows only which storage
//! node holds each file ("the storage server node contains the storage
//! node location of a file, but does not know which data disk the file is
//! located on or if the file has been prefetched", §IV-A). Each storage
//! node keeps its own local map from file to data disk plus the buffer
//! residency set. This split is what lets the server stay off the data
//! path and scale.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use workload::record::FileId;

/// The server's global metadata: file → storage node(s), file size.
///
/// The placement and size tables are shared (`Arc`): they are produced
/// once per run by placement / trace generation and are read-only from
/// then on, so handing them to the server — or to many parallel sweep
/// workers — is a reference bump, not a table copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerMetadata {
    node_of_file: Arc<Vec<u32>>,
    size_of_file: Arc<Vec<u64>>,
    /// Replica node sets, primary first; empty inner vec = unreplicated
    /// (primary only). Kept sparse so R=1 metadata stays byte-compatible
    /// in size with the seed layout.
    replica_nodes: Vec<Vec<u32>>,
}

impl ServerMetadata {
    /// Builds the map; `node_of_file[f]` must index a real node. Accepts
    /// owned tables or pre-shared `Arc`s.
    pub fn new(
        node_of_file: impl Into<Arc<Vec<u32>>>,
        size_of_file: impl Into<Arc<Vec<u64>>>,
    ) -> Self {
        let node_of_file = node_of_file.into();
        let size_of_file = size_of_file.into();
        assert_eq!(
            node_of_file.len(),
            size_of_file.len(),
            "placement and size tables must cover the same files"
        );
        let files = node_of_file.len();
        ServerMetadata {
            node_of_file,
            size_of_file,
            replica_nodes: vec![Vec::new(); files],
        }
    }

    /// Builds the map with explicit replica node sets (`replica_nodes[f]`
    /// lists every node holding a copy, primary first — it must agree
    /// with `node_of_file[f]` in slot 0).
    pub fn with_replicas(
        node_of_file: impl Into<Arc<Vec<u32>>>,
        size_of_file: impl Into<Arc<Vec<u64>>>,
        replica_nodes: Vec<Vec<u32>>,
    ) -> Self {
        let node_of_file = node_of_file.into();
        assert_eq!(
            node_of_file.len(),
            replica_nodes.len(),
            "replica table must cover every file"
        );
        for (f, set) in replica_nodes.iter().enumerate() {
            assert!(
                set.is_empty() || set[0] == node_of_file[f],
                "file {f}: replica set must lead with the primary"
            );
        }
        let mut m = Self::new(node_of_file, size_of_file);
        m.replica_nodes = replica_nodes;
        m
    }

    /// Every node holding a copy of the file, primary first. Falls back
    /// to the primary alone for unreplicated files.
    pub fn nodes_of(&self, file: FileId) -> Vec<u32> {
        let set = &self.replica_nodes[file.index()];
        if set.is_empty() {
            vec![self.node_of_file[file.index()]]
        } else {
            set.clone()
        }
    }

    /// Replication factor of a file (1 when unreplicated).
    pub fn replication_of(&self, file: FileId) -> usize {
        self.replica_nodes[file.index()].len().max(1)
    }

    /// Number of files tracked.
    pub fn file_count(&self) -> usize {
        self.node_of_file.len()
    }

    /// The storage node holding a file.
    pub fn node_of(&self, file: FileId) -> usize {
        self.node_of_file[file.index()] as usize
    }

    /// File size (the paper's example of server-side metadata).
    pub fn size_of(&self, file: FileId) -> u64 {
        self.size_of_file[file.index()]
    }

    /// Files hosted by one node, in file-id order.
    pub fn files_on_node(&self, node: usize) -> Vec<FileId> {
        self.node_of_file
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n as usize == node)
            .map(|(i, _)| FileId(i as u32))
            .collect()
    }
}

/// One node's local metadata: file → local data-disk index.
///
/// Buffer residency is tracked separately by the buffer catalog; this type
/// answers only "which of my spindles owns the authoritative copy".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMetadata {
    /// Sparse map over the global file space: `u32::MAX` = not hosted.
    disk_of_file: Vec<u32>,
    hosted: Vec<FileId>,
}

/// Sentinel for "file not hosted here".
const NOT_HOSTED: u32 = u32::MAX;

impl NodeMetadata {
    /// An empty map over a population of `files`.
    pub fn new(files: usize) -> Self {
        NodeMetadata {
            disk_of_file: vec![NOT_HOSTED; files],
            hosted: Vec::new(),
        }
    }

    /// Registers a file on a local data disk (the node-side half of the
    /// paper's step-3 file creation).
    pub fn create(&mut self, file: FileId, disk: usize) {
        let slot = &mut self.disk_of_file[file.index()];
        assert_eq!(
            *slot, NOT_HOSTED,
            "file {} created twice on this node",
            file.0
        );
        *slot = disk as u32;
        self.hosted.push(file);
    }

    /// The local data disk holding a file, if hosted here.
    pub fn disk_of(&self, file: FileId) -> Option<usize> {
        match self.disk_of_file.get(file.index()) {
            Some(&d) if d != NOT_HOSTED => Some(d as usize),
            _ => None,
        }
    }

    /// Files hosted by this node in creation order (the order placement
    /// assigned them, most popular first under the paper's policy).
    pub fn hosted(&self) -> &[FileId] {
        &self.hosted
    }

    /// Number of files hosted.
    pub fn len(&self) -> usize {
        self.hosted.len()
    }

    /// True when this node hosts nothing.
    pub fn is_empty(&self) -> bool {
        self.hosted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_metadata_lookup() {
        let m = ServerMetadata::new(vec![0, 1, 0, 2], vec![10, 20, 30, 40]);
        assert_eq!(m.file_count(), 4);
        assert_eq!(m.node_of(FileId(1)), 1);
        assert_eq!(m.size_of(FileId(3)), 40);
        assert_eq!(m.files_on_node(0), vec![FileId(0), FileId(2)]);
        assert_eq!(m.files_on_node(9), vec![]);
    }

    #[test]
    #[should_panic(expected = "same files")]
    fn server_metadata_rejects_mismatched_tables() {
        let _ = ServerMetadata::new(vec![0, 1], vec![10]);
    }

    #[test]
    fn replica_sets_fall_back_to_primary() {
        let m = ServerMetadata::new(vec![2, 0], vec![1, 1]);
        assert_eq!(m.nodes_of(FileId(0)), vec![2]);
        assert_eq!(m.replication_of(FileId(0)), 1);

        let m = ServerMetadata::with_replicas(vec![2, 0], vec![1, 1], vec![vec![2, 0], vec![0, 1]]);
        assert_eq!(m.nodes_of(FileId(0)), vec![2, 0]);
        assert_eq!(m.nodes_of(FileId(1)), vec![0, 1]);
        assert_eq!(m.replication_of(FileId(1)), 2);
        // Primary lookup unchanged by replication.
        assert_eq!(m.node_of(FileId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "lead with the primary")]
    fn replica_set_must_start_at_primary() {
        let _ = ServerMetadata::with_replicas(vec![2], vec![1], vec![vec![0, 2]]);
    }

    #[test]
    fn node_metadata_create_and_lookup() {
        let mut m = NodeMetadata::new(10);
        assert!(m.is_empty());
        m.create(FileId(3), 0);
        m.create(FileId(7), 1);
        assert_eq!(m.disk_of(FileId(3)), Some(0));
        assert_eq!(m.disk_of(FileId(7)), Some(1));
        assert_eq!(m.disk_of(FileId(0)), None);
        assert_eq!(m.hosted(), &[FileId(3), FileId(7)]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[should_panic(expected = "created twice")]
    fn double_create_panics() {
        let mut m = NodeMetadata::new(5);
        m.create(FileId(1), 0);
        m.create(FileId(1), 1);
    }

    #[test]
    fn lookup_outside_population_is_none() {
        let m = NodeMetadata::new(2);
        assert_eq!(m.disk_of(FileId(99)), None);
    }
}
