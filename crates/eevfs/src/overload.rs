//! Overload control plane: admission gate and brownout ladder.
//!
//! Both the prototype (`eevfs-runtime`) and the DES driver historically
//! queued without bound when saturated — in the prototype every client
//! connection parked on the server's routing mutex, in the simulator the
//! serialised [`crate::server::ServerQueue`] grew arbitrarily deep — so
//! offered load past the service rate turned directly into unbounded
//! latency. This module is the control plane that replaces that
//! behaviour, shared by both so the simulator predicts the prototype's
//! shedding rather than merely resembling it:
//!
//! * [`AdmissionGate`] — a bounded in-flight counter. A request is either
//!   admitted (occupying one slot until its reply is written) or refused
//!   with `Busy` *before* it can queue anywhere, so the number of
//!   requests inside the server is capped by construction.
//! * The **brownout ladder** — graceful degradation in three steps driven
//!   by gate occupancy:
//!
//!   ```text
//!             load ≥ l1_enter            load ≥ l2_enter           load ≥ capacity
//!   L0 ───────────────────────▶ L1 ─────────────────────▶ L2 ─────────────────▶ L3
//!   normal                  buffer-only             shed low priority       reject all
//!   ◀─────────────────────────    ◀────────────────────────   ◀────────────────────
//!        relief_needed consecutive observations below (enter − exit_margin)
//!   ```
//!
//!   At **L1** the server broadcasts the brownout level and nodes refuse
//!   buffer misses instead of spinning up data disks
//!   (the energy policy's prefetch spin-ups are the first thing
//!   sacrificed). At **L2** the server additionally sheds requests whose
//!   priority is below [`OverloadOptions::shed_priority_below`]. At
//!   **L3** admission refuses everything. Stepping **down** requires
//!   [`OverloadOptions::relief_needed`] *consecutive* observations below
//!   the current level's entry threshold minus
//!   [`OverloadOptions::exit_margin`] — hysteresis, so the ladder cannot
//!   flap on a load oscillating around a threshold, and the level
//!   sequence is a deterministic function of the observation sequence.
//!
//! The same ladder (same struct, same transition rule) runs inside the
//! DES driver, which is what lets the simulator predict the prototype's
//! shedding behaviour rather than merely resemble it.

/// Knobs for the overload control plane.
///
/// The default is **disabled**: a zero `max_inflight` means no gate, no
/// ladder, no shedding — exactly the legacy unbounded behaviour, so
/// existing configurations are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadOptions {
    /// Maximum concurrently admitted requests (0 = control plane off).
    pub max_inflight: usize,
    /// Gate occupancy at which the ladder enters L1 (buffer-only).
    pub l1_enter: usize,
    /// Gate occupancy at which the ladder enters L2 (priority shed).
    pub l2_enter: usize,
    /// Requests with priority strictly below this are shed at L2.
    pub shed_priority_below: u8,
    /// Consecutive below-threshold observations required to step down.
    pub relief_needed: u32,
    /// Occupancy slack subtracted from a level's entry threshold before
    /// an observation counts as relief.
    pub exit_margin: usize,
}

impl Default for OverloadOptions {
    fn default() -> OverloadOptions {
        OverloadOptions {
            max_inflight: 0,
            l1_enter: 0,
            l2_enter: 0,
            shed_priority_below: 2,
            relief_needed: 3,
            exit_margin: 1,
        }
    }
}

impl OverloadOptions {
    /// An enabled control plane sized for `max_inflight` concurrent
    /// requests: L1 at half occupancy, L2 at three quarters, L3 (reject
    /// all) only when the gate itself is full.
    pub fn bounded(max_inflight: usize) -> OverloadOptions {
        OverloadOptions {
            max_inflight,
            l1_enter: max_inflight.div_ceil(2),
            l2_enter: (max_inflight * 3).div_ceil(4),
            ..OverloadOptions::default()
        }
    }

    /// True when the control plane is active.
    pub fn enabled(&self) -> bool {
        self.max_inflight > 0
    }
}

/// Why a request did not make it past admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The gate is full or the ladder is at L3: refuse with `Busy`.
    Busy,
    /// Brownout L2 and the priority is below the shed threshold.
    PriorityShed,
}

/// Shed reason codes carried by `Message::Shed` frames.
pub mod shed_code {
    /// The request's deadline budget was exhausted before service.
    pub const DEADLINE: u16 = 1;
    /// The request's priority was shed under brownout level 2.
    pub const PRIORITY: u16 = 2;
    /// A node refused the admitted request under brownout (buffer miss).
    pub const DOWNSTREAM: u16 = 3;
}

/// Bounded admission gate plus brownout ladder plus the shed ledger.
///
/// All mutation happens through [`AdmissionGate::try_admit`] /
/// [`AdmissionGate::release`] (callers serialise access with a mutex, or
/// single-threaded event order in the simulator), so the counters always
/// close: `offered == admitted + rejected + shed`.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    opts: OverloadOptions,
    inflight: usize,
    level: u8,
    relief: u32,
    /// The ledger.
    pub counters: GateCounters,
}

/// The admission-side half of the shed ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounters {
    /// Requests offered to the gate.
    pub offered: u64,
    /// Requests admitted (slots taken).
    pub admitted: u64,
    /// Requests refused with `Busy`.
    pub rejected: u64,
    /// Requests shed pre-admission (deadline or priority).
    pub shed: u64,
    /// Ladder level changes, either direction.
    pub brownout_transitions: u64,
    /// Peak concurrent admitted requests.
    pub queue_peak: u64,
}

impl AdmissionGate {
    /// A gate with the given options. Disabled options admit everything.
    pub fn new(opts: OverloadOptions) -> AdmissionGate {
        AdmissionGate {
            opts,
            inflight: 0,
            level: 0,
            relief: 0,
            counters: GateCounters::default(),
        }
    }

    /// Current brownout level (0–3).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Currently admitted requests.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Records a pre-admission deadline shed (the caller refused the
    /// request before offering it a slot).
    pub fn shed_deadline(&mut self) {
        self.counters.offered += 1;
        self.counters.shed += 1;
        self.observe();
    }

    /// Offers one request with `priority` to the gate. `Ok` admits it
    /// (the caller must [`AdmissionGate::release`] the slot when the
    /// reply is written); `Err` says how to refuse it.
    pub fn try_admit(&mut self, priority: u8) -> Result<(), AdmitError> {
        self.counters.offered += 1;
        if !self.opts.enabled() {
            self.counters.admitted += 1;
            self.inflight += 1;
            self.counters.queue_peak = self.counters.queue_peak.max(self.inflight as u64);
            return Ok(());
        }
        self.observe();
        if self.level >= 3 || self.inflight >= self.opts.max_inflight {
            self.counters.rejected += 1;
            return Err(AdmitError::Busy);
        }
        if self.level >= 2 && priority < self.opts.shed_priority_below {
            self.counters.shed += 1;
            return Err(AdmitError::PriorityShed);
        }
        self.counters.admitted += 1;
        self.inflight += 1;
        self.counters.queue_peak = self.counters.queue_peak.max(self.inflight as u64);
        // The admission itself is load: step up immediately if it crossed
        // a threshold, so the *next* request sees the new level.
        self.climb();
        Ok(())
    }

    /// Releases one admitted slot (reply written, or request abandoned).
    pub fn release(&mut self) {
        self.inflight = self.inflight.saturating_sub(1);
        self.observe();
    }

    /// One ladder observation of the current occupancy: immediate
    /// step-up, hysteresis-gated step-down.
    fn observe(&mut self) {
        if !self.opts.enabled() {
            return;
        }
        if self.climb() {
            return;
        }
        // Below every higher entry threshold: count relief against the
        // current level's own entry threshold.
        let Some(enter) = self.enter_threshold(self.level) else {
            return; // already at L0
        };
        if self.inflight < enter.saturating_sub(self.opts.exit_margin) {
            self.relief += 1;
            if self.relief >= self.opts.relief_needed {
                self.level -= 1;
                self.relief = 0;
                self.counters.brownout_transitions += 1;
            }
        } else {
            self.relief = 0;
        }
    }

    /// Steps up to the highest level whose threshold the current load
    /// meets. Returns true if the level changed.
    fn climb(&mut self) -> bool {
        let mut next = self.level;
        while next < 3 {
            match self.enter_threshold(next + 1) {
                Some(enter) if self.inflight >= enter => next += 1,
                _ => break,
            }
        }
        if next != self.level {
            self.level = next;
            self.relief = 0;
            self.counters.brownout_transitions += 1;
            true
        } else {
            false
        }
    }

    /// The occupancy at which `level` is entered (`None` for L0).
    fn enter_threshold(&self, level: u8) -> Option<usize> {
        match level {
            1 => Some(self.opts.l1_enter.max(1)),
            2 => Some(self.opts.l2_enter.max(1)),
            3 => Some(self.opts.max_inflight.max(1)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> OverloadOptions {
        OverloadOptions {
            max_inflight: 8,
            l1_enter: 4,
            l2_enter: 6,
            shed_priority_below: 2,
            relief_needed: 3,
            exit_margin: 1,
        }
    }

    #[test]
    fn disabled_gate_admits_everything_and_stays_level_zero() {
        let mut g = AdmissionGate::new(OverloadOptions::default());
        for _ in 0..1000 {
            assert_eq!(g.try_admit(0), Ok(()));
        }
        assert_eq!(g.level(), 0);
        assert_eq!(g.counters.admitted, 1000);
        assert_eq!(g.counters.queue_peak, 1000);
    }

    #[test]
    fn gate_caps_inflight_and_refuses_busy() {
        let mut g = AdmissionGate::new(opts());
        let mut admitted = 0;
        let mut busy = 0;
        for _ in 0..20 {
            match g.try_admit(5) {
                Ok(()) => admitted += 1,
                Err(AdmitError::Busy) => busy += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(admitted, 8, "exactly max_inflight admitted");
        assert_eq!(busy, 12);
        assert_eq!(g.counters.queue_peak, 8);
        // Ledger closes.
        let c = g.counters;
        assert_eq!(c.offered, c.admitted + c.rejected + c.shed);
    }

    #[test]
    fn ladder_climbs_and_sheds_low_priority_at_l2() {
        let mut g = AdmissionGate::new(opts());
        for _ in 0..6 {
            g.try_admit(5).expect("below capacity");
        }
        assert_eq!(g.level(), 2, "occupancy 6 enters L2");
        assert_eq!(g.try_admit(1), Err(AdmitError::PriorityShed));
        assert_eq!(g.try_admit(2), Ok(()), "priority at threshold passes");
        let c = g.counters;
        assert_eq!(c.offered, c.admitted + c.rejected + c.shed);
    }

    #[test]
    fn ladder_steps_down_only_after_sustained_relief() {
        let mut g = AdmissionGate::new(opts());
        for _ in 0..6 {
            g.try_admit(5).expect("admit");
        }
        assert_eq!(g.level(), 2);
        // Occupancy 5 is not below l2_enter - margin = 5: no relief.
        g.release();
        assert_eq!((g.inflight(), g.level()), (5, 2));
        // Draining below the margin starts the relief count; only three
        // consecutive observations step down, and by exactly one level.
        g.release(); // inflight 4: relief 1 (4 < 6-1)
        g.release(); // inflight 3: relief 2
        assert_eq!(g.level(), 2, "hysteresis holds the level");
        g.release(); // inflight 2: relief 3 -> step to L1
        assert_eq!(g.level(), 1, "one step per relief window");
        g.release(); // inflight 1: relief 1 at L1 (1 < 4-1)
        g.release(); // inflight 0: relief 2
        assert_eq!(g.level(), 1);
        g.release(); // still 0: relief 3 -> L0
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn level_sequence_is_deterministic() {
        // The same admit/release schedule replays to the same levels and
        // the same ledger, bit for bit.
        let run = || {
            let mut g = AdmissionGate::new(opts());
            let mut levels = Vec::new();
            for i in 0..200u32 {
                if i % 3 == 0 {
                    g.release();
                } else {
                    let _ = g.try_admit((i % 7) as u8);
                }
                levels.push(g.level());
            }
            (levels, g.counters)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn full_gate_hits_l3_and_rejects_everything() {
        let mut g = AdmissionGate::new(opts());
        for _ in 0..8 {
            g.try_admit(255).expect("fill");
        }
        assert_eq!(g.level(), 3, "full gate is L3");
        assert_eq!(g.try_admit(255), Err(AdmitError::Busy));
        let c = g.counters;
        assert_eq!(c.offered, c.admitted + c.rejected + c.shed);
        assert!(c.brownout_transitions >= 3, "L0->L1->L2->L3: {c:?}");
    }
}
