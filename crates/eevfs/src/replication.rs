//! R-way replica placement and read-replica selection.
//!
//! The paper's EEVFS stores exactly one copy of each file, which makes a
//! single disk or node failure lose data and — just as bad for the
//! paper's goal — forces a spin-up whenever the one home disk is asleep.
//! Replication layered on the popularity round-robin changes both:
//! degraded-mode reads fail over to a surviving replica, and an
//! *energy-aware* read selector can prefer whichever replica's disk is
//! already spinning, waking a standby disk only when every copy is cold.
//!
//! Placement keeps the paper's §III-B shape: the primary copy is exactly
//! where [`crate::placement::place`] put it; replica `i` goes to node
//! `(primary + i) mod N` (anti-affinity by construction — replicas of a
//! file never share a node) and round-robins over that node's data disks
//! in arrival order, continuing the node's creation counter.

use crate::config::ReplicaSelection;
use crate::placement::PlacementPlan;
use serde::{Deserialize, Serialize};
use workload::record::FileId;

/// Where every copy of every file lives. `replicas[f][0]` is the primary
/// (identical to the placement plan); later entries are backups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaPlan {
    /// `replicas[file]` = `(node, disk)` per copy, primary first.
    pub replicas: Vec<Vec<(u32, u32)>>,
}

impl ReplicaPlan {
    /// Number of files covered.
    pub fn file_count(&self) -> usize {
        self.replicas.len()
    }

    /// All copies of a file, primary first.
    pub fn of(&self, file: FileId) -> &[(u32, u32)] {
        &self.replicas[file.index()]
    }

    /// The replication factor in force (copies of file 0, or 1 when
    /// empty).
    pub fn factor(&self) -> usize {
        self.replicas.first().map_or(1, Vec::len)
    }
}

/// Expands a placement plan to `r` copies per file with node
/// anti-affinity. `r` is clamped to the node count (a replica set larger
/// than the cluster cannot avoid co-location).
pub fn replicate(plan: &PlacementPlan, r: usize, disks_per_node: &[usize]) -> ReplicaPlan {
    let n_nodes = disks_per_node.len();
    let r = r.clamp(1, n_nodes);
    // Continue each node's local disk round-robin where primary creation
    // left off, so replicas spread over spindles the same way primaries
    // do.
    let mut next_disk: Vec<usize> = (0..n_nodes).map(|n| plan.files_on(n).len()).collect();
    let mut replicas: Vec<Vec<(u32, u32)>> = Vec::with_capacity(plan.file_count());
    for f in 0..plan.file_count() {
        let primary_node = plan.node_of_file[f] as usize;
        let mut copies = Vec::with_capacity(r);
        copies.push((plan.node_of_file[f], plan.disk_of_file[f]));
        for k in 1..r {
            let node = (primary_node + k) % n_nodes;
            let disk = next_disk[node] % disks_per_node[node];
            next_disk[node] += 1;
            copies.push((node as u32, disk as u32));
        }
        replicas.push(copies);
    }
    ReplicaPlan { replicas }
}

/// Why the selector settled on a replica — lets the driver account
/// redirects and avoided spin-ups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// A copy is buffer-resident on a healthy node: no data disk touched.
    Buffered,
    /// A healthy replica's home disk is already spinning.
    Warm,
    /// Every healthy copy is on a standby disk: this one pays a spin-up.
    Cold,
}

/// One selected copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selected {
    /// Index into the file's replica list (0 = primary).
    pub replica: usize,
    /// Owning node.
    pub node: usize,
    /// Local data disk.
    pub disk: usize,
    /// What made this copy attractive.
    pub choice: Choice,
}

/// Picks the copy to serve a read from.
///
/// `copy_ok(node, disk)` must report whether that copy can serve at all
/// (node up, and either the home disk up or the file buffer-resident
/// there); `buffered(node)` whether the node holds the file in its buffer
/// disk; `disk_awake(node, disk)` whether the copy's home disk is
/// spinning. `tiebreak` feeds the [`ReplicaSelection::RandomHealthy`]
/// policy deterministically (the driver passes the request index).
/// Returns `None` when no copy is serviceable.
pub fn select_replica(
    copies: &[(u32, u32)],
    policy: ReplicaSelection,
    copy_ok: impl Fn(usize, usize) -> bool,
    buffered: impl Fn(usize) -> bool,
    disk_awake: impl Fn(usize, usize) -> bool,
    tiebreak: u64,
) -> Option<Selected> {
    let healthy: Vec<(usize, usize, usize)> = copies
        .iter()
        .enumerate()
        .filter(|&(_, &(n, d))| copy_ok(n as usize, d as usize))
        .map(|(i, &(n, d))| (i, n as usize, d as usize))
        .collect();
    if healthy.is_empty() {
        return None;
    }
    let pick = |&(replica, node, disk): &(usize, usize, usize), choice| Selected {
        replica,
        node,
        disk,
        choice,
    };
    match policy {
        ReplicaSelection::Primary => {
            let c = &healthy[0];
            let choice = if buffered(c.1) {
                Choice::Buffered
            } else if disk_awake(c.1, c.2) {
                Choice::Warm
            } else {
                Choice::Cold
            };
            Some(pick(c, choice))
        }
        ReplicaSelection::RandomHealthy => {
            // SplitMix64 finaliser over the caller's tiebreak: decorrelates
            // consecutive request indices without any shared RNG state.
            let mut z = tiebreak.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let c = &healthy[(z % healthy.len() as u64) as usize];
            let choice = if buffered(c.1) {
                Choice::Buffered
            } else if disk_awake(c.1, c.2) {
                Choice::Warm
            } else {
                Choice::Cold
            };
            Some(pick(c, choice))
        }
        ReplicaSelection::EnergyAware => {
            if let Some(c) = healthy.iter().find(|&&(_, n, _)| buffered(n)) {
                return Some(pick(c, Choice::Buffered));
            }
            if let Some(c) = healthy.iter().find(|&&(_, n, d)| disk_awake(n, d)) {
                return Some(pick(c, Choice::Warm));
            }
            Some(pick(&healthy[0], Choice::Cold))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlacementPolicy;
    use crate::placement::place;
    use workload::popularity::PopularityTable;

    fn plan(files: usize, nodes: usize, disks: usize) -> PlacementPlan {
        let pop =
            PopularityTable::from_counts((0..files as u64).map(|i| files as u64 - i).collect());
        place(
            PlacementPolicy::PopularityRoundRobin,
            &pop,
            &vec![disks; nodes],
        )
    }

    #[test]
    fn replicas_never_share_a_node() {
        let p = plan(50, 4, 2);
        for r in 1..=4 {
            let rp = replicate(&p, r, &[2; 4]);
            assert_eq!(rp.factor(), r);
            for copies in &rp.replicas {
                let mut nodes: Vec<u32> = copies.iter().map(|&(n, _)| n).collect();
                nodes.sort_unstable();
                nodes.dedup();
                assert_eq!(nodes.len(), copies.len(), "co-located replicas: {copies:?}");
            }
        }
    }

    #[test]
    fn primary_copy_matches_placement() {
        let p = plan(20, 3, 2);
        let rp = replicate(&p, 2, &[2; 3]);
        for f in 0..20 {
            assert_eq!(rp.replicas[f][0], (p.node_of_file[f], p.disk_of_file[f]));
        }
    }

    #[test]
    fn r_clamped_to_cluster_size() {
        let p = plan(10, 2, 1);
        let rp = replicate(&p, 5, &[1; 2]);
        assert_eq!(rp.factor(), 2);
    }

    #[test]
    fn replica_disks_in_range() {
        let p = plan(33, 3, 2);
        let rp = replicate(&p, 3, &[2, 2, 2]);
        for copies in &rp.replicas {
            for &(n, d) in copies {
                assert!((n as usize) < 3);
                assert!((d as usize) < 2);
            }
        }
    }

    #[test]
    fn energy_aware_prefers_buffered_then_warm() {
        let copies = vec![(0u32, 0u32), (1, 0), (2, 0)];
        // Node 2 has the file buffered: pick it even though 0 is healthy.
        let s = select_replica(
            &copies,
            ReplicaSelection::EnergyAware,
            |_, _| true,
            |n| n == 2,
            |_, _| false,
            0,
        )
        .unwrap();
        assert_eq!((s.node, s.choice), (2, Choice::Buffered));
        // No buffer copies; node 1's disk spins: pick node 1.
        let s = select_replica(
            &copies,
            ReplicaSelection::EnergyAware,
            |_, _| true,
            |_| false,
            |n, _| n == 1,
            0,
        )
        .unwrap();
        assert_eq!((s.node, s.choice), (1, Choice::Warm));
        // Everything cold: primary pays the spin-up.
        let s = select_replica(
            &copies,
            ReplicaSelection::EnergyAware,
            |_, _| true,
            |_| false,
            |_, _| false,
            0,
        )
        .unwrap();
        assert_eq!((s.node, s.choice), (0, Choice::Cold));
    }

    #[test]
    fn dead_nodes_are_skipped() {
        let copies = vec![(0u32, 0u32), (1, 1)];
        let s = select_replica(
            &copies,
            ReplicaSelection::Primary,
            |n, _| n != 0,
            |_| false,
            |_, _| true,
            0,
        )
        .unwrap();
        assert_eq!((s.replica, s.node, s.disk), (1, 1, 1));
        assert!(select_replica(
            &copies,
            ReplicaSelection::EnergyAware,
            |_, _| false,
            |_| false,
            |_, _| true,
            0,
        )
        .is_none());
    }

    #[test]
    fn random_healthy_is_deterministic_and_healthy_only() {
        let copies = vec![(0u32, 0u32), (1, 0), (2, 0)];
        for t in 0..64u64 {
            let a = select_replica(
                &copies,
                ReplicaSelection::RandomHealthy,
                |n, _| n != 1,
                |_| false,
                |_, _| true,
                t,
            )
            .unwrap();
            let b = select_replica(
                &copies,
                ReplicaSelection::RandomHealthy,
                |n, _| n != 1,
                |_| false,
                |_, _| true,
                t,
            )
            .unwrap();
            assert_eq!(a, b);
            assert_ne!(a.node, 1, "picked a dead node");
        }
    }
}
